"""Tour of the GPGPU analytical cost model.

Shows the pieces the timing side of the reproduction is built from:

* why naively skipping dropped neurons with an ``if`` gives no speedup on a
  SIMT machine (Fig. 1(b));
* what a single dense vs. compact GEMM costs on the modelled GTX 1080Ti;
* the full per-iteration kernel breakdown of the paper's MLP under
  conventional dropout vs. the Row-based pattern;
* the Table I speedup sweep over network sizes.

Run with:  python examples/gpu_cost_model_tour.py
"""

from __future__ import annotations

from repro.dropout import RowDropoutPattern
from repro.gpu import (
    DivergenceModel,
    DropoutTimingConfig,
    GTX_1080TI,
    GemmCostModel,
    GemmShape,
    MLPTimingModel,
)


def main() -> None:
    device = GTX_1080TI
    print(f"Device: {device.name} — {device.num_sms} SMs, "
          f"{device.peak_flops / 1e12:.1f} TFLOP/s peak, "
          f"{device.global_mem_bandwidth_gbps:.0f} GB/s\n")

    print("1) Branch divergence: naive if-else skipping vs. regular patterns")
    divergence = DivergenceModel(device)
    for rate in (0.3, 0.5, 0.7):
        naive = divergence.random_mask(rate)
        regular = divergence.regular_mask(rate)
        print(f"   rate {rate}: naive {naive.expected_speedup:.2f}x "
              f"(only {naive.fully_dropped_warp_fraction:.2e} of warps fully dropped), "
              f"regular pattern {regular.expected_speedup:.2f}x")

    print("\n2) Single GEMM: dense vs. row-compacted (2048x2048, batch 128)")
    gemm = GemmCostModel(device)
    shape = GemmShape(m=2048, n=128, k=2048)
    dense = gemm.dense(shape)
    compact = gemm.row_compact(shape, RowDropoutPattern(2048, dp=4, bias=0))
    print(f"   dense:   {dense.time_ms:.3f} ms, {dense.flops / 1e9:.2f} GFLOP")
    print(f"   compact: {compact.time_ms:.3f} ms, {compact.flops / 1e9:.2f} GFLOP")

    print("\n3) Full iteration breakdown (784-2048-2048-10 MLP, batch 128, rate 0.5)")
    timing = MLPTimingModel([784, 2048, 2048, 10], 128, device=device)
    for mode in ("baseline", "row", "tile", "naive_skip"):
        estimate = timing.iteration(DropoutTimingConfig(mode, (0.5, 0.5)))
        categories = ", ".join(f"{name}={value:.2f}ms" for name, value
                               in sorted(estimate.trace.time_by_category().items()))
        print(f"   {mode:11s}: {estimate.iteration_time_ms:6.3f} ms  ({categories})")

    print("\n4) Table I sweep: speedup vs. network size at rate 0.7")
    for hidden in (1024, 2048, 4096):
        model = MLPTimingModel([784, hidden, hidden, 10], 128, device=device)
        baseline = model.iteration(DropoutTimingConfig("baseline", (0.7, 0.7)))
        row = model.iteration(DropoutTimingConfig("row", (0.7, 0.7)))
        tile = model.iteration(DropoutTimingConfig("tile", (0.7, 0.7)))
        print(f"   {hidden}x{hidden}: ROW {row.speedup_over(baseline):.2f}x, "
              f"TILE {tile.speedup_over(baseline):.2f}x")


if __name__ == "__main__":
    main()
