"""Section IV-A style experiment: one MLP, three dropout implementations.

Trains the same 2-hidden-layer MLP on the synthetic digit task with
conventional dropout, the Row-based pattern and the Tile-based pattern, then
prints an accuracy/speedup comparison like the paper's Fig. 4 discussion.

Every run is built through the unified execution stack: one
``ExecutionConfig`` (engine mode, dtype, backend, pool-wide pattern seed)
shared by an ``EngineRuntime`` across the three training runs, exactly how
the experiment drivers in ``repro.experiments`` construct theirs.

Run with:  python examples/mlp_mnist_training.py [--rate 0.5] [--epochs 8]
           [--mode pooled] [--backend fused] [--dtype float32]
"""

from __future__ import annotations

import argparse

from repro.backends import available_backends
from repro.data import make_synthetic_mnist
from repro.execution import EXECUTION_MODES, EngineRuntime, ExecutionConfig
from repro.models import MLPClassifier, MLPConfig
from repro.training import ClassifierTrainer, ClassifierTrainingConfig


def train_one(strategy: str, rate: float, data, epochs: int, hidden: int,
              runtime: EngineRuntime) -> dict:
    model = MLPClassifier(MLPConfig(hidden_sizes=(hidden, hidden),
                                    drop_rates=(rate, rate), strategy=strategy, seed=0))
    trainer = ClassifierTrainer(model, data, ClassifierTrainingConfig(
        batch_size=64, epochs=epochs, learning_rate=0.01, momentum=0.9),
        runtime=runtime)
    result = trainer.train()
    return {
        "strategy": result.strategy,
        "accuracy": result.final_metric,
        "modelled_time_ms": result.simulated_time_ms,
        "speedup": result.speedup,
        "wall_s": result.wall_time_s,
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rate", type=float, default=0.5, help="dropout rate per hidden layer")
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--hidden", type=int, default=256)
    parser.add_argument("--train-samples", type=int, default=2000)
    parser.add_argument("--test-samples", type=int, default=800)
    parser.add_argument("--mode", default="pooled", choices=list(EXECUTION_MODES),
                        help="engine execution mode of the pattern runs")
    parser.add_argument("--dtype", default="float64", choices=["float64", "float32"])
    parser.add_argument("--backend", default="numpy",
                        choices=list(available_backends()),
                        help="execution backend of the compact engine")
    args = parser.parse_args(argv)

    execution = ExecutionConfig(mode=args.mode, dtype=args.dtype,
                                backend=args.backend, seed=0)
    runtime = EngineRuntime(execution)
    data = make_synthetic_mnist(num_train=args.train_samples,
                                num_test=args.test_samples, seed=1)
    print(f"Training 784-{args.hidden}-{args.hidden}-10 MLP, dropout rate {args.rate}, "
          f"{args.epochs} epochs ({execution.describe()})\n")
    rows = [train_one(strategy, args.rate, data, args.epochs, args.hidden, runtime)
            for strategy in ("original", "row", "tile")]

    header = f"{'strategy':10s} {'accuracy':>9s} {'modelled ms':>12s} {'speedup':>8s} {'wall s':>7s}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['strategy']:10s} {row['accuracy']:9.3f} {row['modelled_time_ms']:12.1f} "
              f"{row['speedup']:8.2f} {row['wall_s']:7.1f}")
    baseline = rows[0]
    print(f"\nAccuracy change vs conventional dropout: "
          f"ROW {rows[1]['accuracy'] - baseline['accuracy']:+.3f}, "
          f"TILE {rows[2]['accuracy'] - baseline['accuracy']:+.3f}")
    stats = runtime.stats()
    print(f"Engine: plan-cache hits {stats['tile_plan_cache']['hits']}, "
          f"pool draws consumed {stats['pools']['consumed']}, "
          f"backend calls {sum(stats['backend_calls'].values())} "
          f"({stats['backend']})")


if __name__ == "__main__":
    main()
