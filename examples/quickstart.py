"""Quickstart: approximate random dropout in five minutes.

This script walks through the library's core objects:

1. run Algorithm 1 to get a dropout-pattern distribution for a target rate;
2. sample concrete Row-based patterns from it and check the statistical
   equivalence with conventional Bernoulli dropout;
3. build a small MLP with the Row-based Dropout Pattern and train it for a
   couple of epochs on the synthetic digit task;
4. ask the GPU timing model how much faster the same run would have been on
   the paper's GTX 1080Ti compared to conventional dropout.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.data import make_synthetic_mnist
from repro.dropout import PatternDistributionSearch, PatternSampler, equivalence_report
from repro.gpu import DropoutTimingConfig, MLPTimingModel
from repro.models import MLPClassifier, MLPConfig
from repro.training import ClassifierTrainer, ClassifierTrainingConfig


def main() -> None:
    target_rate = 0.5

    # 1. Algorithm 1: a distribution over pattern periods whose expected global
    #    dropout rate equals the target.
    search = PatternDistributionSearch(max_period=8)
    result = search.search(target_rate)
    print(f"[search] target rate {target_rate}: achieved {result.achieved_rate:.3f}, "
          f"entropy {result.entropy:.2f}, effective sub-models "
          f"{result.effective_sub_models():.1f}")

    # 2. Sample patterns and verify statistical equivalence (Eq. 2-3).
    sampler = PatternSampler(target_rate, max_period=8, rng=np.random.default_rng(0))
    report = equivalence_report(sampler, num_units=256, iterations=1000)
    print(f"[equivalence] per-neuron drop rate {report.empirical_unit_rate_mean:.3f} "
          f"(target {target_rate}), equivalent: {report.is_equivalent()}")

    # 3. Train a small MLP with the Row-based Dropout Pattern.
    data = make_synthetic_mnist(num_train=1500, num_test=500, seed=0)
    model = MLPClassifier(MLPConfig(hidden_sizes=(256, 256), drop_rates=(0.5, 0.5),
                                    strategy="row", seed=0))
    trainer = ClassifierTrainer(model, data, ClassifierTrainingConfig(
        batch_size=64, epochs=4, learning_rate=0.01))
    run = trainer.train()
    print(f"[training] ROW pattern accuracy after {run.iterations} iterations: "
          f"{run.final_metric:.3f}")

    # 4. Paper-scale speedup estimate from the GPU timing model.
    timing = MLPTimingModel([784, 2048, 2048, 10], batch_size=128)
    baseline = timing.iteration(DropoutTimingConfig("baseline", (0.5, 0.5)))
    row = timing.iteration(DropoutTimingConfig("row", (0.5, 0.5)))
    print(f"[gpu model] 784-2048-2048-10 @ rate 0.5: baseline "
          f"{baseline.iteration_time_ms:.3f} ms/iter, ROW {row.iteration_time_ms:.3f} "
          f"ms/iter -> speedup {row.speedup_over(baseline):.2f}x")


if __name__ == "__main__":
    main()
