"""Quickstart: approximate random dropout in five minutes.

This script walks through the library's core objects:

1. run Algorithm 1 to get a dropout-pattern distribution for a target rate;
2. sample concrete Row-based patterns from it and check the statistical
   equivalence with conventional Bernoulli dropout;
3. build a small MLP with the Row-based Dropout Pattern and train it for a
   couple of epochs on the synthetic digit task, executed through the
   vectorized pattern-pool engine (``ExecutionConfig`` / ``EngineRuntime``);
4. ask the GPU timing model how much faster the same run would have been on
   the paper's GTX 1080Ti compared to conventional dropout.

Run with:  python examples/quickstart.py [--epochs 4] [--backend fused]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.backends import available_backends
from repro.data import make_synthetic_mnist
from repro.dropout import PatternDistributionSearch, PatternSampler, equivalence_report
from repro.execution import EngineRuntime, ExecutionConfig
from repro.gpu import DropoutTimingConfig, MLPTimingModel
from repro.models import MLPClassifier, MLPConfig
from repro.training import ClassifierTrainer, ClassifierTrainingConfig


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rate", type=float, default=0.5, help="target dropout rate")
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--train-samples", type=int, default=1500)
    parser.add_argument("--test-samples", type=int, default=500)
    parser.add_argument("--hidden", type=int, default=256)
    parser.add_argument("--backend", default="numpy",
                        choices=list(available_backends()),
                        help="execution backend of the compact engine")
    args = parser.parse_args(argv)
    target_rate = args.rate

    # 1. Algorithm 1: a distribution over pattern periods whose expected global
    #    dropout rate equals the target.
    search = PatternDistributionSearch(max_period=8)
    result = search.search(target_rate)
    print(f"[search] target rate {target_rate}: achieved {result.achieved_rate:.3f}, "
          f"entropy {result.entropy:.2f}, effective sub-models "
          f"{result.effective_sub_models():.1f}")

    # 2. Sample patterns and verify statistical equivalence (Eq. 2-3).
    sampler = PatternSampler(target_rate, max_period=8, rng=np.random.default_rng(0))
    report = equivalence_report(sampler, num_units=256, iterations=1000)
    print(f"[equivalence] per-neuron drop rate {report.empirical_unit_rate_mean:.3f} "
          f"(target {target_rate}), equivalent: {report.is_equivalent()}")

    # 3. Train a small MLP with the Row-based Dropout Pattern.  The
    #    ExecutionConfig picks the engine mode (pooled = the full vectorized
    #    engine), hot-path dtype, execution backend and the pool-wide pattern
    #    seed; the EngineRuntime applies it to the model and the trainer
    #    drives the returned schedule.
    execution = ExecutionConfig(mode="pooled", dtype="float64",
                                backend=args.backend, seed=0)
    runtime = EngineRuntime(execution)
    data = make_synthetic_mnist(num_train=args.train_samples,
                                num_test=args.test_samples, seed=0)
    model = MLPClassifier(MLPConfig(hidden_sizes=(args.hidden, args.hidden),
                                    drop_rates=(target_rate, target_rate),
                                    strategy="row", seed=0))
    trainer = ClassifierTrainer(model, data, ClassifierTrainingConfig(
        batch_size=64, epochs=args.epochs, learning_rate=0.01), runtime=runtime)
    run = trainer.train()
    stats = run.engine_stats
    print(f"[training] ROW pattern accuracy after {run.iterations} iterations: "
          f"{run.final_metric:.3f}")
    print(f"[engine] {execution.describe()} | pools consumed "
          f"{stats['pools']['consumed']} | backend calls "
          f"{sum(stats['backend_calls'].values())}")

    # 4. Paper-scale speedup estimate from the GPU timing model.
    timing = MLPTimingModel([784, 2048, 2048, 10], batch_size=128)
    baseline = timing.iteration(DropoutTimingConfig("baseline", (0.5, 0.5)))
    row = timing.iteration(DropoutTimingConfig("row", (0.5, 0.5)))
    print(f"[gpu model] 784-2048-2048-10 @ rate 0.5: baseline "
          f"{baseline.iteration_time_ms:.3f} ms/iter, ROW {row.iteration_time_ms:.3f} "
          f"ms/iter -> speedup {row.speedup_over(baseline):.2f}x")


if __name__ == "__main__":
    main()
