"""Section IV-C style experiment: word-level LSTM with approximate dropout.

Trains a 2-layer LSTM language model on the synthetic Zipfian corpus with
conventional dropout and with the Row-based pattern, reporting perplexity,
next-word accuracy and the modelled speedup at the paper's LSTM dimensions.

Both runs are built through the unified execution stack (``ExecutionConfig``
/ ``EngineRuntime``), which also accelerates the LSTM's vocabulary
projection: under the compact modes the projection GEMM skips the columns
the output dropout's row pattern zeroed.

Run with:  python examples/lstm_language_model.py [--rate 0.5] [--epochs 2]
           [--mode pooled] [--backend fused] [--recurrent tiled]
"""

from __future__ import annotations

import argparse

from repro.backends import available_backends
from repro.data import make_synthetic_corpus
from repro.execution import (
    EXECUTION_MODES,
    RECURRENT_MODES,
    EngineRuntime,
    ExecutionConfig,
)
from repro.experiments.common import lstm_speedup
from repro.models import LSTMConfig, LSTMLanguageModel
from repro.training import LanguageModelTrainer, LanguageModelTrainingConfig


def train_one(strategy: str, rate: float, corpus, epochs: int, hidden: int,
              runtime: EngineRuntime) -> dict:
    model = LSTMLanguageModel(LSTMConfig(
        vocab_size=corpus.vocab_size, embed_size=hidden, hidden_size=hidden,
        num_layers=2, drop_rates=(rate, rate), strategy=strategy, seed=0))
    trainer = LanguageModelTrainer(model, corpus, LanguageModelTrainingConfig(
        batch_size=10, seq_len=20, epochs=epochs, learning_rate=1.0,
        eval_metric="perplexity"), runtime=runtime)
    result = trainer.train()
    trainer.config.eval_metric = "accuracy"
    accuracy = trainer.evaluate("test")
    return {"strategy": result.strategy, "perplexity": result.final_metric,
            "accuracy": accuracy, "wall_s": result.wall_time_s}


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rate", type=float, default=0.5)
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--hidden", type=int, default=64)
    parser.add_argument("--vocab", type=int, default=400)
    parser.add_argument("--train-tokens", type=int, default=12000)
    parser.add_argument("--eval-tokens", type=int, default=2000)
    parser.add_argument("--mode", default="pooled", choices=list(EXECUTION_MODES),
                        help="engine execution mode of the pattern runs")
    parser.add_argument("--backend", default="numpy",
                        choices=list(available_backends()),
                        help="execution backend of the compact engine")
    parser.add_argument("--recurrent", default="dense",
                        choices=list(RECURRENT_MODES),
                        help="run the recurrent weight_h projection as a "
                             "gate-aligned DropConnect pattern site")
    args = parser.parse_args(argv)

    execution = ExecutionConfig(mode=args.mode, backend=args.backend,
                                recurrent=args.recurrent, seed=0)
    runtime = EngineRuntime(execution)
    corpus = make_synthetic_corpus(vocab_size=args.vocab,
                                   num_train_tokens=args.train_tokens,
                                   num_valid_tokens=args.eval_tokens,
                                   num_test_tokens=args.eval_tokens, seed=1)
    print(f"Training 2x{args.hidden} LSTM LM, vocab {args.vocab}, dropout {args.rate} "
          f"({execution.describe()})\n")
    rows = [train_one(strategy, args.rate, corpus, args.epochs, args.hidden, runtime)
            for strategy in ("original", "row")]

    print(f"{'strategy':10s} {'perplexity':>11s} {'accuracy':>9s} {'wall s':>7s}")
    for row in rows:
        print(f"{row['strategy']:10s} {row['perplexity']:11.2f} {row['accuracy']:9.3f} "
              f"{row['wall_s']:7.1f}")

    # The speedup the paper reports is for the full-size 2x1500 LSTM on a
    # GTX 1080Ti; reproduce that column with the timing model.
    speedup = lstm_speedup(8800, 1500, 2, (args.rate, args.rate), "row")
    print(f"\nModelled speedup at the paper's LSTM dimensions (2x1500, vocab 8800): "
          f"{speedup:.2f}x")
    stats = runtime.stats()
    print(f"Engine: pool draws consumed {stats['pools']['consumed']}, "
          f"backend calls {sum(stats['backend_calls'].values())} "
          f"({stats['backend']})")


if __name__ == "__main__":
    main()
