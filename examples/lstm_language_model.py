"""Section IV-C style experiment: word-level LSTM with approximate dropout.

Trains a 2-layer LSTM language model on the synthetic Zipfian corpus with
conventional dropout and with the Row-based pattern, reporting perplexity,
next-word accuracy and the modelled speedup at the paper's LSTM dimensions.

Run with:  python examples/lstm_language_model.py [--rate 0.5] [--epochs 2]
"""

from __future__ import annotations

import argparse

from repro.data import make_synthetic_corpus
from repro.experiments.common import lstm_speedup
from repro.models import LSTMConfig, LSTMLanguageModel
from repro.training import LanguageModelTrainer, LanguageModelTrainingConfig


def train_one(strategy: str, rate: float, corpus, epochs: int, hidden: int) -> dict:
    model = LSTMLanguageModel(LSTMConfig(
        vocab_size=corpus.vocab_size, embed_size=hidden, hidden_size=hidden,
        num_layers=2, drop_rates=(rate, rate), strategy=strategy, seed=0))
    trainer = LanguageModelTrainer(model, corpus, LanguageModelTrainingConfig(
        batch_size=10, seq_len=20, epochs=epochs, learning_rate=1.0,
        eval_metric="perplexity"))
    result = trainer.train()
    trainer.config.eval_metric = "accuracy"
    accuracy = trainer.evaluate("test")
    return {"strategy": result.strategy, "perplexity": result.final_metric,
            "accuracy": accuracy, "wall_s": result.wall_time_s}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rate", type=float, default=0.5)
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--hidden", type=int, default=64)
    parser.add_argument("--vocab", type=int, default=400)
    parser.add_argument("--train-tokens", type=int, default=12000)
    args = parser.parse_args()

    corpus = make_synthetic_corpus(vocab_size=args.vocab,
                                   num_train_tokens=args.train_tokens,
                                   num_valid_tokens=2000, num_test_tokens=2000, seed=1)
    print(f"Training 2x{args.hidden} LSTM LM, vocab {args.vocab}, dropout {args.rate}\n")
    rows = [train_one(strategy, args.rate, corpus, args.epochs, args.hidden)
            for strategy in ("original", "row")]

    print(f"{'strategy':10s} {'perplexity':>11s} {'accuracy':>9s} {'wall s':>7s}")
    for row in rows:
        print(f"{row['strategy']:10s} {row['perplexity']:11.2f} {row['accuracy']:9.3f} "
              f"{row['wall_s']:7.1f}")

    # The speedup the paper reports is for the full-size 2x1500 LSTM on a
    # GTX 1080Ti; reproduce that column with the timing model.
    speedup = lstm_speedup(8800, 1500, 2, (args.rate, args.rate), "row")
    print(f"\nModelled speedup at the paper's LSTM dimensions (2x1500, vocab 8800): "
          f"{speedup:.2f}x")


if __name__ == "__main__":
    main()
