"""Sharded data-parallel training with the shared-memory all-reduce.

Trains one row-pattern MLP on the synthetic digit task through
``repro.distributed.DistributedTrainer``: each global batch is strided
across ``--shards`` spawn-context worker processes, per-shard gradients meet
in a preallocated shared-memory arena (fixed tree reduce, one coordinator
optimizer step), and every shard draws its dropout patterns from a
deterministic ``SeedSequence`` spawn of the pool seed.  The script runs the
sharded training twice with the same seed and verifies the two histories are
**bit-identical**, then trains the same model single-process for an
accuracy/wall-clock comparison (on a box with fewer than ``shards + 1``
cores the sharded run is expected to be slower — the win needs cores).

Run with:  python examples/distributed_training.py [--shards 2] [--epochs 4]
           [--backend stacked] [--optimizer sparse]
"""

from __future__ import annotations

import argparse

from repro.backends import available_backends
from repro.data import make_synthetic_mnist
from repro.distributed import DistributedTrainer
from repro.execution import EngineRuntime, ExecutionConfig
from repro.models import MLPClassifier, MLPConfig
from repro.training import ClassifierTrainer, ClassifierTrainingConfig


def build_trainer(args, data, shards: int):
    model = MLPClassifier(MLPConfig(hidden_sizes=(args.hidden, args.hidden),
                                    drop_rates=(args.rate, args.rate),
                                    strategy="row", seed=0))
    runtime = EngineRuntime(ExecutionConfig(
        mode="pooled", backend=args.backend, optimizer=args.optimizer,
        seed=args.seed, shards=shards))
    config = ClassifierTrainingConfig(batch_size=args.batch, epochs=args.epochs,
                                      learning_rate=0.01, momentum=0.9, seed=3)
    if shards > 1:
        return DistributedTrainer(model, data, config, runtime=runtime)
    return ClassifierTrainer(model, data, config, runtime=runtime)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=2,
                        help="data-parallel worker processes (>= 2)")
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--hidden", type=int, default=128)
    parser.add_argument("--batch", type=int, default=64)
    parser.add_argument("--rate", type=float, default=0.5)
    parser.add_argument("--train-samples", type=int, default=1024)
    parser.add_argument("--test-samples", type=int, default=256)
    parser.add_argument("--seed", type=int, default=0,
                        help="pool-wide pattern seed (spawned per shard)")
    parser.add_argument("--backend", default="numpy",
                        choices=list(available_backends()))
    parser.add_argument("--optimizer", default="dense",
                        choices=["dense", "sparse"])
    args = parser.parse_args(argv)
    if args.shards < 2:
        parser.error("--shards must be >= 2 (use mlp_mnist_training.py for "
                     "single-process runs)")

    data = make_synthetic_mnist(num_train=args.train_samples,
                                num_test=args.test_samples, seed=1)
    print(f"Training 784-{args.hidden}-{args.hidden}-10 MLP across "
          f"{args.shards} shards, {args.epochs} epochs "
          f"(backend={args.backend}, optimizer={args.optimizer})\n")

    first = build_trainer(args, data, args.shards).train()
    second = build_trainer(args, data, args.shards).train()
    identical = (first.history.train_loss == second.history.train_loss
                 and first.history.eval_metric == second.history.eval_metric)
    dist = first.engine_stats["distributed"]
    print(f"[determinism] two sharded runs, same seed + shard count: "
          f"{'bit-identical' if identical else 'DIVERGED'}")
    print(f"[distributed] shards={dist['shards']} steps={dist['steps']} "
          f"reduce_ms={dist['reduce_ms']:.1f}")

    single = build_trainer(args, data, shards=1).train()
    print(f"\n{'run':12s} {'accuracy':>9s} {'wall s':>7s}")
    print(f"{'sharded':12s} {first.final_metric:9.3f} {first.wall_time_s:7.1f}")
    print(f"{'single':12s} {single.final_metric:9.3f} "
          f"{single.wall_time_s:7.1f}")
    if not identical:
        raise SystemExit("sharded training histories diverged")


if __name__ == "__main__":
    main()
