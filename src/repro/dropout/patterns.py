"""Regular dropout patterns: Row-based (RDP) and Tile-based (TDP).

A *dropout pattern* (Section III of the paper) is the combination of dropped
neurons or synapses used for one training iteration.  Both pattern families
are parameterised by a period ``dp`` and a bias ``b``:

* **RDP** keeps every row ``i`` of the weight/output matrix with
  ``(i - b) mod dp == 0`` and drops the other ``dp - 1`` of every ``dp`` rows,
  i.e. a fraction ``(dp - 1) / dp`` of the neurons is dropped.
* **TDP** does the same at the granularity of ``tile x tile`` blocks of the
  weight matrix (structured DropConnect); ``dp - 1`` of every ``dp`` tiles are
  dropped.

Because the pattern is regular and known before the GEMM is launched, the
surviving rows/tiles can be gathered into *compact* operands whose
multiplication costs roughly ``1/dp`` of the dense GEMM — this is the whole
acceleration mechanism.  The classes below produce the kept indices, 0/1
masks, compact-gather/scatter helpers and the bookkeeping the GPU cost model
needs (kept fraction, operand shapes).

Index convention: the paper writes biases as ``b ∈ {1, .., dp}`` with kept
rows satisfying ``(i - b) mod dp == 0`` for 1-based row indices.  We use
0-based indices throughout the code, so a bias ``b ∈ {0, .., dp-1}`` keeps
rows with ``i mod dp == b``.  The two are the same family of patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property, lru_cache

import numpy as np


def _freeze(array: np.ndarray) -> np.ndarray:
    """Mark an array read-only so cached pattern data cannot be corrupted."""
    array.flags.writeable = False
    return array


def max_row_patterns(num_units: int) -> int:
    """Maximum usable period ``dp`` for RDP on a layer with ``num_units`` neurons.

    The paper sets ``dp_max = M`` for an ``M x N`` output matrix; a period
    larger than the number of units would leave at most one row kept anyway.
    """
    if num_units <= 0:
        raise ValueError("num_units must be positive")
    return num_units


def max_tile_patterns(rows: int, cols: int, tile: int = 32) -> int:
    """Maximum period ``dp`` for TDP on a ``rows x cols`` weight matrix.

    Following the paper, ``dp_max = floor(M / x) * floor(N / y)`` for tile size
    ``x = y = tile`` — i.e. the total number of whole tiles.  Matrices smaller
    than a single tile still get one tile (the whole matrix).
    """
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    if tile <= 0:
        raise ValueError("tile must be positive")
    tiles = max(rows // tile, 1) * max(cols // tile, 1)
    return max(tiles, 1)


def row_pattern_mask(num_units: int, dp: int, bias: int,
                     dtype=np.float64) -> np.ndarray:
    """0/1 keep-mask over ``num_units`` rows for pattern ``(dp, bias)``.

    ``mask[i] == 1`` means row/neuron ``i`` is kept.  ``dtype`` selects the
    floating dtype of the mask so a float32 execution path never builds
    float64 intermediates.
    """
    _validate_period(dp, bias)
    indices = np.arange(num_units)
    return (indices % dp == bias).astype(dtype)


def tile_pattern_mask(rows: int, cols: int, dp: int, bias: int, tile: int = 32,
                      dtype=np.float64) -> np.ndarray:
    """0/1 keep-mask of shape ``(rows, cols)`` for tile pattern ``(dp, bias)``.

    Tiles are numbered row-major over the tile grid; tile ``t`` is kept when
    ``t mod dp == bias``.  Rows/columns beyond the last whole tile belong to
    the (partial) edge tiles of their row/column block.  ``dtype`` selects the
    floating dtype of the mask.
    """
    _validate_period(dp, bias)
    if tile <= 0:
        raise ValueError("tile must be positive")
    tile_rows = int(np.ceil(rows / tile))
    tile_cols = int(np.ceil(cols / tile))
    tile_ids = np.arange(tile_rows * tile_cols).reshape(tile_rows, tile_cols)
    keep_tiles = (tile_ids % dp == bias)
    mask = np.repeat(np.repeat(keep_tiles, tile, axis=0), tile, axis=1)
    return mask[:rows, :cols].astype(dtype)


def _validate_period(dp: int, bias: int) -> None:
    if dp < 1:
        raise ValueError(f"pattern period dp must be >= 1, got {dp}")
    if not 0 <= bias < dp:
        raise ValueError(f"bias must be in [0, dp), got bias={bias}, dp={dp}")


@dataclass(frozen=True)
class RowDropoutPattern:
    """A concrete Row-based Dropout Pattern for one layer and one iteration.

    Attributes
    ----------
    num_units:
        Number of neurons in the layer (rows of the output matrix).
    dp:
        Pattern period; one row in every ``dp`` is kept.
    bias:
        Which phase of the period is kept, ``0 <= bias < dp``.
    """

    num_units: int
    dp: int
    bias: int

    def __post_init__(self):
        if self.num_units <= 0:
            raise ValueError("num_units must be positive")
        _validate_period(self.dp, self.bias)

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @cached_property
    def kept_indices(self) -> np.ndarray:
        """Indices of the neurons that survive this iteration (cached, read-only)."""
        return _freeze(np.arange(self.bias, self.num_units, self.dp))

    @cached_property
    def dropped_indices(self) -> np.ndarray:
        """Indices of the dropped neurons (cached, read-only)."""
        mask = np.ones(self.num_units, dtype=bool)
        mask[self.kept_indices] = False
        return _freeze(np.nonzero(mask)[0])

    @property
    def num_kept(self) -> int:
        return len(self.kept_indices)

    @property
    def keep_fraction(self) -> float:
        """Fraction of neurons kept (≈ 1/dp)."""
        return self.num_kept / self.num_units

    @property
    def drop_rate(self) -> float:
        """Fraction of neurons dropped (≈ (dp-1)/dp) — the pattern's global rate."""
        return 1.0 - self.keep_fraction

    @cached_property
    def _mask_cache(self) -> dict:
        return {}

    def mask(self, dtype=np.float64) -> np.ndarray:
        """0/1 keep-mask of length ``num_units`` (cached per dtype, read-only)."""
        key = np.dtype(dtype)
        cached = self._mask_cache.get(key)
        if cached is None:
            cached = self._mask_cache[key] = _freeze(
                row_pattern_mask(self.num_units, self.dp, self.bias, dtype=key))
        return cached

    # ------------------------------------------------------------------
    # compaction helpers
    # ------------------------------------------------------------------
    def compact_rows(self, matrix: np.ndarray) -> np.ndarray:
        """Gather the kept rows of ``matrix`` (axis 0) into a compact matrix."""
        return matrix[self.kept_indices]

    def compact_cols(self, matrix: np.ndarray) -> np.ndarray:
        """Gather the kept columns of ``matrix`` (last axis)."""
        return matrix[..., self.kept_indices]

    def expand_rows(self, compact: np.ndarray) -> np.ndarray:
        """Scatter compact rows back to a full matrix, zero-filling dropped rows."""
        full_shape = (self.num_units,) + compact.shape[1:]
        full = np.zeros(full_shape, dtype=compact.dtype)
        full[self.kept_indices] = compact
        return full

    def expand_cols(self, compact: np.ndarray) -> np.ndarray:
        """Scatter compact columns back to full width, zero-filling dropped columns."""
        full_shape = compact.shape[:-1] + (self.num_units,)
        full = np.zeros(full_shape, dtype=compact.dtype)
        full[..., self.kept_indices] = compact
        return full

    def describe(self) -> str:
        return (f"RDP(dp={self.dp}, bias={self.bias}, units={self.num_units}, "
                f"drop_rate={self.drop_rate:.3f})")


@dataclass(frozen=True)
class TileDropoutPattern:
    """A concrete Tile-based Dropout Pattern over a weight matrix.

    Attributes
    ----------
    rows, cols:
        Shape of the weight matrix being dropped.
    dp:
        Pattern period over tile indices (row-major); one tile in every ``dp``
        survives.
    bias:
        Which phase of the tile period is kept, ``0 <= bias < dp``.
    tile:
        Tile edge length; the paper fixes 32 to match the 32 shared-memory
        banks of NVIDIA GPUs.
    """

    rows: int
    cols: int
    dp: int
    bias: int
    tile: int = 32

    def __post_init__(self):
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("rows and cols must be positive")
        if self.tile <= 0:
            raise ValueError("tile must be positive")
        _validate_period(self.dp, self.bias)

    # ------------------------------------------------------------------
    # tile grid
    # ------------------------------------------------------------------
    @property
    def tile_grid(self) -> tuple[int, int]:
        """Number of (possibly partial) tiles along each dimension."""
        return (int(np.ceil(self.rows / self.tile)), int(np.ceil(self.cols / self.tile)))

    @property
    def num_tiles(self) -> int:
        grid = self.tile_grid
        return grid[0] * grid[1]

    @cached_property
    def kept_tile_ids(self) -> np.ndarray:
        """Row-major indices of the surviving tiles (cached, read-only)."""
        return _freeze(np.arange(self.bias, self.num_tiles, self.dp))

    @property
    def num_kept_tiles(self) -> int:
        return len(self.kept_tile_ids)

    @cached_property
    def keep_fraction(self) -> float:
        """Fraction of weight entries kept (area-weighted over surviving tiles)."""
        mask = self.mask()
        return float(mask.mean())

    @property
    def drop_rate(self) -> float:
        return 1.0 - self.keep_fraction

    @cached_property
    def _mask_cache(self) -> dict:
        return {}

    def mask(self, dtype=np.float64) -> np.ndarray:
        """0/1 keep-mask of shape ``(rows, cols)`` (cached per dtype, read-only)."""
        key = np.dtype(dtype)
        cached = self._mask_cache.get(key)
        if cached is None:
            cached = self._mask_cache[key] = _freeze(
                tile_pattern_mask(self.rows, self.cols, self.dp, self.bias,
                                  self.tile, dtype=key))
        return cached

    def tile_bounds(self, tile_id: int) -> tuple[slice, slice]:
        """Row/column slices of tile ``tile_id`` in the full matrix."""
        grid_rows, grid_cols = self.tile_grid
        if not 0 <= tile_id < self.num_tiles:
            raise IndexError(f"tile_id {tile_id} out of range [0, {self.num_tiles})")
        tile_row, tile_col = divmod(tile_id, grid_cols)
        row_slice = slice(tile_row * self.tile, min((tile_row + 1) * self.tile, self.rows))
        col_slice = slice(tile_col * self.tile, min((tile_col + 1) * self.tile, self.cols))
        return row_slice, col_slice

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def apply_mask(self, weight: np.ndarray) -> np.ndarray:
        """Zero out the dropped tiles of ``weight`` (functional reference path)."""
        if weight.shape != (self.rows, self.cols):
            raise ValueError(
                f"weight shape {weight.shape} does not match pattern ({self.rows}, {self.cols})")
        return weight * self.mask()

    def kept_tiles(self, weight: np.ndarray) -> list[tuple[slice, slice, np.ndarray]]:
        """Return ``(row_slice, col_slice, block)`` for every surviving tile.

        This is the compact representation a GPU kernel would stage into
        shared memory: only the surviving blocks are fetched.
        """
        if weight.shape != (self.rows, self.cols):
            raise ValueError(
                f"weight shape {weight.shape} does not match pattern ({self.rows}, {self.cols})")
        blocks = []
        for tile_id in self.kept_tile_ids:
            row_slice, col_slice = self.tile_bounds(int(tile_id))
            blocks.append((row_slice, col_slice, weight[row_slice, col_slice]))
        return blocks

    def block_sparse_matmul(self, x: np.ndarray, weight: np.ndarray) -> np.ndarray:
        """Compute ``x @ (masked weight).T`` touching only surviving tiles.

        ``x`` has shape ``(batch, cols)`` (features = weight columns), the
        result has shape ``(batch, rows)``.  Numerically identical to the
        dense masked product; the point is that only ``num_kept_tiles`` block
        GEMMs are executed, which is what the GPU cost model charges for.
        """
        if x.shape[-1] != self.cols:
            raise ValueError(
                f"input feature dimension {x.shape[-1]} does not match weight cols {self.cols}")
        out = np.zeros(x.shape[:-1] + (self.rows,), dtype=np.result_type(x, weight))
        for row_slice, col_slice, block in self.kept_tiles(weight):
            out[..., row_slice] += x[..., col_slice] @ block.T
        return out

    def describe(self) -> str:
        return (f"TDP(dp={self.dp}, bias={self.bias}, shape=({self.rows}, {self.cols}), "
                f"tile={self.tile}, drop_rate={self.drop_rate:.3f})")


def recurrent_tile_mask(hidden_size: int, num_gates: int, dp: int, bias: int,
                        tile: int = 32, dtype=np.float64) -> np.ndarray:
    """0/1 keep-mask of shape ``(num_gates * hidden, hidden)`` for a
    gate-aligned recurrent weight-tile pattern (see
    :class:`RecurrentTilePattern`).  Built fresh on every call — this is the
    rebuilt-per-step mask of the ``masked`` execution baseline."""
    if num_gates < 1:
        raise ValueError("num_gates must be >= 1")
    gate = tile_pattern_mask(hidden_size, hidden_size, dp, bias, tile,
                             dtype=dtype)
    return np.tile(gate, (num_gates, 1))


@dataclass(frozen=True)
class RecurrentTilePattern:
    """Gate-aligned structured DropConnect over a recurrent weight matrix.

    The recurrent projection of an LSTM cell multiplies the hidden state by a
    ``(num_gates * hidden, hidden)`` matrix — the four gates stacked along the
    output dimension.  A recurrent weight-tile pattern applies *the same* TDP
    pattern (period ``dp``, phase ``bias``, ``tile x tile`` blocks) to each
    gate's ``(hidden, hidden)`` block:

    * every gate sees the identical structured sparsity, so no gate's
      recurrent connectivity is starved more than another's in one step;
    * execution-wise, the surviving tile-rows of the four gate blocks share
      identical column sets, which is exactly the structure the ``fused`` and
      ``stacked`` backends concatenate/batch into large GEMMs.

    Attributes
    ----------
    hidden_size:
        Hidden width ``H``; the weight has ``num_gates * H`` rows and ``H``
        columns.
    num_gates:
        Stacked gate blocks (4 for an LSTM).
    dp, bias, tile:
        The per-gate TDP parameterisation (see :class:`TileDropoutPattern`).
    """

    hidden_size: int
    num_gates: int
    dp: int
    bias: int
    tile: int = 32

    def __post_init__(self):
        if self.hidden_size <= 0:
            raise ValueError("hidden_size must be positive")
        if self.num_gates < 1:
            raise ValueError("num_gates must be >= 1")
        if self.tile <= 0:
            raise ValueError("tile must be positive")
        _validate_period(self.dp, self.bias)

    @property
    def rows(self) -> int:
        return self.num_gates * self.hidden_size

    @property
    def cols(self) -> int:
        return self.hidden_size

    @cached_property
    def gate_pattern(self) -> TileDropoutPattern:
        """The interned per-gate TDP pattern every gate block replays."""
        return tile_pattern(self.hidden_size, self.hidden_size, self.dp,
                            self.bias, self.tile)

    @property
    def num_tiles(self) -> int:
        """Tiles per gate block (the period domain of the sampler)."""
        return self.gate_pattern.num_tiles

    @property
    def keep_fraction(self) -> float:
        """Fraction of recurrent weights kept (identical per gate block)."""
        return self.gate_pattern.keep_fraction

    @property
    def drop_rate(self) -> float:
        return 1.0 - self.keep_fraction

    @cached_property
    def _mask_cache(self) -> dict:
        return {}

    def mask(self, dtype=np.float64) -> np.ndarray:
        """0/1 keep-mask of shape ``(rows, cols)`` (cached per dtype, read-only)."""
        key = np.dtype(dtype)
        cached = self._mask_cache.get(key)
        if cached is None:
            cached = self._mask_cache[key] = _freeze(
                np.tile(self.gate_pattern.mask(dtype=key), (self.num_gates, 1)))
        return cached

    def apply_mask(self, weight: np.ndarray) -> np.ndarray:
        """Zero out the dropped tiles of ``weight`` (functional reference path)."""
        if weight.shape != (self.rows, self.cols):
            raise ValueError(
                f"weight shape {weight.shape} does not match pattern "
                f"({self.rows}, {self.cols})")
        return weight * self.mask()

    def describe(self) -> str:
        return (f"RecurrentTDP(dp={self.dp}, bias={self.bias}, "
                f"hidden={self.hidden_size}, gates={self.num_gates}, "
                f"tile={self.tile}, drop_rate={self.drop_rate:.3f})")


# ----------------------------------------------------------------------
# interned (cached) pattern construction
# ----------------------------------------------------------------------
#
# A pattern is fully determined by a handful of small integers, and over a
# training run the same (dp, bias) pairs recur thousands of times (with the
# default ``dp_max = 16`` an RDP site can only ever see ``16·17/2 = 136``
# distinct patterns).  Interning the instances means the per-pattern derived
# data — kept indices, masks, tile plans — is computed once per run instead of
# once per training step, which is the heart of the vectorized pattern-pool
# execution engine.

@lru_cache(maxsize=65536)
def row_pattern(num_units: int, dp: int, bias: int) -> RowDropoutPattern:
    """Interned :class:`RowDropoutPattern`; repeated calls return the same object."""
    return RowDropoutPattern(num_units=num_units, dp=dp, bias=bias)


@lru_cache(maxsize=65536)
def tile_pattern(rows: int, cols: int, dp: int, bias: int,
                 tile: int = 32) -> TileDropoutPattern:
    """Interned :class:`TileDropoutPattern`; repeated calls return the same object."""
    return TileDropoutPattern(rows=rows, cols=cols, dp=dp, bias=bias, tile=tile)


@lru_cache(maxsize=65536)
def recurrent_tile_pattern(hidden_size: int, num_gates: int, dp: int, bias: int,
                           tile: int = 32) -> RecurrentTilePattern:
    """Interned :class:`RecurrentTilePattern`; repeated calls return the same object."""
    return RecurrentTilePattern(hidden_size=hidden_size, num_gates=num_gates,
                                dp=dp, bias=bias, tile=tile)


def pattern_cache_info() -> dict[str, object]:
    """Cache statistics of the interned pattern factories (for diagnostics)."""
    return {"row": row_pattern.cache_info(), "tile": tile_pattern.cache_info(),
            "recurrent": recurrent_tile_pattern.cache_info()}


def clear_pattern_caches() -> None:
    """Drop all interned patterns (mainly useful in long-lived test processes)."""
    row_pattern.cache_clear()
    tile_pattern.cache_clear()
    recurrent_tile_pattern.cache_clear()


# ----------------------------------------------------------------------
# vectorized batch helpers
# ----------------------------------------------------------------------

def row_pattern_masks(num_units: int, periods: np.ndarray,
                      biases: np.ndarray, dtype=np.float64) -> np.ndarray:
    """0/1 keep-masks for a whole batch of row patterns in one vectorized call.

    ``periods`` and ``biases`` are equal-length integer arrays; the result has
    shape ``(len(periods), num_units)`` with row ``k`` equal to
    ``row_pattern_mask(num_units, periods[k], biases[k])``.  ``dtype`` selects
    the floating dtype of the masks.
    """
    periods = np.asarray(periods, dtype=np.int64)
    biases = np.asarray(biases, dtype=np.int64)
    if periods.shape != biases.shape or periods.ndim != 1:
        raise ValueError("periods and biases must be 1-D arrays of equal length")
    if np.any(periods < 1) or np.any(biases < 0) or np.any(biases >= periods):
        raise ValueError("need dp >= 1 and 0 <= bias < dp for every pattern")
    indices = np.arange(num_units)
    return (indices[None, :] % periods[:, None] == biases[:, None]).astype(dtype)


def row_keep_counts(num_units: int, periods: np.ndarray,
                    biases: np.ndarray) -> np.ndarray:
    """Number of kept rows for each pattern of a batch, without building masks.

    Equals ``len(range(bias, num_units, dp))`` computed in closed form.
    """
    periods = np.asarray(periods, dtype=np.int64)
    biases = np.asarray(biases, dtype=np.int64)
    if np.any(periods < 1) or np.any(biases < 0) or np.any(biases >= periods):
        raise ValueError("need dp >= 1 and 0 <= bias < dp for every pattern")
    counts = (num_units - 1 - biases) // periods + 1
    return np.where(biases >= num_units, 0, counts)
