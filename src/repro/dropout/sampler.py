"""Per-iteration dropout-pattern sampling (Section III-D of the paper).

Once Algorithm 1 has produced the distribution ``K`` over pattern periods, the
training loop draws one concrete pattern per iteration:

1. sample a period ``dp ~ K``;
2. sample a bias ``b`` uniformly from the ``dp`` possible phases;
3. instantiate the RDP/TDP pattern for the layer being dropped.

The :class:`PatternSampler` caches the searched distribution per (target rate,
max period) pair because the search is a one-time effort ("SGD based search
and data initialization are an one-time effort" — Section IV-C), and the
:class:`PatternSchedule` groups one sampler per dropout site so a whole model
can resample all of its patterns at the top of each iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dropout.patterns import RowDropoutPattern, TileDropoutPattern
from repro.dropout.search import PatternDistributionSearch, SearchResult


class PatternSampler:
    """Samples ``(dp, bias)`` pairs from a searched pattern distribution.

    Parameters
    ----------
    target_rate:
        The global dropout rate ``p`` the pattern stream should realise.
    max_period:
        ``N`` (``dp_max``), the largest period available to the search.
    rng:
        Random generator for the per-iteration draws.
    search:
        Optional pre-configured :class:`PatternDistributionSearch`; a default
        one is built when omitted.
    """

    def __init__(self, target_rate: float, max_period: int,
                 rng: np.random.Generator | None = None,
                 search: PatternDistributionSearch | None = None):
        if max_period < 1:
            raise ValueError("max_period must be >= 1")
        self.target_rate = float(target_rate)
        self.max_period = int(max_period)
        self.rng = rng or np.random.default_rng()
        self._search = search or PatternDistributionSearch(max_period=self.max_period)
        self._result: SearchResult | None = None

    @property
    def result(self) -> SearchResult:
        """The searched distribution (computed lazily, once)."""
        if self._result is None:
            self._result = self._search.search(self.target_rate)
        return self._result

    @property
    def distribution(self) -> np.ndarray:
        return self.result.distribution

    def sample_period(self) -> int:
        """Draw a period ``dp ∈ {1..N}`` from the searched distribution."""
        return int(self.rng.choice(self.max_period, p=self.distribution) + 1)

    def sample_bias(self, period: int) -> int:
        """Draw a bias uniformly from ``{0, .., period-1}``."""
        if period < 1:
            raise ValueError("period must be >= 1")
        return int(self.rng.integers(0, period))

    def sample(self) -> tuple[int, int]:
        """Draw a full ``(dp, bias)`` pattern parameterisation."""
        period = self.sample_period()
        return period, self.sample_bias(period)

    def sample_row_pattern(self, num_units: int) -> RowDropoutPattern:
        """Draw an RDP pattern for a layer with ``num_units`` neurons."""
        period, bias = self.sample()
        period = min(period, num_units)
        bias = bias % period
        return RowDropoutPattern(num_units=num_units, dp=period, bias=bias)

    def sample_tile_pattern(self, rows: int, cols: int, tile: int = 32) -> TileDropoutPattern:
        """Draw a TDP pattern for a ``rows x cols`` weight matrix."""
        period, bias = self.sample()
        pattern = TileDropoutPattern(rows=rows, cols=cols, dp=1, bias=0, tile=tile)
        period = min(period, pattern.num_tiles)
        bias = bias % period
        return TileDropoutPattern(rows=rows, cols=cols, dp=period, bias=bias, tile=tile)

    def expected_drop_rate(self) -> float:
        """The expected global dropout rate of the sampled pattern stream."""
        return self.result.achieved_rate


@dataclass
class _Site:
    """One dropout site (a layer) managed by a :class:`PatternSchedule`."""

    name: str
    sampler: PatternSampler
    kind: str  # "row" or "tile"
    num_units: int = 0
    rows: int = 0
    cols: int = 0
    tile: int = 32
    current: RowDropoutPattern | TileDropoutPattern | None = None


class PatternSchedule:
    """Coordinates pattern sampling across all dropout sites of a model.

    The paper applies *one* pattern per layer per iteration (and the same
    pattern across the whole batch); :meth:`resample` is called once at the
    top of each training iteration and every registered site receives a fresh
    pattern drawn from its own searched distribution.
    """

    def __init__(self, rng: np.random.Generator | None = None):
        self.rng = rng or np.random.default_rng()
        self._sites: dict[str, _Site] = {}
        self.iteration = 0

    def register_row_site(self, name: str, num_units: int, target_rate: float,
                          max_period: int | None = None) -> PatternSampler:
        """Register a neuron-dropout (RDP) site for a layer of ``num_units``."""
        if name in self._sites:
            raise ValueError(f"site {name!r} already registered")
        if max_period is None:
            from repro.dropout.layers import default_max_period
            max_period = default_max_period(target_rate, num_units)
        sampler = PatternSampler(target_rate, max_period, rng=self.rng)
        self._sites[name] = _Site(name=name, sampler=sampler, kind="row",
                                  num_units=num_units)
        return sampler

    def register_tile_site(self, name: str, rows: int, cols: int, target_rate: float,
                           tile: int = 32, max_period: int | None = None) -> PatternSampler:
        """Register a weight-tile (TDP) site for a ``rows x cols`` weight matrix."""
        if name in self._sites:
            raise ValueError(f"site {name!r} already registered")
        reference = TileDropoutPattern(rows=rows, cols=cols, dp=1, bias=0, tile=tile)
        if max_period is None:
            from repro.dropout.layers import default_max_period
            max_period = default_max_period(target_rate, reference.num_tiles)
        sampler = PatternSampler(target_rate, max_period, rng=self.rng)
        self._sites[name] = _Site(name=name, sampler=sampler, kind="tile",
                                  rows=rows, cols=cols, tile=tile)
        return sampler

    def resample(self) -> dict[str, RowDropoutPattern | TileDropoutPattern]:
        """Draw a fresh pattern for every site; returns the new patterns by name."""
        self.iteration += 1
        patterns: dict[str, RowDropoutPattern | TileDropoutPattern] = {}
        for site in self._sites.values():
            if site.kind == "row":
                site.current = site.sampler.sample_row_pattern(site.num_units)
            else:
                site.current = site.sampler.sample_tile_pattern(site.rows, site.cols, site.tile)
            patterns[site.name] = site.current
        return patterns

    def current(self, name: str) -> RowDropoutPattern | TileDropoutPattern:
        """The pattern most recently sampled for ``name``."""
        site = self._sites.get(name)
        if site is None:
            raise KeyError(f"unknown dropout site {name!r}")
        if site.current is None:
            raise RuntimeError(f"site {name!r} has no pattern yet; call resample() first")
        return site.current

    def sites(self) -> list[str]:
        return list(self._sites)

    def __len__(self) -> int:
        return len(self._sites)
