"""Per-iteration dropout-pattern sampling (Section III-D of the paper).

Once Algorithm 1 has produced the distribution ``K`` over pattern periods, the
training loop draws one concrete pattern per iteration:

1. sample a period ``dp ~ K``;
2. sample a bias ``b`` uniformly from the ``dp`` possible phases;
3. instantiate the RDP/TDP pattern for the layer being dropped.

The :class:`PatternSampler` caches the searched distribution per (target rate,
max period) pair because the search is a one-time effort ("SGD based search
and data initialization are an one-time effort" — Section IV-C), and the
:class:`PatternSchedule` groups one sampler per dropout site so a whole model
can resample all of its patterns at the top of each iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.dropout.patterns import (
    RecurrentTilePattern,
    RowDropoutPattern,
    TileDropoutPattern,
    recurrent_tile_pattern,
    row_pattern,
    tile_pattern,
)
from repro.dropout.search import PatternDistributionSearch, SearchResult


class PatternSampler:
    """Samples ``(dp, bias)`` pairs from a searched pattern distribution.

    Parameters
    ----------
    target_rate:
        The global dropout rate ``p`` the pattern stream should realise.
    max_period:
        ``N`` (``dp_max``), the largest period available to the search.
    rng:
        Random generator for the per-iteration draws.
    search:
        Optional pre-configured :class:`PatternDistributionSearch`; a default
        one is built when omitted.
    """

    def __init__(self, target_rate: float, max_period: int,
                 rng: np.random.Generator | None = None,
                 search: PatternDistributionSearch | None = None):
        if max_period < 1:
            raise ValueError("max_period must be >= 1")
        self.target_rate = float(target_rate)
        self.max_period = int(max_period)
        self.rng = rng or np.random.default_rng()
        self._search = search or PatternDistributionSearch(max_period=self.max_period)
        self._result: SearchResult | None = None

    @property
    def result(self) -> SearchResult:
        """The searched distribution (computed lazily, once)."""
        if self._result is None:
            self._result = self._search.search(self.target_rate)
        return self._result

    @property
    def distribution(self) -> np.ndarray:
        return self.result.distribution

    def sample_period(self) -> int:
        """Draw a period ``dp ∈ {1..N}`` from the searched distribution."""
        return int(self.rng.choice(self.max_period, p=self.distribution) + 1)

    def sample_bias(self, period: int) -> int:
        """Draw a bias uniformly from ``{0, .., period-1}``."""
        if period < 1:
            raise ValueError("period must be >= 1")
        return int(self.rng.integers(0, period))

    def sample(self) -> tuple[int, int]:
        """Draw a full ``(dp, bias)`` pattern parameterisation."""
        period = self.sample_period()
        return period, self.sample_bias(period)

    def sample_row_pattern(self, num_units: int) -> RowDropoutPattern:
        """Draw an RDP pattern for a layer with ``num_units`` neurons."""
        period, bias = self.sample()
        period = min(period, num_units)
        bias = bias % period
        return row_pattern(num_units, period, bias)

    def sample_tile_pattern(self, rows: int, cols: int, tile: int = 32) -> TileDropoutPattern:
        """Draw a TDP pattern for a ``rows x cols`` weight matrix."""
        period, bias = self.sample()
        reference = TileDropoutPattern(rows=rows, cols=cols, dp=1, bias=0, tile=tile)
        period = min(period, reference.num_tiles)
        bias = bias % period
        return tile_pattern(rows, cols, period, bias, tile)

    def sample_recurrent_pattern(self, hidden_size: int, num_gates: int = 4,
                                 tile: int = 32) -> RecurrentTilePattern:
        """Draw a gate-aligned weight-tile (DropConnect) pattern for a
        ``(num_gates * hidden, hidden)`` recurrent weight matrix.

        The period domain is the per-gate tile grid — the same ``(dp, bias)``
        is replayed by every gate block.
        """
        period, bias = self.sample()
        reference = TileDropoutPattern(rows=hidden_size, cols=hidden_size,
                                       dp=1, bias=0, tile=tile)
        period = min(period, reference.num_tiles)
        bias = bias % period
        return recurrent_tile_pattern(hidden_size, num_gates, period, bias, tile)

    # ------------------------------------------------------------------
    # vectorized (batched) sampling — the pattern-pool fast path
    # ------------------------------------------------------------------
    def sample_many(self, count: int) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``count`` ``(dp, bias)`` pairs in two vectorized RNG calls.

        Statistically identical to ``count`` repeated :meth:`sample` calls:
        periods come from the searched distribution, biases are uniform over
        ``{0, .., dp-1}`` conditional on the period.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        periods = self.rng.choice(self.max_period, size=count,
                                  p=self.distribution).astype(np.int64) + 1
        biases = np.floor(self.rng.random(count) * periods).astype(np.int64)
        return periods, biases

    def sample_row_patterns(self, num_units: int, count: int) -> list[RowDropoutPattern]:
        """Batched :meth:`sample_row_pattern`: one vectorized draw, interned patterns."""
        periods, biases = self.sample_many(count)
        periods = np.minimum(periods, num_units)
        biases = biases % periods
        return [row_pattern(num_units, int(dp), int(b))
                for dp, b in zip(periods, biases)]

    def sample_tile_patterns(self, rows: int, cols: int, count: int,
                             tile: int = 32) -> list[TileDropoutPattern]:
        """Batched :meth:`sample_tile_pattern`: one vectorized draw, interned patterns."""
        reference = TileDropoutPattern(rows=rows, cols=cols, dp=1, bias=0, tile=tile)
        periods, biases = self.sample_many(count)
        periods = np.minimum(periods, reference.num_tiles)
        biases = biases % periods
        return [tile_pattern(rows, cols, int(dp), int(b), tile)
                for dp, b in zip(periods, biases)]

    def sample_recurrent_patterns(self, hidden_size: int, num_gates: int,
                                  count: int, tile: int = 32,
                                  ) -> list[RecurrentTilePattern]:
        """Batched :meth:`sample_recurrent_pattern`: one vectorized draw,
        interned patterns."""
        reference = TileDropoutPattern(rows=hidden_size, cols=hidden_size,
                                       dp=1, bias=0, tile=tile)
        periods, biases = self.sample_many(count)
        periods = np.minimum(periods, reference.num_tiles)
        biases = biases % periods
        return [recurrent_tile_pattern(hidden_size, num_gates, int(dp), int(b), tile)
                for dp, b in zip(periods, biases)]

    def expected_drop_rate(self) -> float:
        """The expected global dropout rate of the sampled pattern stream."""
        return self.result.achieved_rate


def is_pattern_site(module) -> bool:
    """True when ``module`` is a live, poolable dropout site.

    The single definition shared by :meth:`PatternSchedule.from_model` and
    :meth:`repro.execution.EngineRuntime.bind`: the module must expose the
    pool protocol (``draw_pool``/``set_pattern``) and actually drop something.
    """
    return (callable(getattr(module, "draw_pool", None))
            and callable(getattr(module, "set_pattern", None))
            and getattr(module, "drop_rate", 0.0) > 0.0)


class PatternPool:
    """A pre-drawn pool of dropout patterns for one site.

    The pool is filled by a single vectorized draw (``draw(count)``) and then
    consumed one pattern per training step; when it runs dry it refills itself
    with another batched draw.  Because patterns are interned, a pool holds at
    most a few dozen distinct objects regardless of its length.
    """

    def __init__(self, draw: Callable[[int], Sequence],
                 pool_size: int = 1024):
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self._draw = draw
        self.pool_size = int(pool_size)
        self._patterns: Sequence = []
        self._cursor = 0
        self.refills = 0
        self.consumed = 0

    def refill(self, count: int | None = None) -> None:
        """Replace the remaining pool contents with a fresh batched draw."""
        self._patterns = self._draw(int(count or self.pool_size))
        self._cursor = 0
        self.refills += 1

    def next(self):
        """The next pooled pattern (refilling with a batched draw when dry)."""
        if self._cursor >= len(self._patterns):
            self.refill()
        pattern = self._patterns[self._cursor]
        self._cursor += 1
        self.consumed += 1
        return pattern

    @property
    def remaining(self) -> int:
        return len(self._patterns) - self._cursor

    def __len__(self) -> int:
        return len(self._patterns)


@dataclass
class _Site:
    """One dropout site (a layer) managed by a :class:`PatternSchedule`."""

    name: str
    sampler: PatternSampler
    kind: str  # "row" or "tile"
    num_units: int = 0
    rows: int = 0
    cols: int = 0
    tile: int = 32
    current: RowDropoutPattern | TileDropoutPattern | None = None


@dataclass
class _PooledSite:
    """A dropout site bound to a live layer module, fed from a pattern pool."""

    name: str
    module: object  # a layer exposing draw_pool(count) and set_pattern(pattern)
    pool: PatternPool
    current: RowDropoutPattern | TileDropoutPattern | None = None


class PatternSchedule:
    """Coordinates pattern sampling across all dropout sites of a model.

    The paper applies *one* pattern per layer per iteration (and the same
    pattern across the whole batch); :meth:`resample` is called once at the
    top of each training iteration and every registered site receives a fresh
    pattern drawn from its own searched distribution.

    Two kinds of sites coexist:

    * *descriptor sites* (:meth:`register_row_site` / :meth:`register_tile_site`)
      own their sampler and draw one pattern per :meth:`resample` call — the
      original scalar path, kept for ad-hoc use;
    * *pooled sites* (:meth:`attach_module` / :meth:`from_model`) wrap a live
      layer module and feed it from a :class:`PatternPool` that is filled by
      one batched numpy draw per epoch (:meth:`plan`); :meth:`step` installs
      the next pooled pattern into every attached module.
    """

    def __init__(self, rng: np.random.Generator | None = None,
                 pool_size: int = 1024):
        self.rng = rng or np.random.default_rng()
        self._sites: dict[str, _Site] = {}
        self._pooled: dict[str, _PooledSite] = {}
        self.pool_size = int(pool_size)
        self.iteration = 0

    # ------------------------------------------------------------------
    # pooled (module-bound) sites — the vectorized engine entry point
    # ------------------------------------------------------------------
    @classmethod
    def from_model(cls, model, pool_size: int = 1024,
                   rng: np.random.Generator | None = None) -> "PatternSchedule":
        """Build a schedule with one pooled site per pattern layer of ``model``.

        A module qualifies as a site when it exposes both ``draw_pool`` and
        ``set_pattern`` (every approximate-dropout layer does) and actually
        drops something (``drop_rate > 0``).  Models whose strategy has no
        pattern layers (conventional dropout, no dropout) yield an empty
        schedule, for which :meth:`step` falls back to the model's own
        ``resample_patterns``.
        """
        schedule = cls(rng=rng, pool_size=pool_size)
        schedule._model = model
        for index, module in enumerate(model.modules()):
            if module is model or not is_pattern_site(module):
                continue
            name = f"site{index}:{type(module).__name__}"
            schedule.attach_module(name, module)
        return schedule

    @classmethod
    def scalar_for_model(cls, model,
                         rng: np.random.Generator | None = None) -> "PatternSchedule":
        """A schedule that resamples ``model`` per step without any pooling.

        This is the scalar (per-step, per-site RNG round-trip) sampling path of
        the seed implementation: :meth:`step` falls back to the model's own
        ``resample_patterns()``.  Used by the ``masked`` and ``compact``
        execution modes of :class:`repro.execution.EngineRuntime`.
        """
        schedule = cls(rng=rng)
        schedule._model = model
        return schedule

    def attach_module(self, name: str, module) -> PatternPool:
        """Bind a live pattern layer to this schedule as a pooled site."""
        if name in self._pooled or name in self._sites:
            raise ValueError(f"site {name!r} already registered")
        draw = getattr(module, "draw_pool", None)
        install = getattr(module, "set_pattern", None)
        if not (callable(draw) and callable(install)):
            raise TypeError(
                f"module {module!r} does not expose draw_pool/set_pattern")
        pool = PatternPool(draw, pool_size=self.pool_size)
        self._pooled[name] = _PooledSite(name=name, module=module, pool=pool)
        return pool

    def plan(self, steps: int) -> None:
        """Pre-draw every pooled site's pool for the next ``steps`` iterations.

        One vectorized draw per site covers the whole epoch; pools refill
        themselves automatically if ``steps`` underestimated the epoch length.
        """
        if steps < 1:
            return
        for site in self._pooled.values():
            site.pool.refill(max(steps, 1))

    def step(self) -> dict[str, RowDropoutPattern | TileDropoutPattern]:
        """Install the next pooled pattern into every attached module.

        Falls back to the bound model's ``resample_patterns()`` when the
        schedule has no pooled sites (conventional/no-dropout strategies), so
        trainers can call :meth:`step` unconditionally.
        """
        self.iteration += 1
        patterns: dict[str, RowDropoutPattern | TileDropoutPattern] = {}
        if not self._pooled:
            model = getattr(self, "_model", None)
            if model is not None:
                model.resample_patterns()
            return patterns
        for site in self._pooled.values():
            site.current = site.pool.next()
            site.module.set_pattern(site.current)
            patterns[site.name] = site.current
        return patterns

    def pooled_sites(self) -> list[str]:
        return list(self._pooled)

    def pool_stats(self) -> dict[str, dict[str, int]]:
        """Per-site pool counters (refills, consumed, remaining) for diagnostics."""
        return {name: {"refills": site.pool.refills,
                       "consumed": site.pool.consumed,
                       "remaining": site.pool.remaining}
                for name, site in self._pooled.items()}

    def register_row_site(self, name: str, num_units: int, target_rate: float,
                          max_period: int | None = None) -> PatternSampler:
        """Register a neuron-dropout (RDP) site for a layer of ``num_units``."""
        if name in self._sites or name in self._pooled:
            raise ValueError(f"site {name!r} already registered")
        if max_period is None:
            from repro.dropout.layers import default_max_period
            max_period = default_max_period(target_rate, num_units)
        sampler = PatternSampler(target_rate, max_period, rng=self.rng)
        self._sites[name] = _Site(name=name, sampler=sampler, kind="row",
                                  num_units=num_units)
        return sampler

    def register_tile_site(self, name: str, rows: int, cols: int, target_rate: float,
                           tile: int = 32, max_period: int | None = None) -> PatternSampler:
        """Register a weight-tile (TDP) site for a ``rows x cols`` weight matrix."""
        if name in self._sites or name in self._pooled:
            raise ValueError(f"site {name!r} already registered")
        reference = TileDropoutPattern(rows=rows, cols=cols, dp=1, bias=0, tile=tile)
        if max_period is None:
            from repro.dropout.layers import default_max_period
            max_period = default_max_period(target_rate, reference.num_tiles)
        sampler = PatternSampler(target_rate, max_period, rng=self.rng)
        self._sites[name] = _Site(name=name, sampler=sampler, kind="tile",
                                  rows=rows, cols=cols, tile=tile)
        return sampler

    def resample(self) -> dict[str, RowDropoutPattern | TileDropoutPattern]:
        """Draw a fresh pattern for every site; returns the new patterns by name."""
        self.iteration += 1
        patterns: dict[str, RowDropoutPattern | TileDropoutPattern] = {}
        for site in self._sites.values():
            if site.kind == "row":
                site.current = site.sampler.sample_row_pattern(site.num_units)
            else:
                site.current = site.sampler.sample_tile_pattern(site.rows, site.cols, site.tile)
            patterns[site.name] = site.current
        return patterns

    def current(self, name: str) -> RowDropoutPattern | TileDropoutPattern:
        """The pattern most recently sampled for ``name``."""
        site = self._sites.get(name) or self._pooled.get(name)
        if site is None:
            raise KeyError(f"unknown dropout site {name!r}")
        if site.current is None:
            raise RuntimeError(f"site {name!r} has no pattern yet; call resample() first")
        return site.current

    def sites(self) -> list[str]:
        return list(self._sites) + list(self._pooled)

    def __len__(self) -> int:
        return len(self._sites) + len(self._pooled)
