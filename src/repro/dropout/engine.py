"""Execution-side machinery of the vectorized pattern-pool engine.

The compact GEMM ops in :mod:`repro.dropout.compact_ops` are semantically
simple — gather the surviving rows/tiles, run a small GEMM, scatter back —
but the seed implementation rebuilt every piece of bookkeeping (kept-index
arrays, tile slices, zero-filled scatter buffers) from scratch on every
training step.  This module provides the cached execution state that the fast
path consumes instead:

* :class:`TileExecutionPlan` — a compiled, immutable description of a TDP
  pattern: the surviving tiles grouped by tile-row with their column indices
  pre-concatenated, so the block-sparse matmul runs one GEMM per surviving
  tile-row instead of one per surviving tile, and the backward pass can
  scatter compact gradients without touching dropped tiles at all.
* :func:`compile_tile_plan` — interned plan construction (one compilation per
  distinct pattern per process, LRU-cached).
* :class:`CompactWorkspace` — a small ring of preallocated scatter buffers
  reused across training steps, so the per-step cost of the zero-filled
  full-size output/gradient arrays is a ``fill(0)`` instead of an allocation.

Buffer-reuse contract: a workspace key hands out its slots round-robin, so an
op that executes at most ``slots`` times inside one autodiff graph (the
default of 2 covers every layer in this repo, which runs once per step) never
sees one of its buffers overwritten while the tape still references it.  Ops
that may run many times per graph (e.g. inside a BPTT unroll) should not pass
a workspace.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.dropout.patterns import TileDropoutPattern, _freeze


@dataclass(frozen=True)
class TileRowGroup:
    """All surviving tiles of one (or several merged) tile-rows, fused into a
    single compact GEMM."""

    row_start: int
    row_stop: int
    col_indices: np.ndarray  # concatenated column indices of the surviving tiles
    #: When the surviving columns form one contiguous run, a slice selecting
    #: them — lets the executor take views instead of gather copies.
    col_slice: slice | None = None

    @property
    def selector(self) -> "slice | np.ndarray":
        """The cheapest numpy column selector for this group."""
        return self.col_slice if self.col_slice is not None else self.col_indices

    @property
    def num_rows(self) -> int:
        return self.row_stop - self.row_start

    @property
    def num_cols(self) -> int:
        return len(self.col_indices)


@dataclass(frozen=True)
class TileExecutionPlan:
    """Compiled compact-execution schedule for one :class:`TileDropoutPattern`.

    ``row_groups`` holds one entry per tile-row that has at least one
    surviving tile.  Within a group the column indices of the surviving tiles
    are concatenated (they are disjoint by construction), so the forward pass
    is ``out[:, r0:r1] += x[:, cols] @ W[r0:r1][:, cols].T`` — one GEMM per
    group.  The backward passes reuse the same groups to compute input and
    weight gradients compactly, never materialising the dense mask product.
    """

    rows: int
    cols: int
    dp: int
    bias: int
    tile: int
    row_groups: tuple[TileRowGroup, ...]
    #: Plan family: ``"tile"`` (a generic TDP pattern) or ``"recurrent"`` (a
    #: gate-aligned :class:`~repro.dropout.patterns.RecurrentTilePattern`
    #: replicated per gate block).  Part of the plan identity — backends key
    #: their layout caches on it so two structurally different plans with the
    #: same ``(rows, cols, dp, bias, tile)`` never share a cached layout.
    kind: str = "tile"

    @property
    def identity(self) -> tuple:
        """Hashable cache key uniquely identifying this plan's structure."""
        return (self.kind, self.rows, self.cols, self.dp, self.bias, self.tile)

    @property
    def compact_flops_fraction(self) -> float:
        """Fraction of the dense GEMM's multiply-adds the plan executes."""
        dense = self.rows * self.cols
        compact = sum(g.num_rows * g.num_cols for g in self.row_groups)
        return compact / dense if dense else 0.0


def _make_group(row_start: int, row_stop: int, col_indices: np.ndarray) -> TileRowGroup:
    contiguous = (len(col_indices) > 0
                  and col_indices[-1] - col_indices[0] + 1 == len(col_indices))
    col_slice = (slice(int(col_indices[0]), int(col_indices[-1]) + 1)
                 if contiguous else None)
    return TileRowGroup(row_start=row_start, row_stop=row_stop,
                        col_indices=_freeze(col_indices), col_slice=col_slice)


def _build_tile_plan(rows: int, cols: int, dp: int, bias: int,
                     tile: int) -> TileExecutionPlan:
    pattern = TileDropoutPattern(rows=rows, cols=cols, dp=dp, bias=bias, tile=tile)
    grid_rows, grid_cols = pattern.tile_grid
    groups: list[TileRowGroup] = []
    for tile_row in range(grid_rows):
        row_start = tile_row * tile
        row_stop = min(row_start + tile, rows)
        col_chunks: list[np.ndarray] = []
        for tile_col in range(grid_cols):
            tile_id = tile_row * grid_cols + tile_col
            if tile_id % dp == bias:
                col_start = tile_col * tile
                col_stop = min(col_start + tile, cols)
                col_chunks.append(np.arange(col_start, col_stop))
        if not col_chunks:
            continue
        group = _make_group(row_start, row_stop, np.concatenate(col_chunks))
        # Fuse with the previous group when the row ranges are adjacent and the
        # column selections identical (always the case for dp == 1, where the
        # whole plan collapses to one dense GEMM).
        if (groups and groups[-1].row_stop == group.row_start
                and groups[-1].num_cols == group.num_cols
                and np.array_equal(groups[-1].col_indices, group.col_indices)):
            previous = groups.pop()
            group = _make_group(previous.row_start, group.row_stop,
                                np.asarray(group.col_indices))
        groups.append(group)
    return TileExecutionPlan(rows=rows, cols=cols, dp=dp, bias=bias, tile=tile,
                             row_groups=tuple(groups))


@lru_cache(maxsize=65536)
def _compile_tile_plan(rows: int, cols: int, dp: int, bias: int,
                       tile: int) -> TileExecutionPlan:
    return _build_tile_plan(rows, cols, dp, bias, tile)


def compile_tile_plan(pattern: TileDropoutPattern) -> TileExecutionPlan:
    """Interned execution plan for ``pattern`` (compiled once per process)."""
    return _compile_tile_plan(pattern.rows, pattern.cols, pattern.dp,
                              pattern.bias, pattern.tile)


def tile_plan_cache_info():
    """Cache statistics of the tile-plan compiler (for diagnostics)."""
    return _compile_tile_plan.cache_info()


# ----------------------------------------------------------------------
# recurrent (gate-aligned) plan compilation
# ----------------------------------------------------------------------

def _offset_group(group: TileRowGroup, offset: int) -> TileRowGroup:
    return TileRowGroup(row_start=group.row_start + offset,
                        row_stop=group.row_stop + offset,
                        col_indices=group.col_indices,
                        col_slice=group.col_slice)


@lru_cache(maxsize=65536)
def _compile_recurrent_plan(hidden_size: int, num_gates: int, dp: int,
                            bias: int, tile: int) -> TileExecutionPlan:
    gate_plan = _compile_tile_plan(hidden_size, hidden_size, dp, bias, tile)
    groups: list[TileRowGroup] = []
    for gate in range(num_gates):
        offset = gate * hidden_size
        groups.extend(_offset_group(group, offset)
                      for group in gate_plan.row_groups)
    return TileExecutionPlan(rows=num_gates * hidden_size, cols=hidden_size,
                             dp=dp, bias=bias, tile=tile,
                             row_groups=tuple(groups), kind="recurrent")


def compile_recurrent_plan(pattern) -> TileExecutionPlan:
    """Interned execution plan for a gate-aligned
    :class:`~repro.dropout.patterns.RecurrentTilePattern`.

    The per-gate TDP plan is compiled once and replicated with a row offset
    per gate block, so every gate's tile-row groups share identical column
    sets — the structure the ``fused``/``stacked`` backends exploit.
    """
    return _compile_recurrent_plan(pattern.hidden_size, pattern.num_gates,
                                   pattern.dp, pattern.bias, pattern.tile)


def recurrent_plan_cache_info():
    """Cache statistics of the recurrent-plan compiler (for diagnostics)."""
    return _compile_recurrent_plan.cache_info()


# ----------------------------------------------------------------------
# column-class decomposition (shared by window-context ops and backends)
# ----------------------------------------------------------------------

_COLUMN_GROUP_CACHE: dict[tuple, tuple] = {}
_COLUMN_GROUP_CACHE_CAP = 65536


def plan_column_groups(plan: TileExecutionPlan,
                       ) -> tuple[tuple[TileRowGroup, ...], ...]:
    """Partition a plan's tile-row groups by identical column set.

    This is the **single definition** of the column-class structure both the
    fused/stacked backends (concatenated/batched class GEMMs) and the
    per-window recurrent context (one weight gather per class) build on —
    one partition per distinct column set, in first-appearance order, with
    the member groups' (disjoint) row ranges preserved.  Cached per plan
    identity (plans are interned, so the cache stays small).
    """
    key = plan.identity
    partitions = _COLUMN_GROUP_CACHE.get(key)
    if partitions is None:
        if len(_COLUMN_GROUP_CACHE) >= _COLUMN_GROUP_CACHE_CAP:
            _COLUMN_GROUP_CACHE.clear()
        by_cols: dict[bytes, list[TileRowGroup]] = {}
        for group in plan.row_groups:
            by_cols.setdefault(np.asarray(group.col_indices).tobytes(),
                               []).append(group)
        partitions = _COLUMN_GROUP_CACHE[key] = tuple(
            tuple(groups) for groups in by_cols.values())
    return partitions


_COLUMN_CLASS_CACHE: dict[tuple, tuple] = {}


def plan_column_classes(plan: TileExecutionPlan) -> tuple[tuple[np.ndarray, np.ndarray], ...]:
    """Group a plan's tile-row groups by identical column set.

    Returns ``(row_indices, col_indices)`` pairs — one per distinct column
    set, with the member groups' row ranges concatenated (they are disjoint
    by construction).  Derived from :func:`plan_column_groups`, so the
    recurrent window context and the fused backend always agree on the
    class structure; cached per plan identity like the partition itself.
    """
    key = plan.identity
    classes = _COLUMN_CLASS_CACHE.get(key)
    if classes is None:
        if len(_COLUMN_CLASS_CACHE) >= _COLUMN_GROUP_CACHE_CAP:
            _COLUMN_CLASS_CACHE.clear()
        built = []
        for groups in plan_column_groups(plan):
            rows = _freeze(np.concatenate([np.arange(g.row_start, g.row_stop)
                                           for g in groups]))
            built.append((rows, groups[0].col_indices))
        classes = _COLUMN_CLASS_CACHE[key] = tuple(built)
    return classes


_PLAN_ROW_CACHE: dict[tuple, np.ndarray] = {}


def plan_row_indices(plan: TileExecutionPlan) -> np.ndarray:
    """All weight rows a plan's surviving tile-row groups cover, concatenated.

    This is the dirty-row set of a plan-driven weight-gradient write
    (:meth:`~repro.backends.ExecutionBackend.tile_backward_weight` touches
    exactly these rows, and within them only surviving columns — a row-level
    overapproximation is safe because the untouched columns stay exactly
    zero).  Row groups are disjoint and ascending by construction, so the
    concatenation is sorted and duplicate-free.  Cached per plan identity
    (plans are interned, so the cache stays small).
    """
    key = plan.identity
    rows = _PLAN_ROW_CACHE.get(key)
    if rows is None:
        if len(_PLAN_ROW_CACHE) >= _COLUMN_GROUP_CACHE_CAP:
            _PLAN_ROW_CACHE.clear()
        if plan.row_groups:
            rows = np.concatenate([np.arange(g.row_start, g.row_stop)
                                   for g in plan.row_groups])
        else:
            rows = np.zeros(0, dtype=np.intp)
        rows = _PLAN_ROW_CACHE[key] = _freeze(rows)
    return rows


class CompactWorkspace:
    """Ring of preallocated scratch buffers for the compact ops' scatter steps.

    ``zeros(key, shape)`` returns a zero-filled float64 buffer.  Buffers are
    reused across calls with the same key and shape; each key rotates through
    ``slots`` physical arrays so a buffer handed out for step ``t`` is not
    recycled until ``slots`` further requests, which keeps the autodiff tape of
    the current step safe while the previous step's tape is still being
    consumed (e.g. by an optimizer reading ``.grad`` arrays in place).
    """

    def __init__(self, slots: int = 2):
        if slots < 1:
            raise ValueError("slots must be >= 1")
        self.slots = int(slots)
        self._buffers: dict[object, list[np.ndarray]] = {}
        self._cursor: dict[object, int] = {}
        self.hits = 0
        self.misses = 0

    def zeros(self, key: object, shape: tuple[int, ...],
              dtype=np.float64) -> np.ndarray:
        """A zero-filled buffer of ``shape`` for ``key`` (reused when possible)."""
        ring = self._buffers.setdefault(key, [])
        cursor = self._cursor.get(key, 0)
        if len(ring) < self.slots:
            self.misses += 1
            buffer = np.zeros(shape, dtype=dtype)
            ring.append(buffer)
            self._cursor[key] = len(ring) % self.slots
            return buffer
        buffer = ring[cursor]
        self._cursor[key] = (cursor + 1) % self.slots
        if buffer.shape != shape or buffer.dtype != np.dtype(dtype):
            self.misses += 1
            buffer = np.zeros(shape, dtype=dtype)
            ring[cursor] = buffer
            return buffer
        self.hits += 1
        buffer.fill(0.0)
        return buffer

    def clear(self) -> None:
        """Drop every buffer (and the hit/miss counters)."""
        self._buffers.clear()
        self._cursor.clear()
        self.hits = 0
        self.misses = 0

    @property
    def num_buffers(self) -> int:
        return sum(len(ring) for ring in self._buffers.values())

    def __repr__(self) -> str:
        return (f"CompactWorkspace(slots={self.slots}, buffers={self.num_buffers}, "
                f"hits={self.hits}, misses={self.misses})")
