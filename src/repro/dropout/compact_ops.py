"""Differentiable compact GEMM operations for the approximate dropout patterns.

These are the software equivalents of the modified GPU kernels the paper adds
to Caffe: instead of running the dense GEMM and then masking the output, the
forward pass *only touches the surviving rows/tiles* of the weight matrix and
scatters the compact result back into a zero-filled full-size output.  The
backward pass mirrors the same structure, so dropped neurons/synapses receive
exactly zero gradient — identical semantics to mask-based dropout, but with
``≈ 1/dp`` of the arithmetic.

Two operations are provided:

* :func:`row_compact_linear` — Row-based Dropout Pattern (RDP) applied to the
  output neurons of an affine layer, with optional compaction along the input
  dimension when the *previous* layer's pattern is known (dropped inputs are
  zero, so their columns can be skipped too).
* :func:`tile_compact_linear` — Tile-based Dropout Pattern (TDP) applied to
  the weight matrix of an affine layer (structured DropConnect).
* :func:`recurrent_compact_linear` — gate-aligned TDP (structured
  DropConnect) applied to the hidden-to-hidden projection of a recurrent
  cell; the same compiled-plan execution as the tile op, with the per-gate
  plan replicated across the stacked gate blocks.
* :func:`head_compact_linear` — class-pruned gather-GEMM of the compact loss
  heads (:mod:`repro.heads`): only the kept vocabulary rows are projected
  and the result stays *compact* (the sampled softmax consumes it directly),
  while the weight/bias gradients scatter into full-size zeroed buffers.

All of them return ordinary :class:`~repro.tensor.Tensor` objects wired into
the autodiff tape.

Fast path: both ops accept an optional :class:`~repro.dropout.engine.CompactWorkspace`.
When given, the zero-filled scatter buffers (full-size output, input/weight/bias
gradients) are drawn from the workspace's preallocated ring instead of being
allocated per step, and the tile op executes a compiled
:class:`~repro.dropout.engine.TileExecutionPlan` (one fused GEMM per surviving
tile-row, compact backward) instead of looping over individual tiles against a
dense mask.  The numerical results are identical either way.

Backends: the numeric primitives — gathers, GEMMs, scatter-buffer allocation
and the tile-plan loops — are routed through a pluggable
:class:`~repro.backends.ExecutionBackend` (``backend=`` on every op).  The
ops own the autodiff orchestration and the backend owns the array execution
strategy, so swapping ``numpy`` for an accelerated backend never changes the
tape structure or the results.  When no backend is passed, the process-wide
reference :func:`~repro.backends.default_backend` is used;
:meth:`repro.execution.EngineRuntime.bind` installs its own instance on every
pattern layer instead.
"""

from __future__ import annotations

import numpy as np

from dataclasses import dataclass, field

from repro.backends import ExecutionBackend, default_backend
from repro.dropout.engine import (
    CompactWorkspace,
    TileExecutionPlan,
    compile_recurrent_plan,
    compile_tile_plan,
    plan_column_classes,
    plan_row_indices,
)
from repro.dropout.patterns import (
    RecurrentTilePattern,
    RowDropoutPattern,
    TileDropoutPattern,
)
from repro.tensor import Tensor
from repro.tensor import dirty as _dirty


def row_compact_linear(x: Tensor, weight: Tensor, bias: Tensor | None,
                       pattern: RowDropoutPattern,
                       input_pattern: RowDropoutPattern | None = None,
                       scale_factor: float = 1.0,
                       workspace: CompactWorkspace | None = None,
                       backend: ExecutionBackend | None = None) -> Tensor:
    """Affine layer forward that only computes the rows kept by ``pattern``.

    Parameters
    ----------
    x:
        Input activations of shape ``(batch, in_features)``.
    weight:
        Weight tensor of shape ``(out_features, in_features)``.
    bias:
        Optional bias tensor of shape ``(out_features,)``.
    pattern:
        RDP pattern over the ``out_features`` neurons of this layer; dropped
        rows of the output are zero-filled.
    input_pattern:
        Optional RDP pattern of the *previous* layer over ``in_features``.
        When given, the columns of the weight matrix (and of ``x``) belonging
        to dropped inputs are skipped as well — they would be multiplied by
        zero anyway.
    scale_factor:
        Constant multiplier applied to the surviving outputs.  The layers pass
        ``1 / (1 - target_rate)`` (inverted dropout with the *expected* keep
        probability), so no rescaling is needed at inference time and a single
        aggressive pattern draw cannot blow up the activations.
    workspace:
        Optional :class:`CompactWorkspace` whose preallocated buffers are used
        for the zero-filled scatter targets (see the buffer-reuse contract in
        :mod:`repro.dropout.engine`).
    backend:
        Optional :class:`~repro.backends.ExecutionBackend` executing the
        gathers/GEMMs/allocations; the reference numpy backend when omitted.

    Returns
    -------
    Tensor of shape ``(batch, out_features)``.
    """
    if x.ndim != 2:
        raise ValueError(f"row_compact_linear expects 2-D input, got shape {x.shape}")
    out_features, in_features = weight.shape
    if pattern.num_units != out_features:
        raise ValueError(
            f"pattern covers {pattern.num_units} units but the layer has {out_features} outputs")
    if x.shape[1] != in_features:
        raise ValueError(
            f"input feature dimension {x.shape[1]} does not match weight columns {in_features}")
    if input_pattern is not None and input_pattern.num_units != in_features:
        raise ValueError(
            f"input_pattern covers {input_pattern.num_units} units but the layer "
            f"has {in_features} inputs")

    backend = backend or default_backend()
    kept_rows = pattern.kept_indices

    weight_compact = backend.gather_rows(weight.data, kept_rows)
    if input_pattern is not None:
        kept_cols = input_pattern.kept_indices
        weight_compact = backend.gather_cols(weight_compact, kept_cols)
        x_compact = backend.gather_cols(x.data, kept_cols)
    else:
        kept_cols = None
        x_compact = x.data

    out_compact = backend.gemm(x_compact, weight_compact.T)
    if bias is not None:
        out_compact += bias.data[kept_rows]
    if scale_factor != 1.0:
        out_compact *= scale_factor

    batch = x.shape[0]
    dtype = out_compact.dtype
    out_full = backend.zeros(workspace, "row_out", (batch, out_features), dtype)
    backend.scatter_cols(out_full, kept_rows, out_compact)

    def backward_x(grad: np.ndarray) -> np.ndarray:
        grad_compact = backend.gather_cols(grad, kept_rows) * scale_factor
        if kept_cols is not None:
            grad_x = backend.zeros(workspace, "row_grad_x", x.data.shape,
                                   x.data.dtype)
            backend.scatter_cols(grad_x, kept_cols,
                                 backend.gemm(grad_compact, weight_compact))
        else:
            grad_x = backend.gemm(grad_compact, weight_compact)
        return grad_x

    def backward_weight(grad: np.ndarray) -> np.ndarray:
        grad_compact = backend.gather_cols(grad, kept_rows) * scale_factor
        grad_weight = backend.zeros(workspace, "row_grad_w", weight.data.shape,
                                    weight.data.dtype)
        if kept_cols is not None:
            backend.scatter_block(grad_weight, kept_rows, kept_cols,
                                  backend.gemm(grad_compact.T, x_compact))
        else:
            backend.scatter_rows(grad_weight, kept_rows,
                                 backend.gemm(grad_compact.T, x_compact))
        return grad_weight

    parents = [(x, backward_x), (weight, backward_weight)]
    if bias is not None:
        def backward_bias(grad: np.ndarray) -> np.ndarray:
            grad_compact = backend.gather_cols(grad, kept_rows) * scale_factor
            grad_bias = backend.zeros(workspace, "row_grad_b", bias.data.shape,
                                      bias.data.dtype)
            backend.scatter_rows(grad_bias, kept_rows, grad_compact.sum(axis=0))
            return grad_bias

        parents.append((bias, backward_bias))

    return Tensor.from_op(out_full, parents, "row_compact_linear")


def tile_compact_linear(x: Tensor, weight: Tensor, bias: Tensor | None,
                        pattern: TileDropoutPattern,
                        scale_factor: float = 1.0,
                        workspace: CompactWorkspace | None = None,
                        plan: TileExecutionPlan | None = None,
                        backend: ExecutionBackend | None = None) -> Tensor:
    """Affine layer forward that only multiplies the weight tiles kept by ``pattern``.

    Parameters
    ----------
    x:
        Input activations of shape ``(batch, in_features)``.
    weight:
        Weight tensor of shape ``(out_features, in_features)``; the pattern's
        ``(rows, cols)`` must match.
    bias:
        Optional bias of shape ``(out_features,)`` (never dropped).
    pattern:
        TDP pattern over the weight matrix.
    scale_factor:
        Constant multiplier applied to the surviving tiles' contribution
        (inverted DropConnect with the expected keep probability).
    workspace:
        Optional :class:`CompactWorkspace` for the scatter buffers.
    plan:
        Optional precompiled :class:`TileExecutionPlan`; compiled (and cached
        process-wide) from ``pattern`` when omitted.
    backend:
        Optional :class:`~repro.backends.ExecutionBackend` executing the
        plan's GEMMs; the reference numpy backend loops one GEMM per
        surviving tile-row group, the ``fused`` backend batches same-shape
        groups into stacked GEMM calls.

    Returns
    -------
    Tensor of shape ``(batch, out_features)``.
    """
    if x.ndim != 2:
        raise ValueError(f"tile_compact_linear expects 2-D input, got shape {x.shape}")
    out_features, in_features = weight.shape
    if (pattern.rows, pattern.cols) != (out_features, in_features):
        raise ValueError(
            f"pattern shape ({pattern.rows}, {pattern.cols}) does not match weight "
            f"shape {weight.shape}")
    if x.shape[1] != in_features:
        raise ValueError(
            f"input feature dimension {x.shape[1]} does not match weight columns {in_features}")
    if plan is None:
        plan = compile_tile_plan(pattern)
    elif plan.kind != "tile" or (
            plan.rows, plan.cols, plan.dp, plan.bias, plan.tile) != (
            pattern.rows, pattern.cols, pattern.dp, pattern.bias, pattern.tile):
        raise ValueError("plan was compiled for a different pattern")
    return _plan_compact_linear(x, weight, bias, plan, scale_factor,
                                workspace, backend, op="tile_compact_linear",
                                key_prefix="tile")


def _plan_compact_linear(x: Tensor, weight: Tensor, bias: Tensor | None,
                         plan: TileExecutionPlan, scale_factor: float,
                         workspace: CompactWorkspace | None,
                         backend: ExecutionBackend | None,
                         op: str, key_prefix: str) -> Tensor:
    """Shared autodiff body of the plan-driven affine ops.

    Both :func:`tile_compact_linear` and :func:`recurrent_compact_linear`
    execute a compiled :class:`TileExecutionPlan` — they differ only in how
    the plan is built (generic tile grid vs gate-aligned replication) and in
    their validation, so the forward/backward orchestration lives here once.
    """
    backend = backend or default_backend()
    dtype = np.result_type(x.data, weight.data)
    batch = x.shape[0]
    out = backend.zeros(workspace, f"{key_prefix}_out", (batch, plan.rows), dtype)
    backend.tile_forward(plan, x.data, weight.data, out)
    if scale_factor != 1.0:
        out *= scale_factor
    if bias is not None:
        out += bias.data

    def backward_x(grad: np.ndarray) -> np.ndarray:
        grad_x = backend.zeros(workspace, f"{key_prefix}_grad_x", x.data.shape,
                               x.data.dtype)
        backend.tile_backward_input(plan, grad, weight.data, grad_x,
                                    scale=scale_factor)
        return grad_x

    def backward_weight(grad: np.ndarray) -> np.ndarray:
        grad_weight = backend.zeros(workspace, f"{key_prefix}_grad_w",
                                    weight.data.shape, weight.data.dtype)
        backend.tile_backward_weight(plan, grad, x.data, grad_weight,
                                     scale=scale_factor)
        # The backend wrote exactly the plan-covered rows (and within them
        # only surviving columns) — record them so the sparse optimizer can
        # skip the dropped tile-rows, whatever backend ran the write.
        _dirty.record_rows(grad_weight, plan_row_indices(plan))
        return grad_weight

    parents = [(x, backward_x), (weight, backward_weight)]
    if bias is not None:
        parents.append((bias, lambda grad: grad.sum(axis=0)))

    return Tensor.from_op(out, parents, op)


def recurrent_compact_linear(h: Tensor, weight: Tensor,
                             pattern: RecurrentTilePattern,
                             bias: Tensor | None = None,
                             scale_factor: float = 1.0,
                             workspace: CompactWorkspace | None = None,
                             plan: TileExecutionPlan | None = None,
                             backend: ExecutionBackend | None = None) -> Tensor:
    """Recurrent projection ``h @ weight.T`` touching only the tiles kept by a
    gate-aligned :class:`~repro.dropout.patterns.RecurrentTilePattern`.

    This is the structured-DropConnect step of the recurrent path: ``weight``
    is the ``(num_gates * hidden, hidden)`` hidden-to-hidden matrix of an
    LSTM cell and the same TDP pattern is applied to every gate block.
    Dropped tiles contribute exactly zero output and receive exactly zero
    gradient — identical semantics to masking the weight, at ``≈ 1/dp`` of
    the arithmetic.

    Parameters mirror :func:`tile_compact_linear`; ``plan`` defaults to the
    interned :func:`~repro.dropout.engine.compile_recurrent_plan` of the
    pattern.  The op is safe to call many times inside one autodiff graph
    (a BPTT unroll) — but then ``workspace`` must be ``None`` or sized to the
    unroll length (see the buffer-reuse contract in
    :mod:`repro.dropout.engine`).
    """
    if h.ndim != 2:
        raise ValueError(
            f"recurrent_compact_linear expects 2-D input, got shape {h.shape}")
    if (pattern.rows, pattern.cols) != tuple(weight.shape):
        raise ValueError(
            f"pattern shape ({pattern.rows}, {pattern.cols}) does not match "
            f"weight shape {weight.shape}")
    if h.shape[1] != pattern.cols:
        raise ValueError(
            f"input feature dimension {h.shape[1]} does not match weight "
            f"columns {pattern.cols}")
    if plan is None:
        plan = compile_recurrent_plan(pattern)
    elif plan.kind != "recurrent" or (
            plan.rows, plan.cols, plan.dp, plan.bias, plan.tile) != (
            pattern.rows, pattern.cols, pattern.dp, pattern.bias, pattern.tile):
        raise ValueError("plan was compiled for a different pattern")
    return _plan_compact_linear(h, weight, bias, plan, scale_factor,
                                workspace, backend,
                                op="recurrent_compact_linear",
                                key_prefix="rec")


@dataclass(frozen=True)
class RecurrentWindowContext:
    """Per-BPTT-window execution context of one recurrent DropConnect site.

    A recurrent projection runs once per *timestep*, but its pattern is fixed
    for the whole window (the schedule steps once per parameter update), so
    the expensive parts of the compact execution can be hoisted out of the
    unroll:

    * the surviving weight tiles are gathered **once per window** into a
      single flat *differentiable* tensor (``compact``) — per-class views of
      it (``blocks``) feed every timestep's GEMMs without any further
      gather;
    * symmetrically, the per-timestep weight gradients stay *compact*
      (``d out / d compact`` is a flat vector of only the surviving
      weights), so the autodiff tape accumulates small arrays across the
      unroll and the single gather op scatters into the full-size weight
      gradient once per window instead of once per timestep.
    """

    pattern: RecurrentTilePattern
    plan: TileExecutionPlan
    weight: Tensor
    classes: tuple   # (row_indices, col_indices) pairs, disjoint row sets
    compact: Tensor  # flat differentiable gather of the surviving weights
    blocks: tuple    # per-class 2-D numpy views into ``compact.data``
    #: Per-window backend scratch: the blocks are fixed for the window, so a
    #: backend may stash derived layouts here (e.g. the stacked backend's
    #: 3-D block arrays) and reuse them across the unroll's timesteps.
    scratch: dict = field(default_factory=dict)


def recurrent_compact_context(weight: Tensor, pattern: RecurrentTilePattern,
                              plan: TileExecutionPlan | None = None,
                              backend: ExecutionBackend | None = None,
                              ) -> RecurrentWindowContext:
    """Build the per-window context for :func:`recurrent_context_linear`.

    Call once per BPTT window (after the schedule installed the window's
    pattern); pass the result to every timestep.  The weight-tile gather (and
    the full-size weight-gradient scatter on the way back) then amortise over
    the whole unroll instead of being paid per timestep.
    """
    if (pattern.rows, pattern.cols) != tuple(weight.shape):
        raise ValueError(
            f"pattern shape ({pattern.rows}, {pattern.cols}) does not match "
            f"weight shape {weight.shape}")
    if plan is None:
        plan = compile_recurrent_plan(pattern)
    backend = backend or default_backend()
    classes = plan_column_classes(plan)
    flat, blocks = gather_recurrent_blocks(weight.data, classes, backend)
    return assemble_recurrent_context(weight, pattern, plan, backend,
                                      classes, flat, blocks)


def gather_recurrent_blocks(weight_data: np.ndarray, classes: tuple,
                            backend: ExecutionBackend,
                            flat: np.ndarray | None = None,
                            ) -> tuple[np.ndarray, tuple]:
    """Gather the per-class weight blocks into one flat array.

    Returns ``(flat, blocks)`` where ``blocks`` are per-class 2-D views into
    ``flat``.  Pass an existing ``flat`` (from a previous window with the
    same plan identity) to refresh it in place — the weight-tile context
    cache uses this to re-gather only optimizer-dirtied classes.
    """
    total = sum(len(rows) * len(cols) for rows, cols in classes)
    if flat is None or flat.size != total or flat.dtype != weight_data.dtype:
        flat = np.empty(total, dtype=weight_data.dtype)
    blocks, offset = [], 0
    for rows, cols in classes:
        block = backend.gather_block(weight_data, rows, cols)
        view = flat[offset:offset + block.size].reshape(block.shape)
        view[...] = block
        blocks.append(view)
        offset += block.size
    return flat, tuple(blocks)


def assemble_recurrent_context(weight: Tensor, pattern: RecurrentTilePattern,
                               plan: TileExecutionPlan,
                               backend: ExecutionBackend, classes: tuple,
                               flat: np.ndarray, blocks: tuple,
                               ) -> RecurrentWindowContext:
    """Wrap gathered class blocks into a differentiable window context.

    ``flat`` holds the concatenated surviving weights and ``blocks`` the
    per-class views into it (see :func:`gather_recurrent_blocks`).  Split
    from :func:`recurrent_compact_context` so the sparse-optimizer context
    cache can rebuild the (per-window) tape wrapper around a cached flat
    buffer without re-gathering unchanged tiles.
    """

    def backward(grad: np.ndarray) -> np.ndarray:
        # Once per window: scatter the tape-accumulated compact gradient back
        # into the full weight.  Class blocks are disjoint (disjoint row
        # sets), so plain assignment is exact; dropped tiles stay zero.
        full = backend.zeros(None, "rec_gather_grad", weight.data.shape,
                             weight.data.dtype)
        offset = 0
        for (rows, cols), block in zip(classes, blocks):
            backend.scatter_block(
                full, rows, cols,
                grad[offset:offset + block.size].reshape(block.shape))
            offset += block.size
        return full

    compact = Tensor.from_op(flat, [(weight, backward)],
                             "recurrent_block_gather")
    return RecurrentWindowContext(pattern=pattern, plan=plan, weight=weight,
                                  classes=classes, compact=compact,
                                  blocks=tuple(blocks))


def recurrent_context_linear(h: Tensor, context: RecurrentWindowContext,
                             scale_factor: float = 1.0,
                             backend: ExecutionBackend | None = None) -> Tensor:
    """One timestep of the recurrent projection against a pre-gathered context.

    Numerically identical to :func:`recurrent_compact_linear` with the
    context's pattern; gradients flow through the context's flat compact
    gather, so the gradient of every dropped weight is exactly zero while the
    per-timestep gradient arrays stay compact.
    """
    if h.ndim != 2:
        raise ValueError(
            f"recurrent_context_linear expects 2-D input, got shape {h.shape}")
    plan = context.plan
    if h.shape[1] != plan.cols:
        raise ValueError(
            f"input feature dimension {h.shape[1]} does not match weight "
            f"columns {plan.cols}")
    backend = backend or default_backend()
    dtype = np.result_type(h.data, context.compact.data)
    out = backend.zeros(None, "rec_ctx_out", (h.shape[0], plan.rows), dtype)
    # The per-class GEMM loop is a backend primitive (keyed on the plan
    # identity) so accelerated backends can batch equal-shape classes — the
    # stacked backend runs them as one 3-D np.matmul per shape family.
    backend.context_forward(plan.identity, context.classes, context.blocks,
                            h.data, out, scratch=context.scratch)
    if scale_factor != 1.0:
        out *= scale_factor

    # Both backward edges receive the same upstream grad; scale it once here
    # instead of per primitive (a scalar multiply commutes with the slicing
    # inside, so the results are bit-identical).  The one-entry cache keeps a
    # reference to the upstream array, so an id can never go stale.
    scaled_cache: list[tuple[np.ndarray, np.ndarray]] = []

    def _scaled(grad: np.ndarray) -> np.ndarray:
        if scale_factor == 1.0:
            return grad
        if scaled_cache and scaled_cache[0][0] is grad:
            return scaled_cache[0][1]
        scaled = grad * scale_factor
        scaled_cache[:] = [(grad, scaled)]
        return scaled

    def backward_h(grad: np.ndarray) -> np.ndarray:
        grad_h = backend.zeros(None, "rec_ctx_grad_h", h.data.shape, h.data.dtype)
        backend.context_backward_h(plan.identity, context.classes,
                                   context.blocks, _scaled(grad), grad_h,
                                   scratch=context.scratch)
        return grad_h

    def backward_compact(grad: np.ndarray) -> np.ndarray:
        pieces = backend.context_backward_blocks(plan.identity, context.classes,
                                                 _scaled(grad), h.data)
        return (np.concatenate([piece.ravel() for piece in pieces]) if pieces
                else np.zeros(0, dtype=context.compact.data.dtype))

    return Tensor.from_op(out, [(h, backward_h),
                                (context.compact, backward_compact)],
                          "recurrent_context_linear")


def input_compact_linear(x: Tensor, weight: Tensor, bias: Tensor | None,
                         input_pattern: RowDropoutPattern,
                         workspace: CompactWorkspace | None = None,
                         backend: ExecutionBackend | None = None) -> Tensor:
    """Affine layer that skips the input columns dropped by ``input_pattern``.

    This is the *consumer* side of a row pattern (Fig. 3(a) step 2) on its
    own: the layer's outputs are fully dense, but the columns of ``x`` that an
    upstream RDP dropout zeroed are skipped in the GEMM, together with the
    matching weight columns.  It accelerates layers that directly consume a
    pattern-dropped activation — e.g. the LSTM vocabulary projection behind
    ``output_dropout`` — where the dense product would multiply by zeros for
    ``1 - 1/dp`` of the inner dimension.

    Numerically identical (dropped columns contribute exactly zero either
    way); gradients of the dropped input columns and weight columns are zero,
    matching what the upstream mask's backward pass would produce.
    """
    if x.ndim != 2:
        raise ValueError(f"input_compact_linear expects 2-D input, got shape {x.shape}")
    out_features, in_features = weight.shape
    if input_pattern.num_units != in_features:
        raise ValueError(
            f"input_pattern covers {input_pattern.num_units} units but the layer "
            f"has {in_features} inputs")
    if x.shape[1] != in_features:
        raise ValueError(
            f"input feature dimension {x.shape[1]} does not match weight columns {in_features}")

    backend = backend or default_backend()
    kept_cols = input_pattern.kept_indices
    x_compact = backend.gather_cols(x.data, kept_cols)
    weight_compact = backend.gather_cols(weight.data, kept_cols)
    out = backend.gemm(x_compact, weight_compact.T)
    if bias is not None:
        out = out + bias.data

    def backward_x(grad: np.ndarray) -> np.ndarray:
        grad_x = backend.zeros(workspace, "input_grad_x", x.data.shape,
                               x.data.dtype)
        backend.scatter_cols(grad_x, kept_cols, backend.gemm(grad, weight_compact))
        return grad_x

    def backward_weight(grad: np.ndarray) -> np.ndarray:
        grad_weight = backend.zeros(workspace, "input_grad_w", weight.data.shape,
                                    weight.data.dtype)
        backend.scatter_cols(grad_weight, kept_cols, backend.gemm(grad.T, x_compact))
        return grad_weight

    parents = [(x, backward_x), (weight, backward_weight)]
    if bias is not None:
        parents.append((bias, lambda grad: grad.sum(axis=0)))
    return Tensor.from_op(out, parents, "input_compact_linear")


def head_compact_linear(x: Tensor, weight: Tensor, bias: Tensor | None,
                        kept_rows: np.ndarray,
                        input_pattern: RowDropoutPattern | None = None,
                        workspace: CompactWorkspace | None = None,
                        backend: ExecutionBackend | None = None) -> Tensor:
    """Class-pruned affine layer: compute only the output rows in ``kept_rows``.

    This is the gather-GEMM of the compact loss heads (:mod:`repro.heads`):
    unlike :func:`row_compact_linear`, the result is *compact* —
    ``(batch, len(kept_rows))`` — because the consumer (a sampled softmax)
    only ever looks at the kept classes, so scattering back into the
    full-vocabulary width would waste both the scatter and the downstream
    loss arithmetic.  The backward pass scatters the weight/bias gradients of
    the kept classes into full-size zero-filled buffers (drawn from
    ``workspace`` when given), so dropped classes receive exactly zero
    gradient — the same semantics every other compact op guarantees.

    Parameters
    ----------
    x:
        Input activations of shape ``(batch, in_features)``.
    weight:
        Weight tensor of shape ``(out_features, in_features)`` — for a loss
        head, the ``(vocab, hidden)`` projection matrix.
    bias:
        Optional bias of shape ``(out_features,)``.
    kept_rows:
        Integer indices of the output rows (classes) to compute.
    input_pattern:
        Optional RDP pattern of the layer *feeding* ``x`` (e.g. the LSTM's
        ``output_dropout``): dropped input columns are zero, so the matching
        columns of ``x`` and ``weight`` are skipped as well.
    workspace:
        Optional :class:`CompactWorkspace` for the full-size gradient
        scatter buffers (the weight gradient is the big one: ``vocab x
        hidden``).
    backend:
        Optional :class:`~repro.backends.ExecutionBackend`; the reference
        numpy backend when omitted.

    Returns
    -------
    Tensor of shape ``(batch, len(kept_rows))`` — compact logits, ordered as
    ``kept_rows``.
    """
    if x.ndim != 2:
        raise ValueError(f"head_compact_linear expects 2-D input, got shape {x.shape}")
    out_features, in_features = weight.shape
    kept_rows = np.asarray(kept_rows)
    if kept_rows.ndim != 1 or len(kept_rows) == 0:
        raise ValueError("kept_rows must be a non-empty 1-D index array")
    if kept_rows.min() < 0 or kept_rows.max() >= out_features:
        raise ValueError(
            f"kept_rows must index the {out_features} output rows, got range "
            f"[{kept_rows.min()}, {kept_rows.max()}]")
    if np.unique(kept_rows).size != len(kept_rows):
        # The gradient scatters assign (not accumulate) per kept row, so a
        # duplicated class would silently get last-write-wins gradients.
        raise ValueError("kept_rows must not contain duplicate classes")
    if x.shape[1] != in_features:
        raise ValueError(
            f"input feature dimension {x.shape[1]} does not match weight columns {in_features}")
    if input_pattern is not None and input_pattern.num_units != in_features:
        raise ValueError(
            f"input_pattern covers {input_pattern.num_units} units but the layer "
            f"has {in_features} inputs")

    backend = backend or default_backend()
    weight_compact = backend.gather_rows(weight.data, kept_rows)
    if input_pattern is not None:
        kept_cols = input_pattern.kept_indices
        weight_compact = backend.gather_cols(weight_compact, kept_cols)
        x_compact = backend.gather_cols(x.data, kept_cols)
    else:
        kept_cols = None
        x_compact = x.data

    out = backend.gemm(x_compact, weight_compact.T)
    if bias is not None:
        out = out + bias.data[kept_rows]

    def backward_x(grad: np.ndarray) -> np.ndarray:
        if kept_cols is not None:
            grad_x = backend.zeros(workspace, "head_grad_x", x.data.shape,
                                   x.data.dtype)
            backend.scatter_cols(grad_x, kept_cols,
                                 backend.gemm(grad, weight_compact))
            return grad_x
        return backend.gemm(grad, weight_compact)

    def backward_weight(grad: np.ndarray) -> np.ndarray:
        grad_weight = backend.zeros(workspace, "head_grad_w", weight.data.shape,
                                    weight.data.dtype)
        if kept_cols is not None:
            backend.scatter_block(grad_weight, kept_rows, kept_cols,
                                  backend.gemm(grad.T, x_compact))
        else:
            backend.scatter_rows(grad_weight, kept_rows,
                                 backend.gemm(grad.T, x_compact))
        return grad_weight

    parents = [(x, backward_x), (weight, backward_weight)]
    if bias is not None:
        def backward_bias(grad: np.ndarray) -> np.ndarray:
            grad_bias = backend.zeros(workspace, "head_grad_b", bias.data.shape,
                                      bias.data.dtype)
            backend.scatter_rows(grad_bias, kept_rows, grad.sum(axis=0))
            return grad_bias

        parents.append((bias, backward_bias))

    return Tensor.from_op(out, parents, "head_compact_linear")


def dense_masked_linear_reference(x: np.ndarray, weight: np.ndarray,
                                  bias: np.ndarray | None,
                                  mask: np.ndarray, scale_factor: float = 1.0,
                                  mask_axis: str = "rows") -> np.ndarray:
    """Dense reference implementation used by the tests.

    Computes the full GEMM and then applies the mask — exactly what a
    conventional dropout implementation does (Fig. 1(a)) — so the compact
    kernels above can be checked for numerical equivalence.

    ``mask_axis="rows"`` masks output rows (RDP/neuron dropout);
    ``mask_axis="weight"`` masks individual weights (TDP/DropConnect), in
    which case ``mask`` must have the weight's shape.
    """
    if mask_axis == "rows":
        out = x @ weight.T
        if bias is not None:
            out = out + bias
        return out * mask[None, :] * scale_factor
    if mask_axis == "weight":
        out = x @ (weight * mask).T * scale_factor
        if bias is not None:
            out = out + bias
        return out
    raise ValueError(f"unknown mask_axis {mask_axis!r}")
