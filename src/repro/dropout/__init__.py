"""Approximate Random Dropout — the paper's core contribution.

The package contains:

* :mod:`repro.dropout.patterns` — the two regular dropout-pattern families,
  Row-based Dropout Pattern (RDP) and Tile-based Dropout Pattern (TDP), and
  their compaction machinery (which rows/tiles survive, how the compact GEMM
  operands are built and how results are scattered back).
* :mod:`repro.dropout.search` — the SGD-based Search Algorithm (Algorithm 1)
  that produces the distribution ``K`` over pattern periods so that the global
  dropout rate matches a target Bernoulli rate while maximising sub-model
  diversity.
* :mod:`repro.dropout.sampler` — per-iteration sampling of a concrete pattern
  ``(dp, b)`` from ``K``.
* :mod:`repro.dropout.layers` — drop-in layer implementations that run compact
  GEMMs: :class:`ApproxRandomDropoutLinear` (RDP, neuron dropout) and
  :class:`ApproxDropConnectLinear` (TDP, structured DropConnect).
* :mod:`repro.dropout.statistics` — the statistical-equivalence analysis of
  Section III-D (per-neuron drop probability vs. the global dropout rate).
"""

from repro.dropout.patterns import (
    RowDropoutPattern,
    TileDropoutPattern,
    row_pattern_mask,
    tile_pattern_mask,
    row_pattern_masks,
    row_keep_counts,
    row_pattern,
    tile_pattern,
    pattern_cache_info,
    clear_pattern_caches,
    max_row_patterns,
    max_tile_patterns,
)
from repro.dropout.engine import (
    CompactWorkspace,
    TileExecutionPlan,
    compile_tile_plan,
)
from repro.dropout.compact_ops import (
    head_compact_linear,
    input_compact_linear,
    row_compact_linear,
    tile_compact_linear,
)
from repro.dropout.search import PatternDistributionSearch, SearchResult, pattern_drop_rates
from repro.dropout.sampler import PatternPool, PatternSampler, PatternSchedule
from repro.dropout.layers import (
    ApproxRandomDropout,
    ApproxBlockDropout,
    ApproxRandomDropoutLinear,
    ApproxDropConnectLinear,
)
from repro.dropout.statistics import (
    empirical_unit_drop_rate,
    expected_global_drop_rate,
    equivalence_report,
    sub_model_count,
)

__all__ = [
    "RowDropoutPattern",
    "TileDropoutPattern",
    "row_pattern_mask",
    "tile_pattern_mask",
    "row_pattern_masks",
    "row_keep_counts",
    "row_pattern",
    "tile_pattern",
    "pattern_cache_info",
    "clear_pattern_caches",
    "CompactWorkspace",
    "TileExecutionPlan",
    "compile_tile_plan",
    "head_compact_linear",
    "input_compact_linear",
    "row_compact_linear",
    "tile_compact_linear",
    "max_row_patterns",
    "max_tile_patterns",
    "PatternDistributionSearch",
    "SearchResult",
    "pattern_drop_rates",
    "PatternPool",
    "PatternSampler",
    "PatternSchedule",
    "ApproxRandomDropout",
    "ApproxBlockDropout",
    "ApproxRandomDropoutLinear",
    "ApproxDropConnectLinear",
    "empirical_unit_drop_rate",
    "expected_global_drop_rate",
    "equivalence_report",
    "sub_model_count",
]
