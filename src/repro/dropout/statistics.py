"""Statistical-equivalence analysis (Section III-D, Eq. 2–3 of the paper).

The paper claims that sampling a pattern period ``dp ~ K`` and a uniform bias
each iteration makes the long-run probability of any *individual* neuron being
dropped equal to the global dropout rate of the distribution,

``p_n = Σ_i k_i (i-1)/i = p_g ≈ p``,

because for a fixed period ``i`` each neuron is dropped in exactly ``i-1`` of
the ``i`` equally-likely bias phases.  The helpers here verify that claim both
analytically and empirically (by Monte-Carlo simulation of the sampler), and
quantify sub-model diversity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dropout.patterns import RowDropoutPattern, row_pattern_masks
from repro.dropout.sampler import PatternSampler
from repro.dropout.search import SearchResult, pattern_drop_rates


def expected_global_drop_rate(distribution: np.ndarray) -> float:
    """Analytic global dropout rate ``Σ k_i (i-1)/i`` of a period distribution."""
    distribution = np.asarray(distribution, dtype=np.float64)
    rates = pattern_drop_rates(len(distribution))
    return float(distribution @ rates)


def analytic_unit_drop_rate(distribution: np.ndarray) -> float:
    """Per-neuron drop probability under uniform bias sampling (Eq. 2).

    For period ``i`` a given neuron is dropped under ``i-1`` of the ``i``
    equally-likely biases, so its marginal drop probability is
    ``Σ_i k_i (i-1)/i`` — identical to :func:`expected_global_drop_rate`,
    which is exactly the equivalence the paper proves.
    """
    return expected_global_drop_rate(distribution)


def empirical_unit_drop_rate(sampler: PatternSampler, num_units: int,
                             iterations: int = 2000) -> np.ndarray:
    """Monte-Carlo estimate of each neuron's drop frequency over many iterations.

    Returns an array of length ``num_units`` with the fraction of iterations in
    which each neuron was dropped.
    """
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    # One batched draw + one vectorized mask build instead of an
    # `iterations`-long Python loop (same clipping as sample_row_pattern).
    periods, biases = sampler.sample_many(iterations)
    periods = np.minimum(periods, num_units)
    biases = biases % periods
    masks = row_pattern_masks(num_units, periods, biases)
    return 1.0 - masks.mean(axis=0)


def sub_model_count(num_units: int, max_period: int | None = None) -> int:
    """Number of distinct RDP sub-models: ``Σ_{i=1..N} i = N(N+1)/2``.

    Each period ``i`` contributes ``i`` distinct bias phases.  The paper
    quotes this as the count of possible sub-models for RDP.
    """
    max_period = max_period or num_units
    max_period = min(max_period, num_units)
    return max_period * (max_period + 1) // 2


@dataclass
class EquivalenceReport:
    """Summary comparing the pattern stream to the target Bernoulli dropout."""

    target_rate: float
    analytic_global_rate: float
    analytic_unit_rate: float
    empirical_unit_rate_mean: float
    empirical_unit_rate_std: float
    max_unit_deviation: float
    entropy: float
    effective_sub_models: float

    def is_equivalent(self, tolerance: float = 0.05) -> bool:
        """True when both analytic and empirical unit rates are within tolerance."""
        return (abs(self.analytic_unit_rate - self.target_rate) <= tolerance
                and abs(self.empirical_unit_rate_mean - self.target_rate) <= tolerance)


def equivalence_report(sampler: PatternSampler, num_units: int,
                       iterations: int = 2000) -> EquivalenceReport:
    """Build a full :class:`EquivalenceReport` for a sampler and a layer width."""
    result: SearchResult = sampler.result
    distribution = result.distribution
    empirical = empirical_unit_drop_rate(sampler, num_units, iterations=iterations)
    return EquivalenceReport(
        target_rate=sampler.target_rate,
        analytic_global_rate=expected_global_drop_rate(distribution),
        analytic_unit_rate=analytic_unit_drop_rate(distribution),
        empirical_unit_rate_mean=float(empirical.mean()),
        empirical_unit_rate_std=float(empirical.std()),
        max_unit_deviation=float(np.max(np.abs(empirical - sampler.target_rate))),
        entropy=result.entropy,
        effective_sub_models=result.effective_sub_models(),
    )
