"""SGD-based Search Algorithm for the dropout-pattern distribution (Algorithm 1).

Given a target global dropout rate ``p`` and the maximum pattern period ``N``,
the algorithm finds a categorical distribution ``K = {k_i}`` over pattern
periods ``dp = i ∈ {1..N}`` minimising

``loss = λ1 * || d·pu − p ||²  +  λ2 * (1/N) Σ_i d_i log d_i``

where ``d = softmax(v)`` and ``pu_i = (i−1)/i`` is the global dropout rate of
a period-``i`` pattern (period 1 keeps everything, period 2 drops half, period
``i`` drops ``(i−1)/i``).  The first term pins the *expected* global dropout
rate to the target; the second term is the (negative) entropy, so minimising
it spreads probability mass over many periods and maximises sub-model
diversity.

The optimisation is plain gradient descent on the logits ``v`` with
analytically derived gradients (no autodiff needed), exactly mirroring the
paper's description: iterate until the loss change falls below a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def pattern_drop_rates(max_period: int) -> np.ndarray:
    """The constant vector ``pu``: global dropout rate of each period ``1..N``.

    ``pu = [0, 1/2, 2/3, ..., (N-1)/N]`` — line 2 of Algorithm 1.
    """
    if max_period < 1:
        raise ValueError("max_period must be >= 1")
    periods = np.arange(1, max_period + 1, dtype=np.float64)
    return (periods - 1.0) / periods


def softmax(v: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over a 1-D logit vector."""
    shifted = v - np.max(v)
    exp = np.exp(shifted)
    return exp / exp.sum()


@dataclass
class SearchResult:
    """Outcome of the SGD-based search.

    Attributes
    ----------
    distribution:
        The probability ``k_i`` of each pattern period ``i = 1..N`` (sums to 1).
    target_rate:
        The requested global dropout rate ``p``.
    achieved_rate:
        The expected global dropout rate ``Σ k_i (i-1)/i`` under the result.
    entropy:
        Shannon entropy of the distribution in nats.
    iterations:
        Number of gradient steps performed.
    loss_history:
        Loss value after every step (useful for convergence tests/plots).
    converged:
        Whether the |Δloss| threshold was reached before the iteration cap.
    """

    distribution: np.ndarray
    target_rate: float
    achieved_rate: float
    entropy: float
    iterations: int
    loss_history: list[float] = field(default_factory=list)
    converged: bool = True

    @property
    def max_period(self) -> int:
        return len(self.distribution)

    def rate_error(self) -> float:
        """Absolute difference between achieved and target global dropout rate."""
        return abs(self.achieved_rate - self.target_rate)

    def effective_sub_models(self) -> float:
        """Perplexity of the distribution, ``exp(entropy)`` — a diversity measure."""
        return float(np.exp(self.entropy))


class PatternDistributionSearch:
    """Implementation of Algorithm 1.

    Parameters
    ----------
    max_period:
        ``N`` — the largest pattern period considered (``dp_max``).  For RDP
        this is bounded by the layer width; for TDP by the number of tiles.
    lambda_rate:
        ``λ1`` — weight on the squared rate error.
    lambda_entropy:
        ``λ2`` — weight on the negative entropy; the paper requires
        ``λ1 + λ2 = 1``.
    learning_rate, max_iterations, threshold:
        SGD hyper-parameters; iteration stops when ``|Δloss| < threshold`` or
        the cap is hit.  The step size decays as ``lr / (1 + t / decay)`` so
        the iterates settle and the |Δloss| stopping rule is reachable.
    decay:
        Time constant (in iterations) of the learning-rate decay.
    """

    def __init__(self, max_period: int, lambda_rate: float = 0.95,
                 lambda_entropy: float = 0.05, learning_rate: float = 0.5,
                 max_iterations: int = 20000, threshold: float = 1e-9,
                 decay: float = 200.0, seed: int | None = 0):
        if max_period < 1:
            raise ValueError("max_period must be >= 1")
        if lambda_rate < 0 or lambda_entropy < 0:
            raise ValueError("lambda weights must be non-negative")
        if not np.isclose(lambda_rate + lambda_entropy, 1.0):
            raise ValueError(
                f"lambda_rate + lambda_entropy must equal 1 (paper constraint), "
                f"got {lambda_rate} + {lambda_entropy}")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self.max_period = int(max_period)
        self.lambda_rate = float(lambda_rate)
        self.lambda_entropy = float(lambda_entropy)
        self.learning_rate = float(learning_rate)
        self.max_iterations = int(max_iterations)
        self.threshold = float(threshold)
        if decay <= 0:
            raise ValueError("decay must be positive")
        self.decay = float(decay)
        self.seed = seed
        self.pattern_rates = pattern_drop_rates(self.max_period)

    # ------------------------------------------------------------------
    # loss and gradient
    # ------------------------------------------------------------------
    def loss(self, distribution: np.ndarray, target_rate: float) -> float:
        """Evaluate the Algorithm 1 loss for a given distribution ``d``."""
        d = np.asarray(distribution, dtype=np.float64)
        rate_error = float(d @ self.pattern_rates - target_rate)
        energy = self.lambda_rate * rate_error ** 2
        entropy_term = self.lambda_entropy * float(
            np.mean(d * np.log(np.clip(d, 1e-12, None))))
        return energy + entropy_term

    def _loss_and_grad(self, logits: np.ndarray, target_rate: float,
                       ) -> tuple[float, np.ndarray, np.ndarray]:
        d = softmax(logits)
        safe_d = np.clip(d, 1e-12, None)
        rate_error = float(d @ self.pattern_rates - target_rate)
        loss = (self.lambda_rate * rate_error ** 2
                + self.lambda_entropy * float(np.mean(d * np.log(safe_d))))
        # dLoss/dd
        grad_d = (self.lambda_rate * 2.0 * rate_error * self.pattern_rates
                  + self.lambda_entropy * (np.log(safe_d) + 1.0) / self.max_period)
        # Backprop through softmax: dv_i = d_i * (g_i - Σ_j g_j d_j).
        grad_v = d * (grad_d - float(grad_d @ d))
        return loss, grad_v, d

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def search(self, target_rate: float) -> SearchResult:
        """Run the search for a target global dropout rate ``p``.

        Returns a :class:`SearchResult` whose ``distribution`` satisfies
        ``Σ k_i (i-1)/i ≈ p`` while remaining as spread-out as the entropy
        weight allows.
        """
        if not 0.0 <= target_rate < 1.0:
            raise ValueError(f"target dropout rate must be in [0, 1), got {target_rate}")
        max_reachable = float(self.pattern_rates[-1])
        if target_rate > max_reachable:
            raise ValueError(
                f"target rate {target_rate} exceeds the maximum reachable global rate "
                f"{max_reachable:.3f} with max_period={self.max_period}; "
                f"increase max_period")

        rng = np.random.default_rng(self.seed)
        logits = rng.normal(0.0, 0.1, size=self.max_period)
        loss_history: list[float] = []
        previous_loss = np.inf
        converged = False
        distribution = softmax(logits)
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            loss, grad_v, distribution = self._loss_and_grad(logits, target_rate)
            loss_history.append(loss)
            if abs(previous_loss - loss) < self.threshold:
                converged = True
                break
            previous_loss = loss
            step = self.learning_rate / (1.0 + iterations / self.decay)
            logits = logits - step * grad_v

        distribution = softmax(logits)
        achieved = float(distribution @ self.pattern_rates)
        entropy = float(-np.sum(distribution * np.log(np.clip(distribution, 1e-12, None))))
        return SearchResult(
            distribution=distribution,
            target_rate=float(target_rate),
            achieved_rate=achieved,
            entropy=entropy,
            iterations=iterations,
            loss_history=loss_history,
            converged=converged,
        )

    def search_many(self, target_rates: list[float]) -> dict[float, SearchResult]:
        """Convenience helper: run the search for several target rates."""
        return {rate: self.search(rate) for rate in target_rates}
