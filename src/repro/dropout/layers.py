"""Drop-in layers implementing approximate random dropout.

Three modules are provided:

* :class:`ApproxRandomDropout` — activation-level RDP dropout.  It replaces a
  conventional :class:`repro.nn.Dropout` module: instead of an i.i.d.
  Bernoulli mask, the layer applies the regular row pattern sampled for the
  current iteration.  It is the integration point used inside the LSTM, where
  the dropped hidden units make the *next* GEMM's rows/columns skippable.
* :class:`ApproxRandomDropoutLinear` — a fully-connected layer whose output
  neurons are dropped by an RDP pattern and whose forward/backward passes only
  compute the surviving rows (and, when the previous layer's pattern is known,
  only the surviving input columns).  This is the "reduce the scale of the
  matrices" kernel of Section III-A.
* :class:`ApproxDropConnectLinear` — a fully-connected layer whose weight
  matrix is dropped tile-by-tile (TDP, Section III-B), computing only the
  surviving 32x32 tiles.
* :class:`ApproxRecurrentDropConnect` — the weight-less *recurrent* pattern
  site: gate-aligned TDP over an LSTM cell's hidden-to-hidden projection,
  gated behind ``ExecutionConfig.recurrent`` (inert/dense until a runtime
  with ``recurrent="tiled"`` enables it).

All three share the same lifecycle: :meth:`resample` is called once per
training iteration (usually through :class:`repro.dropout.sampler.PatternSchedule`
or by the trainer), which draws a fresh ``(dp, bias)`` from the searched
distribution.  In eval mode they behave exactly like a plain linear layer /
identity, matching inverted-dropout semantics.

Execution modes: every layer carries an ``execution_mode`` attribute
(``"compact"``, the default, or ``"masked"``) and a ``use_workspace`` flag,
both normally set by :meth:`repro.execution.EngineRuntime.bind`.  Under
``"masked"`` the layer executes the conventional Fig. 1(a) way — dense GEMM
(or identity) followed by a 0/1 mask that is rebuilt every step — which is
the baseline the compact modes are benchmarked against.  ``use_workspace``
toggles the :class:`~repro.dropout.engine.CompactWorkspace` scatter-buffer
reuse of the pooled engine.  The GEMM layers additionally carry a
``backend`` slot (an :class:`~repro.backends.ExecutionBackend`, installed by
the runtime from ``ExecutionConfig.backend``) through which their compact
ops execute; ``None`` falls back to the reference numpy backend.
"""

from __future__ import annotations

import numpy as np

from repro.backends import default_backend
from repro.dropout.compact_ops import (
    assemble_recurrent_context,
    gather_recurrent_blocks,
    recurrent_compact_context,
    recurrent_compact_linear,
    recurrent_context_linear,
    row_compact_linear,
    tile_compact_linear,
)
from repro.dropout.engine import (
    CompactWorkspace,
    compile_recurrent_plan,
    plan_column_classes,
)
from repro.dropout.patterns import (
    RecurrentTilePattern,
    RowDropoutPattern,
    TileDropoutPattern,
    recurrent_tile_mask,
    row_pattern_mask,
    tile_pattern_mask,
)
from repro.dropout.sampler import PatternSampler
from repro.nn import initializers
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, functional as F

#: Hard cap on the default pattern period ``dp``.  The paper allows ``dp_max``
#: up to the layer width / tile count, but with the entropy-maximising
#: distribution a very large cap assigns non-trivial probability to patterns
#: that keep almost nothing of the layer in a single iteration, which hurts
#: accuracy at the modest layer widths this reproduction trains.  The default
#: period is therefore chosen adaptively per layer by
#: :func:`default_max_period` and clipped to this cap; callers can always pass
#: ``max_period`` explicitly to explore larger values (see the ablation
#: benchmarks).
DEFAULT_MAX_PERIOD = 16


def default_max_period(drop_rate: float, available: int,
                       cap: int = DEFAULT_MAX_PERIOD) -> int:
    """Adaptive default for ``dp_max`` given a target rate and the layer size.

    The period must be able to express the target rate (``(dp-1)/dp > rate``),
    so the default is a couple of steps above ``1 / (1 - rate)``; it is clipped
    to the number of available units/tiles and to ``cap``.
    """
    if not 0.0 <= drop_rate < 1.0:
        raise ValueError(f"drop_rate must be in [0, 1), got {drop_rate}")
    if available < 1:
        raise ValueError("available must be >= 1")
    if drop_rate == 0.0:
        return 1
    needed = int(np.ceil(1.0 / (1.0 - drop_rate)))
    return max(1, min(max(needed, 3), available, cap))


def _shrink_tile_to_rate(rows: int, cols: int, drop_rate: float,
                         tile: int) -> int:
    """Largest tile edge ``<= tile`` whose grid can express ``drop_rate``.

    A weight matrix too small for the requested rate at the nominal 32x32
    granularity (e.g. a 16-wide layer asked to drop half of its tiles) has
    its tile halved until the grid holds at least ``ceil(1/(1-rate))``
    tiles.  Shared by every tile-pattern site so the shrink rule cannot
    drift between layers.
    """
    needed = 1 if drop_rate == 0.0 else int(np.ceil(1.0 / (1.0 - drop_rate)))
    while tile > 1 and TileDropoutPattern(rows=rows, cols=cols, dp=1, bias=0,
                                          tile=tile).num_tiles < needed:
        tile //= 2
    return tile


class ApproxRandomDropout(Module):
    """Activation-level approximate random dropout (RDP over feature units).

    Parameters
    ----------
    num_units:
        Width of the activation this layer masks.
    drop_rate:
        Target global dropout rate ``p``.
    max_period:
        ``dp_max`` for the distribution search; defaults to
        ``min(num_units, 64)``.
    scale:
        Use inverted-dropout scaling of the surviving activations.
    rng:
        Random generator for pattern sampling.
    """

    def __init__(self, num_units: int, drop_rate: float,
                 max_period: int | None = None, scale: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if num_units <= 0:
            raise ValueError("num_units must be positive")
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError(f"drop_rate must be in [0, 1), got {drop_rate}")
        self.num_units = num_units
        self.drop_rate = float(drop_rate)
        self.scale = scale
        self.rng = rng or np.random.default_rng()
        self.max_period = max_period or default_max_period(self.drop_rate, num_units)
        self.sampler = PatternSampler(self.drop_rate, self.max_period, rng=self.rng)
        self.pattern: RowDropoutPattern | None = None
        self.execution_mode = "compact"
        if self.drop_rate > 0.0:
            self.resample()

    def resample(self) -> RowDropoutPattern:
        """Draw a fresh pattern for the next iteration."""
        self.pattern = self.sampler.sample_row_pattern(self.num_units)
        return self.pattern

    def draw_pool(self, count: int) -> list[RowDropoutPattern]:
        """Vectorized pool draw for :class:`~repro.dropout.sampler.PatternSchedule`."""
        return self.sampler.sample_row_patterns(self.num_units, count)

    def set_pattern(self, pattern: RowDropoutPattern) -> None:
        """Explicitly install a pattern (used by tests and by schedules)."""
        if pattern.num_units != self.num_units:
            raise ValueError(
                f"pattern covers {pattern.num_units} units, layer has {self.num_units}")
        self.pattern = pattern

    def forward(self, x: Tensor) -> Tensor:
        if self.drop_rate == 0.0:
            return x
        if not self.training:
            # Non-inverted dropout semantics: the expected train-time output of
            # a unit is (1 - p) times its full value, so evaluation rescales.
            return x * (1.0 - self.drop_rate) if self.scale else x
        if self.pattern is None:
            self.resample()
        if self.execution_mode == "masked":
            # Conventional-execution baseline: the mask is rebuilt every step.
            mask = row_pattern_mask(self.num_units, self.pattern.dp,
                                    self.pattern.bias, dtype=x.data.dtype)
        else:
            mask = self.pattern.mask(dtype=x.data.dtype)
        return F.apply_mask(x, mask)

    def __repr__(self) -> str:
        return (f"ApproxRandomDropout(num_units={self.num_units}, "
                f"drop_rate={self.drop_rate}, max_period={self.max_period})")


class ApproxBlockDropout(Module):
    """Activation-level tile-style dropout: contiguous blocks of units dropped.

    This is the activation-space analogue of the Tile-based Dropout Pattern:
    the feature vector is divided into blocks of ``block`` consecutive units
    (32 by default, matching the paper's tile edge / shared-memory bank
    count), and ``dp - 1`` out of every ``dp`` blocks are dropped according to
    a row pattern over the block indices.  It is used for the non-recurrent
    connections of the LSTM under the TILE configuration, where tile-dropping
    the consumer GEMM's columns is equivalent to block-dropping its input
    activations.
    """

    def __init__(self, num_units: int, drop_rate: float, block: int = 32,
                 max_period: int | None = None, scale: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if num_units <= 0:
            raise ValueError("num_units must be positive")
        if block <= 0:
            raise ValueError("block must be positive")
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError(f"drop_rate must be in [0, 1), got {drop_rate}")
        self.num_units = num_units
        self.drop_rate = float(drop_rate)
        self.scale = scale
        self.rng = rng or np.random.default_rng()
        # Shrink the block size when the feature vector is too narrow for the
        # requested rate to be expressible at the nominal block granularity
        # (e.g. a 16-unit activation cannot drop half of its 32-wide blocks).
        needed = 1 if self.drop_rate == 0.0 else int(np.ceil(1.0 / (1.0 - self.drop_rate)))
        self.block = block
        while self.block > 1 and int(np.ceil(num_units / self.block)) < needed:
            self.block //= 2
        self.num_blocks = max(1, int(np.ceil(num_units / self.block)))
        self.max_period = max_period or default_max_period(self.drop_rate, self.num_blocks)
        self.sampler = PatternSampler(self.drop_rate, self.max_period, rng=self.rng)
        self.pattern: RowDropoutPattern | None = None
        self.execution_mode = "compact"
        if self.drop_rate > 0.0:
            self.resample()

    def resample(self) -> RowDropoutPattern:
        """Draw a fresh block pattern (a row pattern over block indices)."""
        self.pattern = self.sampler.sample_row_pattern(self.num_blocks)
        return self.pattern

    def draw_pool(self, count: int) -> list[RowDropoutPattern]:
        """Vectorized pool draw (row patterns over the block indices)."""
        return self.sampler.sample_row_patterns(self.num_blocks, count)

    def set_pattern(self, pattern: RowDropoutPattern) -> None:
        """Explicitly install a block pattern (used by schedules and tests)."""
        if pattern.num_units != self.num_blocks:
            raise ValueError(
                f"pattern covers {pattern.num_units} blocks, layer has {self.num_blocks}")
        self.pattern = pattern

    def unit_mask(self, dtype=np.float64) -> np.ndarray:
        """Expand the block pattern to a 0/1 keep-mask over individual units."""
        if self.pattern is None:
            return np.ones(self.num_units, dtype=dtype)
        if self.execution_mode == "masked":
            block_mask = row_pattern_mask(self.num_blocks, self.pattern.dp,
                                          self.pattern.bias, dtype=dtype)
        else:
            block_mask = self.pattern.mask(dtype=dtype)
        return np.repeat(block_mask, self.block)[:self.num_units]

    def forward(self, x: Tensor) -> Tensor:
        if self.drop_rate == 0.0:
            return x
        if not self.training:
            return x * (1.0 - self.drop_rate) if self.scale else x
        if self.pattern is None:
            self.resample()
        mask = self.unit_mask(dtype=x.data.dtype)
        return F.apply_mask(x, mask)

    def __repr__(self) -> str:
        return (f"ApproxBlockDropout(num_units={self.num_units}, "
                f"drop_rate={self.drop_rate}, block={self.block})")


class ApproxRandomDropoutLinear(Module):
    """Linear layer with Row-based Dropout Pattern on its output neurons.

    During training the forward pass gathers only the surviving weight rows
    into a compact matrix, runs the small GEMM and scatters the result into a
    zero-filled full-width output — the software analogue of the modified
    Caffe kernel in Fig. 3(a).  When ``chain_input_pattern`` is enabled and an
    input pattern is supplied (the previous layer's RDP pattern), the weight
    columns of dropped inputs are skipped too.

    In eval mode the layer is an ordinary dense linear layer.
    """

    def __init__(self, in_features: int, out_features: int, drop_rate: float,
                 bias: bool = True, max_period: int | None = None,
                 scale: bool = True, init: str = "xavier_uniform",
                 rng: np.random.Generator | None = None):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError(f"drop_rate must be in [0, 1), got {drop_rate}")
        self.in_features = in_features
        self.out_features = out_features
        self.drop_rate = float(drop_rate)
        self.scale = scale
        self.rng = rng or np.random.default_rng()
        init_fn = initializers.get(init)
        self.weight = Parameter(init_fn((out_features, in_features), self.rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self.max_period = max_period or default_max_period(self.drop_rate, out_features)
        self.sampler = PatternSampler(self.drop_rate, self.max_period, rng=self.rng)
        self.pattern: RowDropoutPattern | None = None
        self.workspace = CompactWorkspace()
        self.execution_mode = "compact"
        self.use_workspace = True
        #: Execution backend of the compact ops (set by EngineRuntime.bind;
        #: None = the reference numpy backend).
        self.backend = None
        self._forwards_since_pattern = 0
        if self.drop_rate > 0.0:
            self.resample()

    def resample(self) -> RowDropoutPattern:
        """Draw a fresh output pattern for the next iteration."""
        self.pattern = self.sampler.sample_row_pattern(self.out_features)
        self._forwards_since_pattern = 0
        return self.pattern

    def draw_pool(self, count: int) -> list[RowDropoutPattern]:
        """Vectorized pool draw for :class:`~repro.dropout.sampler.PatternSchedule`."""
        return self.sampler.sample_row_patterns(self.out_features, count)

    def set_pattern(self, pattern: RowDropoutPattern) -> None:
        if pattern.num_units != self.out_features:
            raise ValueError(
                f"pattern covers {pattern.num_units} units, layer has {self.out_features} outputs")
        self.pattern = pattern
        self._forwards_since_pattern = 0

    def _step_workspace(self) -> CompactWorkspace | None:
        """The workspace, unless it is disabled for this execution mode or this
        pattern installment has already used up the buffer ring (a layer run
        more than ``slots`` times in one graph — e.g. weight sharing — must
        fall back to fresh allocations; see the buffer-reuse contract in
        :mod:`repro.dropout.engine`)."""
        if not self.use_workspace:
            return None
        self._forwards_since_pattern += 1
        if self._forwards_since_pattern > self.workspace.slots:
            return None
        return self.workspace

    def forward(self, x: Tensor,
                input_pattern: RowDropoutPattern | None = None) -> Tensor:
        if self.drop_rate == 0.0:
            return F.linear(x, self.weight, self.bias)
        if not self.training:
            # Non-inverted dropout: train-time outputs are unscaled, so the
            # evaluation-time output is rescaled by the expected keep fraction.
            out = F.linear(x, self.weight, self.bias)
            return out * (1.0 - self.drop_rate) if self.scale else out
        if self.pattern is None:
            self.resample()
        if self.execution_mode == "masked":
            # Fig. 1(a) baseline: dense GEMM, then the per-step mask pass.
            out = F.linear(x, self.weight, self.bias)
            mask = row_pattern_mask(self.out_features, self.pattern.dp,
                                    self.pattern.bias, dtype=x.data.dtype)
            return F.apply_mask(out, mask[None, :])
        return row_compact_linear(x, self.weight, self.bias, self.pattern,
                                  input_pattern=input_pattern, scale_factor=1.0,
                                  workspace=self._step_workspace(),
                                  backend=self.backend)

    def __repr__(self) -> str:
        return (f"ApproxRandomDropoutLinear(in_features={self.in_features}, "
                f"out_features={self.out_features}, drop_rate={self.drop_rate})")


class ApproxDropConnectLinear(Module):
    """Linear layer with Tile-based Dropout Pattern over its weight matrix.

    ``dp - 1`` out of every ``dp`` ``tile x tile`` blocks of the weight matrix
    are dropped each iteration; only the surviving tiles participate in the
    forward and backward GEMMs (Fig. 3(b)).  In eval mode the layer is an
    ordinary dense linear layer.
    """

    def __init__(self, in_features: int, out_features: int, drop_rate: float,
                 bias: bool = True, tile: int = 32, max_period: int | None = None,
                 scale: bool = True, init: str = "xavier_uniform",
                 rng: np.random.Generator | None = None):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError(f"drop_rate must be in [0, 1), got {drop_rate}")
        if tile <= 0:
            raise ValueError("tile must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.drop_rate = float(drop_rate)
        self.scale = scale
        self.rng = rng or np.random.default_rng()
        init_fn = initializers.get(init)
        self.weight = Parameter(init_fn((out_features, in_features), self.rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        # Shrink the tile when the weight matrix is too small for the requested
        # rate to be expressible with whole 32x32 tiles (small layers simply do
        # not have enough tiles); the paper's choice of 32 targets large layers.
        self.tile = _shrink_tile_to_rate(out_features, in_features,
                                         self.drop_rate, tile)
        reference = TileDropoutPattern(rows=out_features, cols=in_features,
                                       dp=1, bias=0, tile=self.tile)
        self.max_period = max_period or default_max_period(self.drop_rate,
                                                           reference.num_tiles)
        self.sampler = PatternSampler(self.drop_rate, self.max_period, rng=self.rng)
        self.pattern: TileDropoutPattern | None = None
        self.workspace = CompactWorkspace()
        self.execution_mode = "compact"
        self.use_workspace = True
        #: Execution backend of the compact ops (set by EngineRuntime.bind;
        #: None = the reference numpy backend).
        self.backend = None
        self._forwards_since_pattern = 0
        if self.drop_rate > 0.0:
            self.resample()

    def resample(self) -> TileDropoutPattern:
        """Draw a fresh tile pattern for the next iteration."""
        self.pattern = self.sampler.sample_tile_pattern(
            self.out_features, self.in_features, tile=self.tile)
        self._forwards_since_pattern = 0
        return self.pattern

    def draw_pool(self, count: int) -> list[TileDropoutPattern]:
        """Vectorized pool draw for :class:`~repro.dropout.sampler.PatternSchedule`."""
        return self.sampler.sample_tile_patterns(
            self.out_features, self.in_features, count, tile=self.tile)

    def set_pattern(self, pattern: TileDropoutPattern) -> None:
        if (pattern.rows, pattern.cols) != (self.out_features, self.in_features):
            raise ValueError(
                f"pattern shape ({pattern.rows}, {pattern.cols}) does not match layer "
                f"({self.out_features}, {self.in_features})")
        self.pattern = pattern
        self._forwards_since_pattern = 0

    def _step_workspace(self) -> CompactWorkspace | None:
        """See :meth:`ApproxRandomDropoutLinear._step_workspace`."""
        if not self.use_workspace:
            return None
        self._forwards_since_pattern += 1
        if self._forwards_since_pattern > self.workspace.slots:
            return None
        return self.workspace

    def forward(self, x: Tensor) -> Tensor:
        if self.drop_rate == 0.0:
            return F.linear(x, self.weight, self.bias)
        if not self.training:
            # Non-inverted DropConnect: rescale the weight contribution by the
            # expected keep fraction at evaluation time (the bias is never
            # dropped, so it is not rescaled).
            if not self.scale:
                return F.linear(x, self.weight, self.bias)
            out = F.linear(x, self.weight * (1.0 - self.drop_rate), None)
            return out + self.bias if self.bias is not None else out
        if self.pattern is None:
            self.resample()
        if self.execution_mode == "masked":
            # Fig. 1(a) baseline: mask the dense weight matrix every step.
            mask = tile_pattern_mask(self.out_features, self.in_features,
                                     self.pattern.dp, self.pattern.bias,
                                     self.tile, dtype=x.data.dtype)
            return F.linear(x, F.apply_mask(self.weight, mask), self.bias)
        return tile_compact_linear(x, self.weight, self.bias, self.pattern,
                                   scale_factor=1.0,
                                   workspace=self._step_workspace(),
                                   backend=self.backend)

    def __repr__(self) -> str:
        return (f"ApproxDropConnectLinear(in_features={self.in_features}, "
                f"out_features={self.out_features}, drop_rate={self.drop_rate}, "
                f"tile={self.tile})")


class ApproxRecurrentDropConnect(Module):
    """Gate-aligned structured DropConnect site for a recurrent projection.

    Unlike the other pattern layers this module owns no weights: it wraps the
    ``h @ weight_h.T`` step of an :class:`~repro.nn.recurrent.LSTMCell`, whose
    ``weight_h`` parameter stays on the cell.  Each training iteration one
    :class:`~repro.dropout.patterns.RecurrentTilePattern` is sampled (or
    installed by a pooled :class:`~repro.dropout.sampler.PatternSchedule`) and
    :meth:`project` computes the recurrent GEMM touching only the surviving
    per-gate weight tiles — the recurrent half of the paper's DropConnect
    acceleration that the seed implementation left dense.

    The site is **gated**: it is constructed by the model's dropout strategy
    but stays inert (``enabled=False`` — :meth:`project` is a plain dense
    GEMM and :attr:`drop_rate` reads 0, so the pooled schedule skips it)
    until :meth:`repro.execution.EngineRuntime.bind` flips ``enabled`` for
    ``ExecutionConfig(recurrent="tiled")``.  ``execution_mode`` and
    ``backend`` behave as on the other pattern layers.

    No workspace ring: the projection runs once per *timestep* inside a BPTT
    unroll — many executions per autodiff graph — which the
    :class:`~repro.dropout.engine.CompactWorkspace` buffer-reuse contract
    explicitly excludes, so scatter buffers are allocated per call.
    """

    #: Marker :meth:`EngineRuntime.bind` probes to apply the ``recurrent``
    #: execution toggle (duck-typed like ``execution_mode``/``backend``).
    recurrent_site = True

    def __init__(self, hidden_size: int, drop_rate: float, num_gates: int = 4,
                 tile: int = 32, max_period: int | None = None,
                 scale: bool = True, rng: np.random.Generator | None = None,
                 enabled: bool = False):
        super().__init__()
        if hidden_size <= 0:
            raise ValueError("hidden_size must be positive")
        if num_gates < 1:
            raise ValueError("num_gates must be >= 1")
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError(f"drop_rate must be in [0, 1), got {drop_rate}")
        if tile <= 0:
            raise ValueError("tile must be positive")
        self.hidden_size = hidden_size
        self.num_gates = num_gates
        self.target_rate = float(drop_rate)
        self.scale = scale
        self.rng = rng or np.random.default_rng()
        self.enabled = bool(enabled)
        # Shrink the tile when the per-gate (hidden, hidden) block is too
        # small for the requested rate at the nominal 32x32 granularity.
        self.tile = _shrink_tile_to_rate(hidden_size, hidden_size,
                                         self.target_rate, tile)
        reference = TileDropoutPattern(rows=hidden_size, cols=hidden_size,
                                       dp=1, bias=0, tile=self.tile)
        self.max_period = max_period or default_max_period(self.target_rate,
                                                           reference.num_tiles)
        self.sampler = PatternSampler(self.target_rate, self.max_period,
                                      rng=self.rng)
        self.pattern: RecurrentTilePattern | None = None
        self.execution_mode = "compact"
        #: Execution backend of the compact op (set by EngineRuntime.bind;
        #: None = the reference numpy backend).
        self.backend = None
        # Cross-window weight-tile context cache, driven by the sparse
        # optimizer's dirty notifications (see install_context_cache).  Off
        # by default: without update notifications a cached gather would go
        # stale the moment the optimizer touches weight_h.
        self.context_cache_enabled = False
        self._context_cache: dict = {}
        self._tracked_weight_id: int | None = None
        self._row_version: np.ndarray | None = None
        self._version = 0
        self.context_classes_refreshed = 0
        self.context_classes_reused = 0

    # ------------------------------------------------------------------
    # sparse-optimizer context cache
    # ------------------------------------------------------------------
    def install_context_cache(self, tracker) -> None:
        """Enable cross-window caching of the gathered weight tiles.

        ``tracker`` is the runtime's :class:`~repro.tensor.dirty.DirtyTracker`;
        the site registers itself as an update observer, so every sparse
        parameter update reports which rows of the (interned) weight array it
        touched and :meth:`window_context` re-gathers only the column classes
        whose rows actually moved since they were last gathered.
        """
        self.context_cache_enabled = True
        self._context_cache.clear()
        self._tracked_weight_id = None
        self._row_version = None
        self._version = 0
        tracker.set_observer(self, self._on_param_update)

    def disable_context_cache(self) -> None:
        self.context_cache_enabled = False
        self._context_cache.clear()
        self._tracked_weight_id = None
        self._row_version = None

    def _on_param_update(self, array: np.ndarray, kind: str, indices) -> None:
        """Dirty-tracker observer: version-stamp the rows an update touched."""
        if self._tracked_weight_id is None or id(array) != self._tracked_weight_id:
            return
        self._version += 1
        if kind == "rows" and indices is not None:
            self._row_version[np.asarray(indices)] = self._version
        else:
            # "full" (or an unexpected kind): everything may have moved.
            self._row_version[:] = self._version

    def _cached_context(self, weight: Tensor):
        """A window context served from (and refreshed into) the tile cache."""
        backend = self.backend or default_backend()
        plan = compile_recurrent_plan(self.pattern)
        classes = plan_column_classes(plan)
        if (self._tracked_weight_id != id(weight.data)
                or self._row_version is None
                or self._row_version.shape[0] != weight.data.shape[0]):
            # New (or re-cast) weight array: start tracking it afresh.
            self._context_cache.clear()
            self._tracked_weight_id = id(weight.data)
            self._row_version = np.zeros(weight.data.shape[0], dtype=np.int64)
            self._version = 0
        entry = self._context_cache.get(plan.identity)
        if entry is None:
            if len(self._context_cache) >= 8:
                self._context_cache.clear()
            flat, blocks = gather_recurrent_blocks(weight.data, classes, backend)
            entry = {"flat": flat, "blocks": blocks,
                     "versions": [self._version] * len(classes)}
            self._context_cache[plan.identity] = entry
            self.context_classes_refreshed += len(classes)
        else:
            flat, blocks = entry["flat"], entry["blocks"]
            versions = entry["versions"]
            for index, ((rows, cols), block) in enumerate(zip(classes, blocks)):
                if rows.size and int(self._row_version[rows].max()) > versions[index]:
                    block[...] = backend.gather_block(weight.data, rows, cols)
                    versions[index] = self._version
                    self.context_classes_refreshed += 1
                else:
                    self.context_classes_reused += 1
        return assemble_recurrent_context(weight, self.pattern, plan, backend,
                                          classes, flat, entry["blocks"])

    @property
    def drop_rate(self) -> float:
        """The effective rate: 0 while the site is disabled, so the pooled
        schedule (:func:`~repro.dropout.sampler.is_pattern_site`) skips it."""
        return self.target_rate if self.enabled else 0.0

    # ------------------------------------------------------------------
    # pattern lifecycle (pool protocol, like every other pattern layer)
    # ------------------------------------------------------------------
    def resample(self) -> RecurrentTilePattern | None:
        """Draw a fresh gate-aligned pattern (no-op while disabled)."""
        if self.drop_rate == 0.0:
            self.pattern = None
            return None
        self.pattern = self.sampler.sample_recurrent_pattern(
            self.hidden_size, self.num_gates, tile=self.tile)
        return self.pattern

    def draw_pool(self, count: int) -> list[RecurrentTilePattern]:
        """Vectorized pool draw for :class:`~repro.dropout.sampler.PatternSchedule`."""
        return self.sampler.sample_recurrent_patterns(
            self.hidden_size, self.num_gates, count, tile=self.tile)

    def set_pattern(self, pattern: RecurrentTilePattern) -> None:
        if (pattern.hidden_size, pattern.num_gates, pattern.tile) != (
                self.hidden_size, self.num_gates, self.tile):
            raise ValueError(
                f"pattern covers hidden={pattern.hidden_size} gates="
                f"{pattern.num_gates} tile={pattern.tile}, site has "
                f"hidden={self.hidden_size} gates={self.num_gates} "
                f"tile={self.tile}")
        self.pattern = pattern

    # ------------------------------------------------------------------
    # the recurrent projection
    # ------------------------------------------------------------------
    def window_context(self, weight: Tensor):
        """Pre-gather the surviving weight tiles for a whole BPTT window.

        Returns ``None`` whenever the compact path is not active (disabled,
        eval mode, or ``masked`` execution) — callers pass the result to
        :meth:`project` for every timestep of the window, so the weight
        gather cost amortises over the unroll (the pattern is fixed for the
        window; the optimizer only updates the weight between windows).
        """
        if self.drop_rate == 0.0 or not self.training:
            return None
        if self.execution_mode == "masked":
            return None
        if self.pattern is None:
            self.resample()
        if self.context_cache_enabled:
            return self._cached_context(weight)
        return recurrent_compact_context(weight, self.pattern,
                                         backend=self.backend)

    def project(self, h: Tensor, weight: Tensor, context=None) -> Tensor:
        """Compute ``h @ weight.T`` under the current recurrent pattern.

        Dense when disabled; inverted-DropConnect-style rescaling (by the
        expected keep fraction) in eval mode; dense-GEMM-plus-rebuilt-mask
        under ``execution_mode == "masked"`` (the Fig. 1(a) baseline);
        the compact execution otherwise — against a hoisted
        :meth:`window_context` when one is supplied and still current, else
        through the plan op directly.
        """
        if self.drop_rate == 0.0:
            return F.linear(h, weight, None)
        if not self.training:
            # Non-inverted DropConnect: rescale the recurrent contribution by
            # the expected keep fraction at evaluation time.
            if not self.scale:
                return F.linear(h, weight, None)
            return F.linear(h, weight * (1.0 - self.drop_rate), None)
        if self.pattern is None:
            self.resample()
        if self.execution_mode == "masked":
            # Fig. 1(a) baseline: mask the dense recurrent weight every step
            # (the pattern's own tile, which set_pattern pins to the site's).
            mask = recurrent_tile_mask(self.hidden_size, self.num_gates,
                                       self.pattern.dp, self.pattern.bias,
                                       self.pattern.tile, dtype=h.data.dtype)
            return F.linear(h, F.apply_mask(weight, mask), None)
        if (context is not None and context.pattern is self.pattern
                and context.weight is weight):
            return recurrent_context_linear(h, context, backend=self.backend)
        return recurrent_compact_linear(h, weight, self.pattern,
                                        backend=self.backend)

    def forward(self, h: Tensor, weight: Tensor) -> Tensor:
        return self.project(h, weight)

    def __repr__(self) -> str:
        return (f"ApproxRecurrentDropConnect(hidden_size={self.hidden_size}, "
                f"num_gates={self.num_gates}, drop_rate={self.target_rate}, "
                f"tile={self.tile}, enabled={self.enabled})")
