"""Optimisers and learning-rate schedules.

The paper trains the MLP with SGD + momentum (lr 0.01, momentum 0.9, batch
128) and the LSTM with SGD starting at lr 1.0 with a decaying schedule, so
:class:`SGD` plus :class:`StepLR`/:class:`ExponentialLR` cover the evaluation.
:class:`Adam` is provided for the examples and for users of the library.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimiser holding a parameter list and a learning rate."""

    def __init__(self, parameters: Sequence[Parameter], lr: float):
        parameters = list(parameters)
        if not parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = parameters
        self.lr = float(lr)
        self.step_count = 0

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def _gradients(self):
        for param in self.parameters:
            grad = param.grad
            if grad is None:
                grad = np.zeros_like(param.data)
            yield param, grad


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Sequence[Parameter], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 grad_clip: float | None = None):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError("weight_decay must be non-negative")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.grad_clip = grad_clip
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self.step_count += 1
        clip_scale = self._clip_scale()
        for (param, grad), velocity in zip(self._gradients(), self._velocity):
            if clip_scale != 1.0:
                grad = grad * clip_scale
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            # In-place update: one scaled temp instead of a scaled temp plus
            # a whole fresh parameter array per step.
            param.data -= self.lr * update

    def _clip_scale(self) -> float:
        """Global-norm gradient clipping factor (1.0 when clipping disabled)."""
        if self.grad_clip is None:
            return 1.0
        total = 0.0
        for _, grad in self._gradients():
            flat = grad.reshape(-1)
            total += float(np.dot(flat, flat))
        norm = np.sqrt(total)
        if norm <= self.grad_clip or norm == 0.0:
            return 1.0
        return self.grad_clip / norm


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba) for convenience in examples."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self.step_count += 1
        t = self.step_count
        for index, (param, grad) in enumerate(self._gradients()):
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            self._m[index] = self.beta1 * self._m[index] + (1 - self.beta1) * grad
            self._v[index] = self.beta2 * self._v[index] + (1 - self.beta2) * grad * grad
            m_hat = self._m[index] / (1 - self.beta1 ** t)
            v_hat = self._v[index] / (1 - self.beta2 ** t)
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class LRSchedule:
    """Base class for learning-rate schedules driving an optimiser in place."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch and return the new learning rate."""
        self.epoch += 1
        new_lr = self.lr_at(self.epoch)
        self.optimizer.lr = new_lr
        return new_lr

    def lr_at(self, epoch: int) -> float:
        raise NotImplementedError


class ConstantLR(LRSchedule):
    """Learning rate that never changes."""

    def lr_at(self, epoch: int) -> float:
        return self.base_lr


class StepLR(LRSchedule):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def lr_at(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** (epoch // self.step_size))


class ExponentialLR(LRSchedule):
    """Multiply the learning rate by ``gamma`` every epoch after a warm period.

    Mirrors the classic PTB LSTM recipe the paper follows ("the base learning
    rate will gradually decrease"): constant for ``flat_epochs`` epochs, then
    exponential decay.
    """

    def __init__(self, optimizer: Optimizer, gamma: float = 0.8, flat_epochs: int = 4):
        super().__init__(optimizer)
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.gamma = gamma
        self.flat_epochs = flat_epochs

    def lr_at(self, epoch: int) -> float:
        if epoch <= self.flat_epochs:
            return self.base_lr
        return self.base_lr * (self.gamma ** (epoch - self.flat_epochs))
