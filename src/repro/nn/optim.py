"""Optimisers and learning-rate schedules.

The paper trains the MLP with SGD + momentum (lr 0.01, momentum 0.9, batch
128) and the LSTM with SGD starting at lr 1.0 with a decaying schedule, so
:class:`SGD` plus :class:`StepLR`/:class:`ExponentialLR` cover the evaluation.
:class:`Adam` is provided for the examples and for users of the library.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.module import Parameter

#: Fixed row-chunk size of the clip-norm accumulation (see ``_grad_sq_norm``).
NORM_CHUNK_ROWS = 256


def _grad_sq_norm(grad: np.ndarray) -> float:
    """Squared Frobenius norm, accumulated over fixed 256-row chunks.

    The chunking (rather than one flat dot) pins the floating-point summation
    grouping independently of *which* rows are non-zero: an all-zero chunk
    contributes exactly ``+0.0``, so the sparse optimizer can skip chunks
    outside its dirty-row set and still reproduce this function's result bit
    for bit.  1-D gradients and matrices of at most ``NORM_CHUNK_ROWS`` rows
    take the single flat dot, matching the pre-chunking behaviour exactly.
    """
    if grad.ndim < 2 or grad.shape[0] <= NORM_CHUNK_ROWS:
        flat = grad.reshape(-1)
        return float(np.dot(flat, flat))
    total = 0.0
    for start in range(0, grad.shape[0], NORM_CHUNK_ROWS):
        chunk = grad[start:start + NORM_CHUNK_ROWS].reshape(-1)
        total += float(np.dot(chunk, chunk))
    return total


class Optimizer:
    """Base optimiser holding a parameter list and a learning rate."""

    def __init__(self, parameters: Sequence[Parameter], lr: float):
        parameters = list(parameters)
        if not parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = parameters
        self.lr = float(lr)
        self.step_count = 0
        self.grad_clip: float | None = None

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def _gradients(self):
        for param in self.parameters:
            grad = param.grad
            if grad is None:
                grad = np.zeros_like(param.data)
            yield param, grad

    def _clip_scale(self) -> float:
        """Global-norm gradient clipping factor (1.0 when clipping disabled).

        Parameters with no gradient contribute exactly zero to the norm, so
        they are skipped outright instead of materialising a zero array per
        missing gradient per step (the old ``_gradients()`` round-trip).
        """
        if self.grad_clip is None:
            return 1.0
        total = 0.0
        for param in self.parameters:
            if param.grad is not None:
                total += _grad_sq_norm(param.grad)
        norm = float(np.sqrt(total))
        if norm <= self.grad_clip or norm == 0.0:
            return 1.0
        return self.grad_clip / norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Sequence[Parameter], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 grad_clip: float | None = None):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError("weight_decay must be non-negative")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.grad_clip = grad_clip
        # Momentum buffers are materialised on first use (many parameters
        # never see a gradient in compact runs; their velocity stays an
        # implicit exact zero).
        self._velocity: list[np.ndarray | None] = [None] * len(self.parameters)

    def step(self) -> None:
        self.step_count += 1
        clip_scale = self._clip_scale()
        for index, param in enumerate(self.parameters):
            self._apply_dense(index, param, clip_scale)

    def _velocity_buffer(self, index: int, param: Parameter) -> np.ndarray:
        """The momentum buffer of parameter ``index`` (materialised on demand)."""
        velocity = self._velocity[index]
        if velocity is None:
            velocity = self._velocity[index] = np.zeros_like(param.data)
        return velocity

    def _apply_dense(self, index: int, param: Parameter,
                     clip_scale: float) -> None:
        """The dense per-parameter update — the reference the sparse path
        must match bit for bit."""
        grad = param.grad
        if grad is None:
            # A missing gradient is an exact zero: no array is materialised.
            # Weight decay still applies, and a live momentum buffer still
            # decays (dense semantics of a zero gradient).
            if self.weight_decay:
                grad_term = self.weight_decay * param.data
            elif self.momentum:
                velocity = self._velocity[index]
                if velocity is not None:
                    velocity *= self.momentum
                    param.data -= self.lr * velocity
                return
            else:
                return
        else:
            grad_term = grad * clip_scale if clip_scale != 1.0 else grad
            if self.weight_decay:
                grad_term = grad_term + self.weight_decay * param.data
        if self.momentum:
            velocity = self._velocity_buffer(index, param)
            velocity *= self.momentum
            velocity += grad_term
            update = velocity
        else:
            update = grad_term
        # In-place update: one scaled temp instead of a scaled temp plus
        # a whole fresh parameter array per step.
        param.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba) for convenience in examples."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0, grad_clip: float | None = None):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self.grad_clip = grad_clip
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self.step_count += 1
        t = self.step_count
        clip_scale = self._clip_scale()
        for index, (param, grad) in enumerate(self._gradients()):
            if clip_scale != 1.0:
                grad = grad * clip_scale
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            self._m[index] = self.beta1 * self._m[index] + (1 - self.beta1) * grad
            self._v[index] = self.beta2 * self._v[index] + (1 - self.beta2) * grad * grad
            m_hat = self._m[index] / (1 - self.beta1 ** t)
            v_hat = self._v[index] / (1 - self.beta2 ** t)
            # In-place: keep the parameter array's identity (views, momentum
            # buffers and the runtime's dtype cast all rely on it) and avoid
            # allocating a fresh parameter-sized array per step.
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class LRSchedule:
    """Base class for learning-rate schedules driving an optimiser in place."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch and return the new learning rate.

        The optimiser constructor enforces ``lr > 0`` but only at
        construction time; a schedule whose ``lr_at`` underflows to zero (or
        a custom one returning a non-positive value) would silently break
        that invariant mid-run.  Validate here so it holds across every
        schedule boundary.
        """
        self.epoch += 1
        new_lr = float(self.lr_at(self.epoch))
        if not new_lr > 0.0 or not np.isfinite(new_lr):
            raise ValueError(
                f"{type(self).__name__}.lr_at({self.epoch}) returned {new_lr}; "
                "schedules must keep the learning rate positive and finite")
        self.optimizer.lr = new_lr
        return new_lr

    def lr_at(self, epoch: int) -> float:
        raise NotImplementedError


class ConstantLR(LRSchedule):
    """Learning rate that never changes."""

    def lr_at(self, epoch: int) -> float:
        return self.base_lr


class StepLR(LRSchedule):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def lr_at(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** (epoch // self.step_size))


class ExponentialLR(LRSchedule):
    """Multiply the learning rate by ``gamma`` every epoch after a warm period.

    Mirrors the classic PTB LSTM recipe the paper follows ("the base learning
    rate will gradually decrease"): constant for ``flat_epochs`` epochs, then
    exponential decay.
    """

    def __init__(self, optimizer: Optimizer, gamma: float = 0.8, flat_epochs: int = 4):
        super().__init__(optimizer)
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.gamma = gamma
        self.flat_epochs = flat_epochs

    def lr_at(self, epoch: int) -> float:
        if epoch <= self.flat_epochs:
            return self.base_lr
        return self.base_lr * (self.gamma ** (epoch - self.flat_epochs))
