"""Weight initialisation schemes.

All initialisers accept an explicit :class:`numpy.random.Generator` so that
experiments are reproducible down to the weight draw.
"""

from __future__ import annotations

import numpy as np


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for (fan_out, fan_in) matrices."""
    fan_out, fan_in = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    fan_out, fan_in = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Kaiming/He normal initialisation, suited to ReLU networks."""
    _, fan_in = _fans(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def uniform(shape: tuple[int, ...], rng: np.random.Generator,
            low: float = -0.1, high: float = 0.1) -> np.ndarray:
    """Plain uniform initialisation, the scheme typically used for LSTMs."""
    return rng.uniform(low, high, size=shape)


def zeros(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape)


def orthogonal(shape: tuple[int, ...], rng: np.random.Generator,
               gain: float = 1.0) -> np.ndarray:
    """Orthogonal initialisation, helpful for recurrent weight matrices."""
    if len(shape) != 2:
        raise ValueError("orthogonal initialisation requires a 2-D shape")
    rows, cols = shape
    a = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(a)
    q = q * np.sign(np.diag(r))
    q = q[:rows, :cols] if q.shape[0] >= rows else q.T[:rows, :cols]
    return gain * q


_INITIALIZERS = {
    "xavier_uniform": xavier_uniform,
    "xavier_normal": xavier_normal,
    "he_normal": he_normal,
    "uniform": uniform,
    "orthogonal": orthogonal,
}


def get(name: str):
    """Look up an initialiser by name."""
    try:
        return _INITIALIZERS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown initializer {name!r}; available: {sorted(_INITIALIZERS)}") from exc


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[0] * receptive, shape[1] * receptive
