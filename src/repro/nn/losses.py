"""Loss modules wrapping the functional losses."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor, functional as F


class CrossEntropyLoss(Module):
    """Softmax cross-entropy from logits and integer targets."""

    def __init__(self, reduction: str = "mean"):
        super().__init__()
        if reduction not in ("mean", "sum", "none"):
            raise ValueError(f"unknown reduction {reduction!r}")
        self.reduction = reduction

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return F.cross_entropy(logits, targets, reduction=self.reduction)

    def __repr__(self) -> str:
        return f"CrossEntropyLoss(reduction={self.reduction!r})"


class MSELoss(Module):
    """Mean-squared-error loss."""

    def __init__(self, reduction: str = "mean"):
        super().__init__()
        if reduction not in ("mean", "sum", "none"):
            raise ValueError(f"unknown reduction {reduction!r}")
        self.reduction = reduction

    def forward(self, prediction: Tensor, target) -> Tensor:
        return F.mse_loss(prediction, target, reduction=self.reduction)

    def __repr__(self) -> str:
        return f"MSELoss(reduction={self.reduction!r})"
