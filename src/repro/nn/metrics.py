"""Evaluation metrics used by the experiments.

The paper reports classification accuracy for the MLP/MNIST experiments,
next-word prediction accuracy for the dictionary LSTM (Table II) and test
perplexity for the PTB LSTM (Fig. 6).
"""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor


def _logits_array(logits) -> np.ndarray:
    return logits.data if isinstance(logits, Tensor) else np.asarray(logits)


def accuracy(logits, targets: np.ndarray) -> float:
    """Top-1 classification accuracy in [0, 1]."""
    scores = _logits_array(logits)
    targets = np.asarray(targets)
    if scores.ndim != 2:
        raise ValueError(f"logits must be 2-D (batch, classes), got shape {scores.shape}")
    predictions = scores.argmax(axis=1)
    return float(np.mean(predictions == targets))


def top_k_accuracy(logits, targets: np.ndarray, k: int = 5) -> float:
    """Top-k accuracy: fraction of samples whose target is in the k best scores."""
    scores = _logits_array(logits)
    targets = np.asarray(targets)
    if k <= 0:
        raise ValueError("k must be positive")
    k = min(k, scores.shape[1])
    top_k = np.argpartition(-scores, kth=k - 1, axis=1)[:, :k]
    hits = (top_k == targets[:, None]).any(axis=1)
    return float(np.mean(hits))


def perplexity_from_loss(mean_cross_entropy: float) -> float:
    """Perplexity = exp(mean token-level cross-entropy in nats)."""
    # Clamp to avoid overflow when an untrained model is evaluated.
    return float(np.exp(min(mean_cross_entropy, 30.0)))


def error_rate(logits, targets: np.ndarray) -> float:
    """1 - accuracy, in [0, 1]."""
    return 1.0 - accuracy(logits, targets)


def confusion_matrix(logits, targets: np.ndarray, num_classes: int) -> np.ndarray:
    """Dense ``(num_classes, num_classes)`` confusion matrix (rows = truth)."""
    scores = _logits_array(logits)
    targets = np.asarray(targets)
    predictions = scores.argmax(axis=1)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (targets, predictions), 1)
    return matrix
