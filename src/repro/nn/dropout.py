"""Conventional dropout baselines.

These are the two baselines the paper compares against:

* :class:`Dropout` — Srivastava-style neuron dropout [24]: an i.i.d. Bernoulli
  0/1 mask is applied elementwise to the layer's activations.  This is exactly
  the "output matrix element-wise multiplied by a mask matrix" implementation
  of Fig. 1(a): the dense GEMM still runs at full size and the mask kernel is
  an extra pass over the output.
* :class:`DropConnectLinear` — DropConnect [25]: an i.i.d. Bernoulli mask over
  the *weights* of a linear layer.

Both use inverted dropout (scaling by ``1/(1-p)`` at training time) so the
inference path requires no rescaling.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.tensor import Tensor, functional as F


class Dropout(Module):
    """Conventional random neuron dropout (the paper's baseline).

    Parameters
    ----------
    rate:
        Probability of dropping each activation, in ``[0, 1)``.
    rng:
        Random generator used to draw the Bernoulli mask each call.
    scale_at_train:
        If ``True`` (default) use inverted dropout: surviving activations are
        scaled by ``1/(1-rate)`` during training.
    """

    def __init__(self, rate: float, rng: np.random.Generator | None = None,
                 scale_at_train: bool = True):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self.rng = rng or np.random.default_rng()
        self.scale_at_train = scale_at_train
        self.last_mask: np.ndarray | None = None

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            self.last_mask = None
            return x
        mask = (self.rng.random(x.shape) >= self.rate).astype(x.data.dtype)
        self.last_mask = mask
        out = F.apply_mask(x, mask)
        if self.scale_at_train:
            out = out * (1.0 / (1.0 - self.rate))
        return out

    def __repr__(self) -> str:
        return f"Dropout(rate={self.rate})"


class DropConnectLinear(Module):
    """Linear layer with DropConnect: Bernoulli mask over individual weights.

    This is the irregular, synapse-level baseline that the tile-based dropout
    pattern (TDP) regularises: TDP drops 32x32 tiles of the weight matrix
    instead of single weights so that the surviving weights form a compact,
    GEMM-friendly matrix.
    """

    def __init__(self, in_features: int, out_features: int, rate: float,
                 bias: bool = True, rng: np.random.Generator | None = None,
                 scale_at_train: bool = True):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"drop-connect rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self.rng = rng or np.random.default_rng()
        self.scale_at_train = scale_at_train
        self.linear = Linear(in_features, out_features, bias=bias, rng=self.rng)
        self.last_mask: np.ndarray | None = None

    @property
    def weight(self):
        return self.linear.weight

    @property
    def bias(self):
        return self.linear.bias

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            self.last_mask = None
            return F.linear(x, self.linear.weight, self.linear.bias)
        mask = (self.rng.random(self.linear.weight.shape) >= self.rate)
        self.last_mask = mask.astype(np.float64)
        masked_weight = F.apply_mask(self.linear.weight, self.last_mask)
        if self.scale_at_train:
            masked_weight = masked_weight * (1.0 / (1.0 - self.rate))
        return F.linear(x, masked_weight, self.linear.bias)

    def __repr__(self) -> str:
        return (f"DropConnectLinear(in_features={self.linear.in_features}, "
                f"out_features={self.linear.out_features}, rate={self.rate})")
