"""LSTM layers for the language-model experiments (Sections IV-C of the paper).

The LSTM is implemented on top of the same :class:`~repro.nn.layers.Linear`
primitives as the MLP, which matters for the reproduction: the paper's point
is that "the execution of LSTM is also performed as matrix multiplication,
thus our proposed approximate dropout can be easily applied to LSTM".  The
cell therefore exposes its input-to-hidden and hidden-to-hidden projections as
pluggable linear modules so the approximate-dropout variants in
:mod:`repro.dropout.layers` can replace them.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn import initializers
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, functional as F


def active_input_pattern(dropout_module, num_units: int):
    """The row pattern a dropout module is currently zeroing its output with,
    if a consumer GEMM may compact against it.

    Duck-typed so :mod:`repro.nn` needs no import from :mod:`repro.dropout`:
    a module qualifies when it is training, executes in a compact mode, has a
    positive drop rate and exposes a unit-level ``pattern`` covering exactly
    ``num_units`` with a period that actually drops something.  Conventional
    :class:`~repro.nn.dropout.Dropout` (no ``pattern`` attribute) and
    block-granular patterns (different unit count) yield ``None``.
    """
    if dropout_module is None or not getattr(dropout_module, "training", False):
        return None
    if getattr(dropout_module, "execution_mode", "masked") == "masked":
        return None
    if getattr(dropout_module, "drop_rate", 0.0) <= 0.0:
        return None
    pattern = getattr(dropout_module, "pattern", None)
    if pattern is None or getattr(pattern, "num_units", -1) != num_units:
        return None
    if getattr(pattern, "dp", 1) <= 1:
        return None
    return pattern


class LSTMCell(Module):
    """A single LSTM cell computing one timestep.

    The four gates (input, forget, cell, output) are fused along the output
    dimension, split into an input projection ``weight_x`` of shape
    ``(4 * hidden, input_size)`` and a recurrent projection ``weight_h`` of
    shape ``(4 * hidden, hidden)`` — two GEMMs per step instead of one fused
    ``concat`` GEMM.  The split is what lets the paper's dropout patterns
    compress the cell: when the *input* activations were dropped by a row
    pattern (non-recurrent dropout, the only kind the paper applies to LSTMs),
    the input GEMM skips the dropped columns entirely; and when a
    ``recurrent_dropout`` site is attached (gate-aligned structured
    DropConnect on ``weight_h`` tiles), the recurrent GEMM only touches the
    surviving weight tiles instead of staying dense.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None,
                 forget_bias: float = 1.0,
                 recurrent_dropout: Module | None = None):
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("input_size and hidden_size must be positive")
        self.input_size = input_size
        self.hidden_size = hidden_size
        rng = rng or np.random.default_rng()
        scale = 1.0 / np.sqrt(hidden_size)
        self.weight_x = Parameter(
            initializers.uniform((4 * hidden_size, input_size), rng,
                                 low=-scale, high=scale))
        self.weight_h = Parameter(
            initializers.uniform((4 * hidden_size, hidden_size), rng,
                                 low=-scale, high=scale))
        bias = np.zeros(4 * hidden_size)
        # Positive forget-gate bias is the standard trick for trainability.
        bias[hidden_size:2 * hidden_size] = forget_bias
        self.bias = Parameter(bias)
        # Optional recurrent-projection site (duck-typed so repro.nn needs no
        # import from repro.dropout): a module exposing
        # ``project(h, weight) -> Tensor`` that owns the structured-DropConnect
        # execution of ``h @ weight_h.T`` — e.g.
        # :class:`repro.dropout.layers.ApproxRecurrentDropConnect`.  ``None``
        # keeps the dense recurrent GEMM.
        self.recurrent_dropout = recurrent_dropout

    def compact_input_context(self, input_pattern) -> tuple[np.ndarray, Tensor]:
        """Precompact the input projection against a row pattern.

        Returns ``(kept_indices, compact_weight)`` where ``compact_weight`` is
        a *differentiable* gather of the surviving weight columns.  Callers
        unrolling the cell over a window (BPTT) should build this once per
        window and pass it to every timestep: the weight-gather cost and the
        backward scatter then amortise over the whole unroll instead of being
        paid per timestep.
        """
        kept = input_pattern.kept_indices
        return kept, F.cols_select(self.weight_x, kept)

    def recurrent_window_context(self):
        """Hoistable per-window state of the recurrent DropConnect site.

        ``None`` when the cell has no recurrent site or the site's compact
        path is inactive; otherwise the pre-gathered weight-tile context a
        window unroll should pass to every timestep (see
        :meth:`repro.dropout.layers.ApproxRecurrentDropConnect.window_context`).
        """
        site = self.recurrent_dropout
        if site is None:
            return None
        build = getattr(site, "window_context", None)
        return build(self.weight_h) if callable(build) else None

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor] | None = None,
                input_pattern=None, compact_input=None, recurrent_context=None,
                ) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        """Run one timestep.

        Parameters
        ----------
        x:
            Input of shape ``(batch, input_size)``.
        state:
            Optional ``(h, c)`` tuple, each ``(batch, hidden_size)``.  Zeros
            are used when omitted.
        input_pattern:
            Optional row pattern the upstream dropout zeroed ``x`` with; when
            given, the input GEMM only multiplies the surviving columns.
        compact_input:
            Optional precomputed :meth:`compact_input_context`; takes
            precedence over ``input_pattern``.  Used by the window unroll so
            the weight gather happens once per window, not once per timestep.
        recurrent_context:
            Optional precomputed :meth:`recurrent_window_context`, hoisting
            the recurrent site's weight-tile gather out of the unroll the
            same way.

        Returns
        -------
        ``(h_new, (h_new, c_new))``
        """
        batch = x.shape[0]
        if state is None:
            dtype = self.weight_x.data.dtype
            h = Tensor(np.zeros((batch, self.hidden_size), dtype=dtype), dtype=dtype)
            c = Tensor(np.zeros((batch, self.hidden_size), dtype=dtype), dtype=dtype)
        else:
            h, c = state
        if compact_input is None and input_pattern is not None:
            compact_input = self.compact_input_context(input_pattern)
        if compact_input is not None:
            kept, compact_weight = compact_input
            gates = F.linear(F.cols_select(x, kept), compact_weight, self.bias)
        else:
            gates = F.linear(x, self.weight_x, self.bias)
        if self.recurrent_dropout is not None:
            gates = gates + self.recurrent_dropout.project(
                h, self.weight_h, context=recurrent_context)
        else:
            gates = gates + F.linear(h, self.weight_h, None)
        h_new, c_new = F.lstm_gates(gates, c)
        return h_new, (h_new, c_new)

    def __repr__(self) -> str:
        return f"LSTMCell(input_size={self.input_size}, hidden_size={self.hidden_size})"


class LSTM(Module):
    """Multi-layer LSTM unrolled over a sequence.

    Parameters
    ----------
    input_size, hidden_size, num_layers:
        Standard stacked-LSTM configuration; the paper uses two layers of 1500
        units for the dictionary task and three layers for PTB.
    dropout_builder:
        Optional callable ``layer_index -> Module`` that returns the dropout
        module applied to the output of each layer except the last.  This is
        how conventional dropout and the approximate dropout patterns are
        swapped in the experiments.
    recurrent_dropout_builder:
        Optional callable ``layer_index -> Module | None`` that returns the
        recurrent-projection DropConnect site of each cell (see
        :class:`LSTMCell`); ``None`` (the callable, or its return value)
        keeps that cell's recurrent GEMM dense.
    """

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1,
                 rng: np.random.Generator | None = None,
                 dropout_builder: Callable[[int], Module] | None = None,
                 recurrent_dropout_builder: Callable[[int], Module | None] | None = None):
        super().__init__()
        if num_layers <= 0:
            raise ValueError("num_layers must be positive")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        rng = rng or np.random.default_rng()
        self.cells: list[LSTMCell] = []
        self.inter_layer_dropout: list[Module] = []
        for layer in range(num_layers):
            recurrent_dropout = (recurrent_dropout_builder(layer)
                                 if recurrent_dropout_builder is not None else None)
            cell = LSTMCell(input_size if layer == 0 else hidden_size, hidden_size,
                            rng=rng, recurrent_dropout=recurrent_dropout)
            self.add_module(f"cell{layer}", cell)
            self.cells.append(cell)
        for layer in range(max(num_layers - 1, 0)):
            if dropout_builder is None:
                dropout: Module = _NoDropout()
            else:
                dropout = dropout_builder(layer)
            self.add_module(f"dropout{layer}", dropout)
            self.inter_layer_dropout.append(dropout)

    def init_state(self, batch: int) -> list[tuple[Tensor, Tensor]]:
        """Zero initial (h, c) state for every layer (dtype follows the weights)."""
        dtype = self.cells[0].weight_x.data.dtype
        return [
            (Tensor(np.zeros((batch, self.hidden_size), dtype=dtype), dtype=dtype),
             Tensor(np.zeros((batch, self.hidden_size), dtype=dtype), dtype=dtype))
            for _ in range(self.num_layers)
        ]

    def forward(self, inputs: Tensor,
                state: list[tuple[Tensor, Tensor]] | None = None,
                input_pattern=None,
                ) -> tuple[Tensor, list[tuple[Tensor, Tensor]]]:
        """Run the full sequence.

        Parameters
        ----------
        inputs:
            Tensor of shape ``(seq_len, batch, input_size)``.
        state:
            Optional per-layer ``(h, c)`` list from a previous call (used for
            truncated BPTT continuation).
        input_pattern:
            Optional row pattern the caller's input dropout zeroed ``inputs``
            with; lets the first layer's input GEMM skip dropped columns.
            Inter-layer patterns are discovered from the layer dropout modules
            automatically (see :func:`active_input_pattern`).

        Returns
        -------
        ``(outputs, final_state)`` where ``outputs`` has shape
        ``(seq_len, batch, hidden_size)``.
        """
        seq_len, batch = inputs.shape[0], inputs.shape[1]
        if state is None:
            state = self.init_state(batch)
        if len(state) != self.num_layers:
            raise ValueError(
                f"state must have one (h, c) pair per layer ({self.num_layers}), got {len(state)}")
        # One dropout pattern per layer input, fixed for the whole window: the
        # first layer's comes from the caller, deeper layers' from the
        # inter-layer dropout modules that zero their inputs.  The compact
        # weight gather is hoisted here so it is paid once per window, not
        # once per timestep.
        patterns = [input_pattern if self.training else None]
        patterns += [active_input_pattern(dropout, self.hidden_size)
                     for dropout in self.inter_layer_dropout]
        contexts = [None if pattern is None
                    else self.cells[layer].compact_input_context(pattern)
                    for layer, pattern in enumerate(patterns)]
        # Same hoist for the recurrent DropConnect sites: the weight-tile
        # gather of each cell's recurrent pattern is paid once per window.
        recurrent_contexts = [cell.recurrent_window_context()
                              for cell in self.cells]
        outputs: list[Tensor] = []
        for t in range(seq_len):
            layer_input = inputs[t]
            new_state: list[tuple[Tensor, Tensor]] = []
            for layer, cell in enumerate(self.cells):
                h, layer_state = cell(layer_input, state[layer],
                                      compact_input=contexts[layer],
                                      recurrent_context=recurrent_contexts[layer])
                new_state.append(layer_state)
                if layer < self.num_layers - 1:
                    h = self.inter_layer_dropout[layer](h)
                layer_input = h
            state = new_state
            outputs.append(layer_input)
        stacked = F.stack(outputs, axis=0)
        return stacked, state

    def __repr__(self) -> str:
        return (f"LSTM(input_size={self.input_size}, hidden_size={self.hidden_size}, "
                f"num_layers={self.num_layers})")


class _NoDropout(Module):
    """Internal identity placeholder used when no dropout builder is given."""

    def forward(self, x: Tensor) -> Tensor:
        return x
