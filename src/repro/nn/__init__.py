"""Neural-network layer library built on :mod:`repro.tensor`.

Provides the building blocks the paper's experiments need: fully-connected
layers, activations, conventional dropout (Srivastava et al.) and DropConnect
(Wan et al.) baselines, an LSTM implementation for the language-model
experiments, losses, optimisers and metrics.
"""

from repro.nn.module import Module, Parameter, Sequential
from repro.nn.layers import (
    Linear,
    ReLU,
    Sigmoid,
    Tanh,
    Identity,
    Flatten,
    Embedding,
)
from repro.nn.dropout import Dropout, DropConnectLinear
from repro.nn.recurrent import LSTMCell, LSTM
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.optim import SGD, Adam, LRSchedule, StepLR, ExponentialLR, ConstantLR
from repro.nn.metrics import accuracy, top_k_accuracy, perplexity_from_loss
from repro.nn import initializers

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Identity",
    "Flatten",
    "Embedding",
    "Dropout",
    "DropConnectLinear",
    "LSTMCell",
    "LSTM",
    "CrossEntropyLoss",
    "MSELoss",
    "SGD",
    "Adam",
    "LRSchedule",
    "StepLR",
    "ExponentialLR",
    "ConstantLR",
    "accuracy",
    "top_k_accuracy",
    "perplexity_from_loss",
    "initializers",
]
