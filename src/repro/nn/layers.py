"""Feed-forward layers: Linear, activations, Flatten and Embedding.

The :class:`Linear` layer stores its weight as ``(out_features, in_features)``
to match the paper's row-oriented view: dropping output neuron ``i`` of a
layer is equivalent to dropping row ``i`` of the *next* layer's weight matrix
(Section III-A of the paper).
"""

from __future__ import annotations

import numpy as np

from repro.nn import initializers
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, functional as F


class Linear(Module):
    """Affine layer ``y = x @ W.T + b`` with ``W`` of shape (out, in)."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 init: str = "xavier_uniform",
                 rng: np.random.Generator | None = None):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        rng = rng or np.random.default_rng()
        init_fn = initializers.get(init)
        self.weight = Parameter(init_fn((out_features, in_features), rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return (f"Linear(in_features={self.in_features}, "
                f"out_features={self.out_features}, bias={self.bias is not None})")


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class Sigmoid(Module):
    """Logistic activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()

    def __repr__(self) -> str:
        return "Sigmoid()"


class Tanh(Module):
    """Hyperbolic-tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def __repr__(self) -> str:
        return "Tanh()"


class Identity(Module):
    """No-op layer, useful as a placeholder for disabled dropout."""

    def forward(self, x: Tensor) -> Tensor:
        return x

    def __repr__(self) -> str:
        return "Identity()"


class Flatten(Module):
    """Flatten all dimensions except the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        batch = x.shape[0]
        return x.reshape(batch, -1)

    def __repr__(self) -> str:
        return "Flatten()"


class Embedding(Module):
    """Lookup table mapping integer token ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: np.random.Generator | None = None, scale: float = 0.1):
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ValueError("num_embeddings and embedding_dim must be positive")
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        rng = rng or np.random.default_rng()
        self.weight = Parameter(rng.uniform(-scale, scale,
                                            size=(num_embeddings, embedding_dim)))

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"token id out of range [0, {self.num_embeddings}) in embedding lookup")
        return F.embedding_lookup(self.weight, indices)

    def __repr__(self) -> str:
        return (f"Embedding(num_embeddings={self.num_embeddings}, "
                f"embedding_dim={self.embedding_dim})")
