"""Module / Parameter abstractions, mirroring the familiar layer-container API.

A :class:`Module` owns :class:`Parameter` tensors and child modules; it can
enumerate all parameters recursively (for the optimiser), switch between
train/eval modes (dropout behaves differently in each) and save/load its state
as plain numpy arrays.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor.

    Identical to :class:`Tensor` except it always requires gradients and is
    picked up automatically by :meth:`Module.parameters`.
    """

    def __init__(self, data, dtype=np.float64):
        super().__init__(data, requires_grad=True, dtype=dtype)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; they are registered automatically and discovered by
    :meth:`parameters`, :meth:`named_parameters` and :meth:`modules`.
    """

    def __init__(self):
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # attribute registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def parameters(self) -> list[Parameter]:
        """All trainable parameters of this module and its children."""
        return [p for _, p in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def modules(self) -> Iterator["Module"]:
        """Iterate over this module and all descendants (depth-first)."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def add_module(self, name: str, module: "Module") -> None:
        """Register a child module under an explicit name."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # train / eval, gradients
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout layers)."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar weights in the module."""
        return int(sum(p.size for p in self.parameters()))

    # ------------------------------------------------------------------
    # state dict
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Snapshot of all parameters as plain numpy arrays (copies)."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values saved by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, value in state.items():
            target = own[name]
            if target.data.shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {target.data.shape}, got {value.shape}")
            target.data = value.copy()

    # ------------------------------------------------------------------
    # forward
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_reprs = ", ".join(f"{name}={module.__class__.__name__}"
                                for name, module in self._modules.items())
        return f"{self.__class__.__name__}({child_reprs})"


class Sequential(Module):
    """A module that chains child modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._layers: list[Module] = []
        for index, module in enumerate(modules):
            self.add_module(str(index), module)
            self._layers.append(module)

    def append(self, module: Module) -> "Sequential":
        self.add_module(str(len(self._layers)), module)
        self._layers.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, index: int) -> Module:
        return self._layers[index]

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x
