"""Truncated-BPTT training loop for the LSTM language-model workload."""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.data.batching import BPTTBatcher
from repro.data.synthetic_text import SyntheticCorpus
from repro.execution import EngineRuntime, ExecutionConfig
from repro.gpu.device import DeviceSpec, GTX_1080TI
from repro.models.lstm_lm import LSTMLanguageModel
from repro.nn.losses import CrossEntropyLoss
from repro.nn.metrics import perplexity_from_loss
from repro.nn.optim import ExponentialLR
from repro.tensor import Tensor, no_grad
from repro.training.history import TrainingHistory, TrainingResult


@dataclass
class LanguageModelTrainingConfig:
    """Hyper-parameters of the LSTM run (paper defaults: Section IV-C)."""

    batch_size: int = 20
    seq_len: int = 35
    learning_rate: float = 1.0
    lr_decay: float = 0.8
    lr_flat_epochs: int = 2
    grad_clip: float = 5.0
    epochs: int = 3
    max_iterations: int | None = None
    eval_metric: str = "perplexity"  # or "accuracy" (next-word top-1, Table II)
    pattern_pool_size: int = 1024
    seed: int = 0

    def __post_init__(self):
        if self.batch_size <= 0 or self.seq_len <= 0 or self.epochs <= 0:
            raise ValueError("batch_size, seq_len and epochs must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.eval_metric not in ("perplexity", "accuracy"):
            raise ValueError("eval_metric must be 'perplexity' or 'accuracy'")
        if self.pattern_pool_size <= 0:
            raise ValueError("pattern_pool_size must be positive")


class LanguageModelTrainer:
    """Trains an :class:`LSTMLanguageModel` with truncated BPTT.

    As with the classifier trainer, the approximate dropout patterns are
    resampled once per iteration (per BPTT window, i.e. per parameter update),
    matching the paper's "one dropout pattern is applied to the whole batch"
    observation, and the modelled GPU time per iteration is recorded so each
    run carries its own speedup estimate.
    """

    def __init__(self, model: LSTMLanguageModel, corpus: SyntheticCorpus,
                 config: LanguageModelTrainingConfig | None = None,
                 device: DeviceSpec = GTX_1080TI,
                 runtime: EngineRuntime | None = None):
        self.model = model
        self.corpus = corpus
        self.config = config or LanguageModelTrainingConfig()
        self.device = device
        self.loss_fn = CrossEntropyLoss()
        # Unified execution shared with the MLP trainer: the runtime selects
        # the engine mode/dtype, reseeds the pattern streams pool-wide and
        # returns the schedule (pooled mode: one batched draw per epoch feeds
        # every pattern site of the model).  Bound before the optimizer so its
        # state buffers match the cast parameter dtype.
        self.runtime = runtime or EngineRuntime(ExecutionConfig(
            seed=self.config.seed, pool_size=self.config.pattern_pool_size))
        self.backend = self.runtime.backend
        self.pattern_schedule = self.runtime.bind(model)
        # Built through the runtime so ExecutionConfig.optimizer selects the
        # dense or the dirty-region sparse update (identical trajectories).
        self.optimizer = self.runtime.make_sgd(
            model.parameters(), lr=self.config.learning_rate,
            grad_clip=self.config.grad_clip)
        self.schedule = ExponentialLR(self.optimizer, gamma=self.config.lr_decay,
                                      flat_epochs=self.config.lr_flat_epochs)
        self.rng = np.random.default_rng(self.config.seed)

        timing_model = model.timing_model(self.config.batch_size, self.config.seq_len,
                                          device=device)
        self.iteration_time_ms = timing_model.iteration(
            model.timing_config()).iteration_time_ms
        self.baseline_iteration_time_ms = timing_model.iteration(
            model.baseline_timing_config()).iteration_time_ms

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def train(self) -> TrainingResult:
        """Run the configured number of epochs and return the result record."""
        config = self.config
        batcher = BPTTBatcher(self.corpus.train, config.batch_size, config.seq_len)
        history = TrainingHistory()
        start = time.perf_counter()
        iteration = 0
        last_loss = float("nan")
        for _ in range(config.epochs):
            self.pattern_schedule.plan(len(batcher))
            state = self.model.init_state(config.batch_size)
            for inputs, targets in batcher:
                if config.max_iterations is not None and iteration >= config.max_iterations:
                    break
                last_loss, state = self.train_step(inputs, targets, state)
                iteration += 1
            if config.max_iterations is not None and iteration >= config.max_iterations:
                break
            self.schedule.step()
            self._record(history, iteration, last_loss, start)
        if not history.iterations or history.iterations[-1] != iteration:
            self._record(history, iteration, last_loss, start)

        higher_is_better = config.eval_metric == "accuracy"
        return TrainingResult(
            strategy=self.model.strategy.name,
            final_metric=history.eval_metric[-1],
            best_metric=history.best_metric(higher_is_better=higher_is_better),
            iterations=iteration,
            simulated_time_ms=iteration * self.iteration_time_ms,
            simulated_baseline_time_ms=iteration * self.baseline_iteration_time_ms,
            wall_time_s=time.perf_counter() - start,
            history=history,
            engine_stats=self.runtime.stats(model=self.model),
        )

    def train_step(self, inputs: np.ndarray, targets: np.ndarray,
                   state: list) -> tuple[float, list]:
        """One BPTT window: forward, backward, clip, update. Returns (loss, state).

        The loss is computed through the model's bound loss head
        (:mod:`repro.heads`): the dense head reproduces the classic
        logits-then-cross-entropy path exactly, the sampled head never
        materialises full-vocabulary logits.  Evaluation (:meth:`evaluate`)
        always goes through the exact dense logits.
        """
        self.optimizer.zero_grad()
        loss, new_state = self.forward_backward(inputs, targets, state)
        self.optimizer.step()
        return loss, new_state

    def forward_backward(self, inputs: np.ndarray, targets: np.ndarray,
                         state: list, loss_scale: float = 1.0) -> tuple[float, list]:
        """Pattern resample + forward + backward; no parameter update.

        The shard workers of :mod:`repro.distributed` drive this directly:
        each computes its local gradients (scaled by its share of the global
        batch via ``loss_scale``) and the coordinator applies the one
        optimizer step.  Returns the *unscaled* window loss and the detached
        next state.
        """
        self.model.train()
        self.pattern_schedule.step()
        loss, new_state = self.model.loss(inputs, targets.reshape(-1), state)
        value = float(loss.data)
        if loss_scale != 1.0:
            loss = loss * loss_scale
        loss.backward()
        return value, self.model.detach_state(new_state)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, split: str = "test") -> float:
        """Evaluate perplexity (default) or next-word accuracy on a split."""
        stream = getattr(self.corpus, split)
        config = self.config
        batcher = BPTTBatcher(stream, config.batch_size, config.seq_len)
        self.model.eval()
        total_loss = 0.0
        total_correct = 0.0
        total_tokens = 0
        state = self.model.init_state(config.batch_size)
        with no_grad():
            for inputs, targets in batcher:
                logits, state = self.model(inputs, state)
                state = self.model.detach_state(state)
                flat_targets = targets.reshape(-1)
                loss = self.loss_fn(logits, flat_targets)
                tokens = flat_targets.shape[0]
                total_loss += float(loss.data) * tokens
                predictions = logits.data.argmax(axis=1)
                total_correct += float(np.sum(predictions == flat_targets))
                total_tokens += tokens
        self.model.train()
        if total_tokens == 0:
            raise ValueError(f"split {split!r} produced no evaluation batches")
        mean_loss = total_loss / total_tokens
        if config.eval_metric == "accuracy":
            return total_correct / total_tokens
        return perplexity_from_loss(mean_loss)

    def _record(self, history: TrainingHistory, iteration: int, loss: float,
                start_time: float) -> None:
        history.record(
            iteration=iteration,
            train_loss=loss,
            eval_metric=self.evaluate("valid"),
            simulated_time_ms=iteration * self.iteration_time_ms,
            wall_time_s=time.perf_counter() - start_time,
        )
