"""Training history records shared by both trainers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class TrainingHistory:
    """Per-evaluation-point curves recorded during a training run.

    ``simulated_time_ms`` is the cumulative *modelled* GPU time (from
    :mod:`repro.gpu`) at each evaluation point; it is the x-axis of the
    accuracy-vs-time convergence plot the paper shows in Fig. 5.
    """

    iterations: list[int] = field(default_factory=list)
    train_loss: list[float] = field(default_factory=list)
    eval_metric: list[float] = field(default_factory=list)
    simulated_time_ms: list[float] = field(default_factory=list)
    wall_time_s: list[float] = field(default_factory=list)

    def record(self, iteration: int, train_loss: float, eval_metric: float,
               simulated_time_ms: float, wall_time_s: float) -> None:
        self.iterations.append(int(iteration))
        self.train_loss.append(float(train_loss))
        self.eval_metric.append(float(eval_metric))
        self.simulated_time_ms.append(float(simulated_time_ms))
        self.wall_time_s.append(float(wall_time_s))

    def __len__(self) -> int:
        return len(self.iterations)

    def best_metric(self, higher_is_better: bool = True) -> float:
        if not self.eval_metric:
            raise ValueError("history is empty")
        return max(self.eval_metric) if higher_is_better else min(self.eval_metric)

    def as_arrays(self) -> dict[str, np.ndarray]:
        """All curves as numpy arrays (for plotting / analysis)."""
        return {
            "iterations": np.asarray(self.iterations),
            "train_loss": np.asarray(self.train_loss),
            "eval_metric": np.asarray(self.eval_metric),
            "simulated_time_ms": np.asarray(self.simulated_time_ms),
            "wall_time_s": np.asarray(self.wall_time_s),
        }


@dataclass
class TrainingResult:
    """Outcome of one training run.

    Attributes
    ----------
    strategy:
        Dropout strategy name ("original", "ROW", "TILE", "none").
    final_metric:
        Final evaluation metric (classification accuracy in [0, 1], or
        perplexity for language models).
    best_metric:
        Best evaluation metric seen during training.
    iterations:
        Total optimisation steps performed.
    simulated_time_ms:
        Total modelled GPU time for the run (iterations x modelled time per
        iteration under this strategy).
    simulated_baseline_time_ms:
        Modelled GPU time the *same* number of iterations would have taken
        under conventional dropout — the "old time" of the paper's speedup.
    wall_time_s:
        Actual CPU wall-clock spent in this process (informational).
    history:
        The full learning curves.
    engine_stats:
        Execution-engine counters (mode/dtype/seed, tile-plan cache hits and
        misses, pool refill/consumption, workspace buffers) captured from the
        :class:`repro.execution.EngineRuntime` that drove the run.
    """

    strategy: str
    final_metric: float
    best_metric: float
    iterations: int
    simulated_time_ms: float
    simulated_baseline_time_ms: float
    wall_time_s: float
    history: TrainingHistory
    engine_stats: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Modelled "old time / new time" speedup of this run."""
        if self.simulated_time_ms <= 0:
            return float("nan")
        return self.simulated_baseline_time_ms / self.simulated_time_ms

    @property
    def time_saved_fraction(self) -> float:
        if self.simulated_baseline_time_ms <= 0:
            return 0.0
        return 1.0 - self.simulated_time_ms / self.simulated_baseline_time_ms
