"""SGD training loop for the MLP classification workload."""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.data.batching import BatchIterator
from repro.data.synthetic_mnist import SyntheticMNIST
from repro.execution import EngineRuntime, ExecutionConfig
from repro.gpu.device import DeviceSpec, GTX_1080TI
from repro.models.mlp import MLPClassifier
from repro.nn.losses import CrossEntropyLoss
from repro.nn.metrics import accuracy
from repro.tensor import Tensor, no_grad
from repro.training.history import TrainingHistory, TrainingResult


@dataclass
class ClassifierTrainingConfig:
    """Hyper-parameters of the MLP training run (paper defaults: Section IV-A)."""

    batch_size: int = 128
    learning_rate: float = 0.01
    momentum: float = 0.9
    epochs: int = 5
    eval_every: int = 0  # 0 = evaluate once per epoch
    max_iterations: int | None = None
    pattern_pool_size: int = 1024
    seed: int = 0

    def __post_init__(self):
        if self.batch_size <= 0 or self.epochs <= 0:
            raise ValueError("batch_size and epochs must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if self.pattern_pool_size <= 0:
            raise ValueError("pattern_pool_size must be positive")


class ClassifierTrainer:
    """Trains an :class:`MLPClassifier` and records accuracy + modelled GPU time.

    The trainer resamples the model's dropout patterns at the top of every
    iteration (the approximate-dropout lifecycle), trains with SGD + momentum,
    and integrates the :mod:`repro.gpu` timing model so each run knows both
    how well it learned and how long the paper's GPU would have taken.

    Execution (engine mode, dtype, backend, pool-wide seed) is governed by an
    :class:`~repro.execution.EngineRuntime`; by default the trainer builds a
    pooled runtime seeded from its own training seed, so the full vectorized
    pattern-pool engine drives every run.  Pass an explicit ``runtime`` to
    select a different mode (``masked``/``compact``), a float32 hot path or
    an accelerated execution backend (``ExecutionConfig(backend="fused")``);
    the runtime's backend instance is exposed as ``trainer.backend`` and its
    per-op call counts land in the run's ``engine_stats``.
    """

    def __init__(self, model: MLPClassifier, dataset: SyntheticMNIST,
                 config: ClassifierTrainingConfig | None = None,
                 device: DeviceSpec = GTX_1080TI,
                 runtime: EngineRuntime | None = None):
        self.model = model
        self.dataset = dataset
        self.config = config or ClassifierTrainingConfig()
        self.device = device
        self.loss_fn = CrossEntropyLoss()
        # Unified execution: the runtime configures every pattern site for its
        # engine mode/dtype and hands back the schedule driving per-iteration
        # resampling (pooled mode: one batched numpy draw per epoch instead of
        # one scalar RNG round-trip per site per step).  Bound before the
        # optimizer so momentum buffers match the cast parameter dtype.
        self.runtime = runtime or EngineRuntime(ExecutionConfig(
            seed=self.config.seed, pool_size=self.config.pattern_pool_size))
        self.backend = self.runtime.backend
        self.pattern_schedule = self.runtime.bind(model)
        # Built through the runtime so ExecutionConfig.optimizer selects the
        # dense or the dirty-region sparse update (identical trajectories).
        self.optimizer = self.runtime.make_sgd(
            model.parameters(), lr=self.config.learning_rate,
            momentum=self.config.momentum)
        self.rng = np.random.default_rng(self.config.seed)

        timing_model = model.timing_model(self.config.batch_size, device=device)
        self.iteration_time_ms = timing_model.iteration(
            model.timing_config()).iteration_time_ms
        self.baseline_iteration_time_ms = timing_model.iteration(
            model.baseline_timing_config()).iteration_time_ms

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def train(self) -> TrainingResult:
        """Run the configured number of epochs and return the result record."""
        config = self.config
        iterator = BatchIterator(self.dataset.train_images, self.dataset.train_labels,
                                 config.batch_size, rng=self.rng)
        history = TrainingHistory()
        start = time.perf_counter()
        iteration = 0
        last_loss = float("nan")
        for _ in range(config.epochs):
            self.pattern_schedule.plan(len(iterator))
            for images, labels in iterator:
                if config.max_iterations is not None and iteration >= config.max_iterations:
                    break
                last_loss = self.train_step(images, labels)
                iteration += 1
                if config.eval_every and iteration % config.eval_every == 0:
                    self._record(history, iteration, last_loss, start)
            if config.max_iterations is not None and iteration >= config.max_iterations:
                break
            if not config.eval_every:
                self._record(history, iteration, last_loss, start)
        if not history.iterations or history.iterations[-1] != iteration:
            self._record(history, iteration, last_loss, start)

        final_accuracy = history.eval_metric[-1]
        return TrainingResult(
            strategy=self.model.strategy.name,
            final_metric=final_accuracy,
            best_metric=history.best_metric(higher_is_better=True),
            iterations=iteration,
            simulated_time_ms=iteration * self.iteration_time_ms,
            simulated_baseline_time_ms=iteration * self.baseline_iteration_time_ms,
            wall_time_s=time.perf_counter() - start,
            history=history,
            engine_stats=self.runtime.stats(model=self.model),
        )

    def train_step(self, images: np.ndarray, labels: np.ndarray) -> float:
        """One SGD step; returns the batch loss."""
        self.optimizer.zero_grad()
        loss = self.forward_backward(images, labels)
        self.optimizer.step()
        return loss

    def forward_backward(self, images: np.ndarray, labels: np.ndarray,
                         loss_scale: float = 1.0) -> float:
        """Pattern resample + forward + backward; no parameter update.

        The shard workers of :mod:`repro.distributed` drive this directly:
        each computes its local gradients (scaled by its share of the global
        batch via ``loss_scale``) and the coordinator applies the one
        optimizer step.  Returns the *unscaled* batch loss.
        """
        self.model.train()
        self.pattern_schedule.step()
        logits = self.model(Tensor(images, dtype=self.runtime.np_dtype))
        loss = self.loss_fn(logits, labels)
        value = float(loss.data)
        if loss_scale != 1.0:
            loss = loss * loss_scale
        loss.backward()
        return value

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, images: np.ndarray | None = None,
                 labels: np.ndarray | None = None,
                 batch_size: int = 512) -> float:
        """Top-1 accuracy on the given (or the test) split, in [0, 1]."""
        images = self.dataset.test_images if images is None else images
        labels = self.dataset.test_labels if labels is None else labels
        self.model.eval()
        correct = 0
        total = 0
        with no_grad():
            for start in range(0, len(images), batch_size):
                stop = start + batch_size
                logits = self.model(Tensor(images[start:stop], dtype=self.runtime.np_dtype))
                correct += accuracy(logits, labels[start:stop]) * (min(stop, len(images)) - start)
                total += min(stop, len(images)) - start
        self.model.train()
        return correct / total if total else 0.0

    def _record(self, history: TrainingHistory, iteration: int, loss: float,
                start_time: float) -> None:
        history.record(
            iteration=iteration,
            train_loss=loss,
            eval_metric=self.evaluate(),
            simulated_time_ms=iteration * self.iteration_time_ms,
            wall_time_s=time.perf_counter() - start_time,
        )
