"""Training harness coupling models, data, optimisers and the GPU timing model.

* :class:`~repro.training.trainer.ClassifierTrainer` — SGD training of the MLP
  workload with per-iteration pattern resampling and accuracy evaluation.
* :class:`~repro.training.lm_trainer.LanguageModelTrainer` — truncated-BPTT
  training of the LSTM language model with perplexity / next-word-accuracy
  evaluation.
* :class:`~repro.training.history.TrainingHistory` and
  :class:`~repro.training.history.TrainingResult` — records of the loss /
  accuracy curves plus the *modelled* GPU time per iteration, which is what
  the experiment drivers use to report the paper's "old time / new time"
  speedups and accuracy-vs-time curves (Fig. 5).
"""

from repro.training.history import TrainingHistory, TrainingResult
from repro.training.trainer import ClassifierTrainer, ClassifierTrainingConfig
from repro.training.lm_trainer import LanguageModelTrainer, LanguageModelTrainingConfig

__all__ = [
    "TrainingHistory",
    "TrainingResult",
    "ClassifierTrainer",
    "ClassifierTrainingConfig",
    "LanguageModelTrainer",
    "LanguageModelTrainingConfig",
]
