"""Pattern-aware sparse SGD driven by the compact engine's dirty regions.

The compact ops never produce dense gradients: every full-size gradient array
is a zero-filled buffer plus a handful of compact scatters, and the dirty
tracker (:mod:`repro.tensor.dirty`) records exactly which rows/columns those
scatters touched.  :class:`SparseSGD` consumes that record so the parameter
update only does arithmetic on the touched region — the rest of the parameter
(and of the momentum state) provably does not move — while staying
**bit-identical** to the dense :class:`~repro.nn.optim.SGD` update:

* Elements outside a recorded region hold exactly ``+0.0`` (the tracker's
  complement-is-zero invariant), and for positive ``lr``/``clip_scale`` the
  dense update of a zero-gradient, zero-velocity element is the bitwise
  identity, so skipping it changes nothing.
* With momentum, a previously-touched ("stale") row still decays:
  ``v = v * m + 0.0`` followed by ``p -= lr * v`` — the exact float sequence
  the dense path runs for a zero gradient (including the ``+ 0.0`` that
  normalises a ``-0.0`` product).  An *ever-touched* mask per parameter
  bounds the rows whose velocity can be non-zero.
* Grad-norm clipping accumulates squared norms over the same fixed row
  chunks as the dense path (:func:`repro.nn.optim._grad_sq_norm`); chunks
  with no dirty row contribute exactly ``+0.0`` and are skipped.
* Weight decay moves every element, and unknown-region gradients may be
  dense — both fall back to the inherited dense per-parameter update, which
  is trivially bit-identical.

The optimizer owns the tracker's activation window: ``zero_grad`` clears and
activates it (the subsequent backward records into it), ``step`` reads the
regions and deactivates it.  After each update it notifies the tracker's
observers (the recurrent weight-tile context caches) with the touched
region.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.module import Parameter
from repro.nn.optim import NORM_CHUNK_ROWS, SGD, _grad_sq_norm
from repro.tensor import dirty
from repro.tensor.dirty import DirtyTracker

__all__ = ["SparseSGD", "DirtyTracker"]

#: Dirty fraction above which the update arithmetic runs dense.  Fancy-index
#: gather/scatter pays a per-element overhead a contiguous full-array pass
#: does not (column indexing additionally strides across every row), so once
#: a quarter of the axis is dirty the dense arithmetic is faster — and it is
#: bit-identical either way (elements outside the region hold exactly
#: ``+0.0``, and the dense update of a zero gradient is the bitwise
#: identity).  Only the *arithmetic* goes dense: the region is still known,
#: so observers are notified with the true sparse index set.
DENSE_CUTOVER = 0.25


class SparseSGD(SGD):
    """SGD whose update arithmetic is restricted to dirty gradient regions.

    Drop-in replacement for :class:`~repro.nn.optim.SGD` (same
    hyper-parameters, same trajectories bit for bit); construct it through
    :meth:`repro.execution.EngineRuntime.make_sgd` so it shares the
    runtime's :class:`~repro.tensor.dirty.DirtyTracker`.
    """

    def __init__(self, parameters: Sequence[Parameter], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 grad_clip: float | None = None,
                 tracker: DirtyTracker | None = None):
        super().__init__(parameters, lr, momentum=momentum,
                         weight_decay=weight_decay, grad_clip=grad_clip)
        self.tracker = tracker if tracker is not None else DirtyTracker()
        #: Per-parameter overapproximation of where velocity may be non-zero:
        #: ``None`` (nowhere), ``("full",)``, or ``(kind, bool mask)`` over
        #: the row/column axis.
        self._ever: list = [None] * len(self.parameters)
        self.sparse_updates = 0
        self.dense_fallbacks = 0
        self.skipped_updates = 0
        self.skipped_norm_chunks = 0
        self._dirty_elements = 0
        self._total_elements = 0

    # ------------------------------------------------------------------
    # tracker activation window
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        super().zero_grad()
        self.tracker.clear()
        dirty.activate(self.tracker)

    def step(self) -> None:
        try:
            self._sparse_step()
        finally:
            dirty.deactivate(self.tracker)

    # ------------------------------------------------------------------
    # the sparse update
    # ------------------------------------------------------------------
    def _sparse_step(self) -> None:
        self.step_count += 1
        clip_scale = self._clip_scale()
        for index, param in enumerate(self.parameters):
            self._total_elements += param.data.size
            self._update_param(index, param, clip_scale)

    def _fallback(self, index: int, param: Parameter,
                  clip_scale: float) -> None:
        """Dense per-parameter update + bookkeeping (region unknown/dense)."""
        self._apply_dense(index, param, clip_scale)
        self._ever[index] = ("full",)
        self.dense_fallbacks += 1
        self._dirty_elements += param.data.size
        self.tracker.notify_update(param.data, "full", None)

    def _update_param(self, index: int, param: Parameter,
                      clip_scale: float) -> None:
        grad = param.grad
        if grad is None:
            # Exact-zero gradient, no array ever materialised.
            if self.weight_decay:
                self._fallback(index, param, clip_scale)
            elif self.momentum and self._ever[index] is not None:
                ever = self._ever[index]
                if ever[0] == "full":
                    self._fallback(index, param, clip_scale)
                else:
                    kind, mask = ever
                    self._decay_stale(index, param, kind, np.flatnonzero(mask))
                    self.sparse_updates += 1
                    self.tracker.notify_update(param.data, kind,
                                               np.flatnonzero(mask))
            else:
                self.skipped_updates += 1
            return

        region = None if self.weight_decay else self.tracker.region_of(grad)
        if region is None or region[0] == "full":
            self._fallback(index, param, clip_scale)
            return

        # The ever-touched mask only constrains the *velocity* state; without
        # momentum there is no state, so a past dense fallback must not pin
        # the parameter dense forever.
        ever = self._ever[index] if self.momentum else None
        if ever is not None and ever[0] == "full":
            # Velocity may be non-zero anywhere: dense decay is both correct
            # and cheaper than materialising the stale complement.
            self._fallback(index, param, clip_scale)
            return

        if region[0] == "empty":
            kind = ever[0] if ever is not None else "rows"
            idx = np.zeros(0, dtype=np.intp)
        else:
            kind, idx = region
            idx = np.asarray(idx)
        if kind == "cols" and param.data.ndim != 2:
            self._fallback(index, param, clip_scale)
            return
        if ever is not None and ever[0] != kind:
            self._fallback(index, param, clip_scale)
            return

        axis_len = param.data.shape[0] if kind == "rows" else param.data.shape[1]
        per_index = param.data.size // max(axis_len, 1)
        self._dirty_elements += int(idx.size) * per_index

        if not self.momentum:
            if idx.size >= axis_len * DENSE_CUTOVER:
                # Mostly-dirty: contiguous dense arithmetic wins (and is
                # bit-identical); the notification stays region-accurate.
                self._apply_dense(index, param, clip_scale)
                self.sparse_updates += 1
                self.tracker.notify_update(param.data, kind, idx)
            elif idx.size:
                if kind == "rows":
                    scaled = (grad[idx] * clip_scale if clip_scale != 1.0
                              else grad[idx])
                    param.data[idx] -= self.lr * scaled
                else:
                    scaled = (grad[:, idx] * clip_scale if clip_scale != 1.0
                              else grad[:, idx])
                    param.data[:, idx] -= self.lr * scaled
                self.sparse_updates += 1
                self.tracker.notify_update(param.data, kind, idx)
            else:
                self.skipped_updates += 1
            return

        # Momentum: update the dirty region with the real gradient, decay
        # the stale remainder of the ever-touched region, grow the mask.
        velocity = self._velocity_buffer(index, param)
        dirty_mask = np.zeros(axis_len, dtype=bool)
        dirty_mask[idx] = True
        if ever is not None:
            stale_idx = np.flatnonzero(ever[1] & ~dirty_mask)
            new_mask = ever[1] | dirty_mask
        else:
            stale_idx = np.zeros(0, dtype=np.intp)
            new_mask = dirty_mask
        if int(np.count_nonzero(new_mask)) >= axis_len * DENSE_CUTOVER:
            # Mostly-dirty ever-region: the dense velocity/parameter pass is
            # cheaper than three fancy-indexed ones and runs the exact same
            # float sequence on every touched element (untouched elements see
            # ``v = 0*m + 0; p -= lr*0`` — the bitwise identity).
            self._apply_dense(index, param, clip_scale)
            self._ever[index] = (kind, new_mask)
            self.sparse_updates += 1
            self.tracker.notify_update(param.data, kind,
                                       np.flatnonzero(new_mask))
            return
        if idx.size:
            if kind == "rows":
                scaled = (grad[idx] * clip_scale if clip_scale != 1.0
                          else grad[idx])
                velocity[idx] = velocity[idx] * self.momentum + scaled
                param.data[idx] -= self.lr * velocity[idx]
            else:
                scaled = (grad[:, idx] * clip_scale if clip_scale != 1.0
                          else grad[:, idx])
                velocity[:, idx] = velocity[:, idx] * self.momentum + scaled
                param.data[:, idx] -= self.lr * velocity[:, idx]
        self._decay_stale(index, param, kind, stale_idx)
        self._ever[index] = (kind, new_mask)
        if idx.size or stale_idx.size:
            self.sparse_updates += 1
            self.tracker.notify_update(param.data, kind,
                                       np.flatnonzero(new_mask))
        else:
            self.skipped_updates += 1

    def _decay_stale(self, index: int, param: Parameter, kind: str,
                     stale_idx: np.ndarray) -> None:
        """Momentum decay of ever-touched rows whose gradient is zero now.

        ``v * m + 0.0`` then ``p -= lr * v`` — the exact float sequence the
        dense path runs for those elements (the ``+ 0.0`` reproduces its
        ``-0.0`` normalisation).
        """
        if not stale_idx.size:
            return
        velocity = self._velocity[index]
        if velocity is None:
            return
        if kind == "rows":
            decayed = velocity[stale_idx] * self.momentum + 0.0
            velocity[stale_idx] = decayed
            param.data[stale_idx] -= self.lr * decayed
        else:
            decayed = velocity[:, stale_idx] * self.momentum + 0.0
            velocity[:, stale_idx] = decayed
            param.data[:, stale_idx] -= self.lr * decayed

    # ------------------------------------------------------------------
    # clipping
    # ------------------------------------------------------------------
    def _clip_scale(self) -> float:
        """Dense chunked clip norm, skipping chunks with no dirty row.

        Accumulates in the same parameter order and the same fixed row
        chunks as :meth:`Optimizer._clip_scale`; every skipped chunk would
        have contributed exactly ``+0.0``, so the float result is identical.
        """
        if self.grad_clip is None:
            return 1.0
        total = 0.0
        for param in self.parameters:
            grad = param.grad
            if grad is None:
                continue
            region = self.tracker.region_of(grad)
            if region is None or region[0] in ("full", "cols"):
                total += _grad_sq_norm(grad)
            elif region[0] == "rows":
                total += self._row_region_sq_norm(grad, np.asarray(region[1]))
            # ("empty",): the whole gradient is exactly zero — every chunk
            # would contribute +0.0.
        norm = float(np.sqrt(total))
        if norm <= self.grad_clip or norm == 0.0:
            return 1.0
        return self.grad_clip / norm

    def _row_region_sq_norm(self, grad: np.ndarray, rows: np.ndarray) -> float:
        if grad.ndim < 2 or grad.shape[0] <= NORM_CHUNK_ROWS:
            return _grad_sq_norm(grad)
        num_chunks = -(-grad.shape[0] // NORM_CHUNK_ROWS)
        chunk_ids = np.unique(rows // NORM_CHUNK_ROWS)
        self.skipped_norm_chunks += int(num_chunks - chunk_ids.size)
        total = 0.0
        for chunk_id in chunk_ids:
            start = int(chunk_id) * NORM_CHUNK_ROWS
            chunk = grad[start:start + NORM_CHUNK_ROWS].reshape(-1)
            total += float(np.dot(chunk, chunk))
        return total

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Counters for ``EngineRuntime.stats()["optimizer"]``."""
        return {
            "steps": self.step_count,
            "sparse_updates": self.sparse_updates,
            "dense_fallbacks": self.dense_fallbacks,
            "skipped_updates": self.skipped_updates,
            "skipped_norm_chunks": self.skipped_norm_chunks,
            "dirty_fraction": (self._dirty_elements / self._total_elements
                               if self._total_elements else 0.0),
        }
