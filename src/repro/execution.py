"""Unified execution configuration for the pattern-pool engine.

Every consumer of the approximate-dropout machinery — the experiment drivers,
both trainers and the benchmark harness — needs to make the same three
decisions: *how* the dropout patterns are executed (dense masked GEMMs, the
compact ops, or the full vectorized pattern-pool engine), *which* floating
dtype the hot path runs in, and *where* the randomness of the whole pooled
schedule comes from.  Before this module each caller wired those choices up by
hand (and several could not make them at all); :class:`ExecutionConfig` is the
single value object that carries them and :class:`EngineRuntime` is the object
that applies them to a model and owns the per-run execution state.

Execution modes
---------------

``"masked"``
    The conventional baseline of Fig. 1(a): pattern layers run the dense GEMM
    and multiply by a 0/1 mask that is rebuilt every step; nothing is pooled
    or cached.  Pattern sampling stays per-step and scalar.
``"compact"``
    The seed repo's execution model: the compact ops (only surviving
    rows/tiles are computed) with per-step scalar pattern sampling, fresh
    scatter buffers every step (no workspace reuse) and no pooling.
``"pooled"``
    The full vectorized engine: batched pattern draws into per-site
    :class:`~repro.dropout.sampler.PatternPool` rings, interned patterns and
    compiled tile plans, and :class:`~repro.dropout.engine.CompactWorkspace`
    buffer reuse across steps.

Determinism
-----------

``ExecutionConfig.seed`` fixes the *whole* pooled schedule: at
:meth:`EngineRuntime.bind` every pattern site's sampler is reseeded from one
``np.random.SeedSequence`` spawned per site in deterministic module-traversal
order, so two runs with the same seed replay bit-identical pattern streams
regardless of how the layers' own generators were created.  Pass
``seed=None`` to keep each layer's original stream (the pre-runtime
behaviour).

Dtype / backend
---------------

``dtype`` selects the floating dtype of the hot path ("float64" or
"float32"); binding a runtime casts the model parameters in place and the
trainers cast their input batches, and the mask/compact machinery keeps the
chosen dtype end to end.  ``backend`` selects the
:class:`~repro.backends.ExecutionBackend` that executes the compact GEMMs
behind the same :class:`~repro.dropout.engine.TileExecutionPlan` /
:class:`~repro.dropout.engine.CompactWorkspace` objects: ``"numpy"`` is the
reference per-group implementation, ``"fused"`` batches same-shape tile
GEMMs into stacked 3-D GEMM calls, and further backends can be plugged in
through :func:`repro.backends.register_backend`.  Validation consults the
registry, so unknown names fail fast with the list of available backends.

Loss head
---------

``loss_head`` selects how a bound model computes its training loss
(:mod:`repro.heads`): ``"dense"`` keeps the exact full-softmax head,
``"sampled"`` installs the :class:`~repro.heads.CompactSoftmaxHead` on every
model exposing the ``set_loss_head`` hook — the vocabulary becomes one more
pooled pattern site (class patterns drawn from the same seeded stream,
targets always kept) and the projection + loss run compactly —
and ``"adaptive"`` installs the :class:`~repro.heads.AdaptiveSoftmaxHead`:
a two-level class factorization (dense shortlist + frequency-banded tail
clusters expanded per batch) that draws no randomness at all.
``loss_head_rate`` is the sampled head's target pruned fraction;
``head_shortlist`` / ``head_clusters`` are the adaptive head's partition
knobs.  Evaluation always uses the head's exact dense path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.backends import ExecutionBackend, available_backends, create_backend
from repro.dropout.engine import CompactWorkspace, tile_plan_cache_info
from repro.dropout.patterns import pattern_cache_info
from repro.dropout.sampler import PatternSchedule, is_pattern_site
from repro.heads import LOSS_HEAD_KINDS
from repro.nn.optim import SGD
from repro.optim_sparse import SparseSGD
from repro.tensor import dirty as _dirty
from repro.tensor.dirty import DirtyTracker

#: Engine execution modes, in increasing order of caching aggressiveness.
EXECUTION_MODES: tuple[str, ...] = ("masked", "compact", "pooled")

#: Recurrent-projection execution: keep the LSTM ``weight_h`` GEMM dense, or
#: run it as a gate-aligned weight-tile (DropConnect) pattern site.
RECURRENT_MODES: tuple[str, ...] = ("dense", "tiled")

#: Loss-head execution: the exact dense softmax head, or the sampled
#: (class-pruned) head of :mod:`repro.heads` (re-exported registry names).
LOSS_HEAD_MODES: tuple[str, ...] = LOSS_HEAD_KINDS

#: Optimizer execution: the dense per-parameter SGD update, or the
#: pattern-aware :class:`~repro.optim_sparse.SparseSGD`, which restricts the
#: update arithmetic to the dirty gradient regions recorded by the compact
#: ops' scatters (bit-identical trajectories; see :mod:`repro.tensor.dirty`).
OPTIMIZER_MODES: tuple[str, ...] = ("dense", "sparse")

#: Supported floating dtypes of the execution hot path.
EXECUTION_DTYPES: dict[str, np.dtype] = {
    "float64": np.dtype(np.float64),
    "float32": np.dtype(np.float32),
}


@dataclass(frozen=True)
class FaultPolicy:
    """How a :class:`~repro.distributed.DistributedTrainer` handles failures.

    The policy is carried by :attr:`ExecutionConfig.fault_policy` and only
    consulted on the distributed path (the plain trainers ignore it).  A
    worker death (or hang, via ``barrier_timeout_s``) detected mid-step tears
    the whole cluster down and respawns it; because every shard's state is
    fully described by ``(seed, shard_count, step)``, the replacement workers
    deterministically fast-forward their pattern/batch streams to the failed
    step and replay it, keeping the history bit-identical to an uninterrupted
    run.

    Attributes
    ----------
    max_retries:
        Consecutive recovery attempts before the run degrades to a clean
        abort (``0`` restores the fail-fast behaviour of PR 7).  The counter
        resets on every successful step.
    backoff_s:
        Sleep between a detected failure and the respawn, multiplied by the
        attempt number (attempt 1 sleeps ``backoff_s``, attempt 2 twice
        that, ...).
    checkpoint_every:
        Write a coordinator checkpoint every K successful steps (``0``
        disables periodic checkpoints).  Requires ``checkpoint_dir``.
    checkpoint_dir:
        Directory for :mod:`repro.distributed.checkpoint` files.  When set, a
        checkpoint is also written on every detected failure (including the
        final abort), so :meth:`DistributedTrainer.resume` can pick the run
        up from the last consistent step.
    barrier_timeout_s:
        Coordinator-side timeout of the two arena barriers.  A hung worker
        (one that stops making progress without dying) breaks the barrier
        after this long instead of deadlocking the arena; workers use a
        margin above it so the coordinator always times out first and owns
        the recovery.
    validate_numerics:
        Check the per-shard losses and the reduced gradients for NaN/Inf
        *before* the optimizer step each iteration; a corrupt shard is then
        handled like a dead one (the step is replayed from clean state).
    """

    max_retries: int = 2
    backoff_s: float = 0.0
    checkpoint_every: int = 0
    checkpoint_dir: str | None = None
    barrier_timeout_s: float = 300.0
    validate_numerics: bool = True

    def __post_init__(self):
        self.validate()

    def validate(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}")
        if self.checkpoint_every > 0 and self.checkpoint_dir is None:
            raise ValueError("checkpoint_every > 0 requires checkpoint_dir")
        if self.barrier_timeout_s <= 0:
            raise ValueError(
                f"barrier_timeout_s must be > 0, got {self.barrier_timeout_s}")


@dataclass(frozen=True)
class ExecutionConfig:
    """How the pattern-pool engine should execute a training run.

    Attributes
    ----------
    mode:
        Execution mode: ``"masked"``, ``"compact"`` or ``"pooled"`` (see the
        module docstring).
    dtype:
        Floating dtype of the hot path: ``"float64"`` or ``"float32"``.
    backend:
        Execution backend selector, validated against the
        :mod:`repro.backends` registry (``"numpy"`` and ``"fused"`` ship;
        see :func:`repro.backends.available_backends`).
    recurrent:
        Recurrent-projection execution: ``"dense"`` (the default — the LSTM
        ``weight_h`` GEMM stays dense, the pre-existing behaviour) or
        ``"tiled"`` (every bound recurrent DropConnect site is enabled, so
        the hidden-to-hidden projection becomes a gate-aligned weight-tile
        pattern site pooled and executed like the other pattern layers).
    loss_head:
        Loss-head execution for models exposing ``set_loss_head`` (the LSTM
        language model): ``"dense"`` (the default — exact full-softmax loss),
        ``"sampled"`` (the :class:`~repro.heads.CompactSoftmaxHead`: the
        vocabulary becomes a pooled pattern site, targets always kept, the
        training loss a compact sampled softmax) or ``"adaptive"`` (the
        :class:`~repro.heads.AdaptiveSoftmaxHead`: dense shortlist +
        frequency-banded tail clusters expanded only for the clusters the
        batch targets hit).  Evaluation stays exact under every head.
    loss_head_rate:
        Target fraction of vocabulary classes the sampled head prunes per
        iteration (ignored by the other heads).
    head_shortlist:
        Shortlist size of the adaptive head — how many of the most frequent
        classes get the exact dense projection every step.  ``0`` (the
        default) auto-sizes it (``min(vocab // 4, 4096)``, at least 1);
        explicit values must be positive and are validated against the
        vocabulary at bind time.  Ignored by the other heads.
    head_clusters:
        Number of frequency-banded tail clusters of the adaptive head
        (geometrically sized; short tails may yield fewer).  Ignored by the
        other heads.
    optimizer:
        Parameter-update execution for optimizers built through
        :meth:`EngineRuntime.make_sgd`: ``"dense"`` (the default — the plain
        :class:`~repro.nn.optim.SGD` update) or ``"sparse"`` (the
        :class:`~repro.optim_sparse.SparseSGD`, which consumes the dirty
        rows/tiles the compact backward scatters recorded and updates only
        those — bit-identical parameter trajectories, a fraction of the
        update arithmetic, and dirty-driven refresh of the recurrent sites'
        cached weight tiles).
    seed:
        Pool-wide pattern seed.  A single integer deterministically fixes the
        pattern streams of *every* dropout site; ``None`` leaves each layer's
        own generator untouched.
    shards:
        Data-parallel worker processes a
        :class:`~repro.distributed.trainer.DistributedTrainer` splits each
        batch across (1 = single-process, the default; the plain trainers
        ignore the field).  Each shard's runtime is reseeded from a per-shard
        ``SeedSequence`` spawn of ``seed`` (see
        :func:`repro.distributed.shard_seed`), so the same seed + shard count
        replays bit-identical training histories.
    fault_policy:
        A :class:`FaultPolicy` describing how the distributed trainer reacts
        to worker death, hangs and corrupt gradients (retry/backoff budget,
        checkpoint cadence, barrier timeout).  Ignored by the plain trainers
        and at ``shards=1``.
    compress_cutover:
        Dirty-fraction cutover of the arena's dirty-region gradient
        compression (sparse optimizer only): a shard whose recorded dirty
        rows/cols cover less than this fraction of the gradient's axis
        transmits only those rows/cols; denser gradients fall back to the
        full block write.  ``0.0`` disables compression.  Either way the
        reduce is bit-identical to the dense one (the complement of a dirty
        region is exactly ``+0.0``).
    pool_size:
        Patterns per batched pool draw for pooled sites.
    workspace_slots:
        Buffer-ring depth of each layer's :class:`CompactWorkspace`.
    serve_max_batch:
        Micro-batch row capacity of the serving path: the
        :class:`~repro.serving.batcher.MicroBatcher` executes as soon as
        this many requests are waiting, and the
        :class:`~repro.serving.engine.InferenceEngine` interns its scratch
        buffers at this capacity.  Ignored outside serving.
    serve_max_wait_ms:
        How long the micro-batcher lets the oldest queued request wait for
        companions before executing a partial batch (0 = never wait:
        every collect drains only what is already queued).
    """

    mode: str = "pooled"
    dtype: str = "float64"
    backend: str = "numpy"
    recurrent: str = "dense"
    loss_head: str = "dense"
    loss_head_rate: float = 0.5
    head_shortlist: int = 0
    head_clusters: int = 4
    optimizer: str = "dense"
    seed: int | None = 0
    shards: int = 1
    fault_policy: FaultPolicy = FaultPolicy()
    compress_cutover: float = 0.5
    pool_size: int = 1024
    workspace_slots: int = 2
    serve_max_batch: int = 64
    serve_max_wait_ms: float = 2.0

    def __post_init__(self):
        self.validate()

    def validate(self) -> None:
        """Check every field, consulting the backend registry for ``backend``.

        Called automatically at construction; exposed so long-lived configs
        can be re-checked after the registry changed (e.g. a plugin backend
        was unregistered).
        """
        if self.mode not in EXECUTION_MODES:
            raise ValueError(
                f"unknown execution mode {self.mode!r}; available: {EXECUTION_MODES}")
        if self.dtype not in EXECUTION_DTYPES:
            raise ValueError(
                f"unknown execution dtype {self.dtype!r}; "
                f"available: {tuple(EXECUTION_DTYPES)}")
        if self.backend not in available_backends():
            raise ValueError(
                f"unknown execution backend {self.backend!r}; "
                f"available: {available_backends()}")
        if self.recurrent not in RECURRENT_MODES:
            raise ValueError(
                f"unknown recurrent execution {self.recurrent!r}; "
                f"available: {RECURRENT_MODES}")
        if self.loss_head not in LOSS_HEAD_MODES:
            raise ValueError(
                f"unknown loss head {self.loss_head!r}; "
                f"available: {LOSS_HEAD_MODES}")
        if not 0.0 <= self.loss_head_rate < 1.0:
            raise ValueError(
                f"loss_head_rate must be in [0, 1), got {self.loss_head_rate}")
        if self.head_shortlist < 0:
            raise ValueError(
                f"head_shortlist must be >= 0 (0 = auto-size), got "
                f"{self.head_shortlist}")
        if self.head_clusters < 1:
            raise ValueError(
                f"head_clusters must be >= 1, got {self.head_clusters}")
        if self.optimizer not in OPTIMIZER_MODES:
            raise ValueError(
                f"unknown optimizer execution {self.optimizer!r}; "
                f"available: {OPTIMIZER_MODES}")
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if not isinstance(self.fault_policy, FaultPolicy):
            raise ValueError(
                f"fault_policy must be a FaultPolicy, got {self.fault_policy!r}")
        self.fault_policy.validate()
        if not 0.0 <= self.compress_cutover <= 1.0:
            raise ValueError(
                f"compress_cutover must be in [0, 1], got {self.compress_cutover}")
        if self.pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        if self.workspace_slots < 1:
            raise ValueError("workspace_slots must be >= 1")
        if self.serve_max_batch < 1:
            raise ValueError(
                f"serve_max_batch must be >= 1, got {self.serve_max_batch}")
        if self.serve_max_wait_ms < 0:
            raise ValueError(
                f"serve_max_wait_ms must be >= 0, got {self.serve_max_wait_ms}")

    @property
    def np_dtype(self) -> np.dtype:
        """The numpy dtype selected by :attr:`dtype`."""
        return EXECUTION_DTYPES[self.dtype]

    def describe(self) -> str:
        """One-line human-readable summary (used in formatted table output)."""
        seed = "-" if self.seed is None else self.seed
        shards = f" shards={self.shards}" if self.shards != 1 else ""
        return (f"mode={self.mode} dtype={self.dtype} backend={self.backend} "
                f"recurrent={self.recurrent} head={self.loss_head} "
                f"opt={self.optimizer} seed={seed}{shards} pool={self.pool_size}")


def _pattern_sites(model) -> list:
    """The pattern sites of ``model`` in deterministic traversal order.

    Uses the same :func:`~repro.dropout.sampler.is_pattern_site` predicate as
    :meth:`PatternSchedule.from_model`, so the set of reseeded samplers and
    the set of pooled sites are always the same modules.
    """
    return [module for module in model.modules()
            if module is not model and is_pattern_site(module)]


class EngineRuntime:
    """Applies an :class:`ExecutionConfig` to models and owns the run state.

    One runtime can serve several sequential training runs (an experiment
    driver binds one model per table cell); :meth:`bind` configures a model's
    pattern layers for the runtime's execution mode and dtype, reseeds their
    samplers from the pool-wide seed and returns the
    :class:`~repro.dropout.sampler.PatternSchedule` the trainer should drive.
    :meth:`stats` aggregates the engine-side counters — tile-plan cache
    hits/misses (as deltas since the runtime was created), pattern-cache
    deltas, pool refill/consumption counts, workspace buffer totals and the
    backend's per-operation call counts (``backend_calls``) — which the
    experiment drivers attach to their records.
    """

    def __init__(self, config: ExecutionConfig | None = None):
        self.config = config or ExecutionConfig()
        #: The runtime's private backend instance — one per runtime, so the
        #: per-backend call counters of concurrent runtimes never mix.
        self.backend: ExecutionBackend = create_backend(self.config.backend)
        self._plan_baseline = tile_plan_cache_info()
        self._pattern_baseline = pattern_cache_info()
        #: The most recent bind only; earlier runs' counters are folded into
        #: ``_archived`` at the next bind so a driver sharing one runtime
        #: across many training runs does not keep every model alive.  Each
        #: entry also snapshots the backend call counters at bind time, so a
        #: per-model :meth:`stats` can report the *run's* calls rather than
        #: the runtime-cumulative totals.
        self._bound: list[tuple[Any, PatternSchedule]] = []
        self._bind_call_baselines: list[tuple[Any, dict[str, int]]] = []
        self._archived = self._zero_totals()
        #: The runtime's dirty-region tracker: shared by every optimizer
        #: built through :meth:`make_sgd` and by the recurrent sites' weight
        #: tile context caches (update observers).  Inert unless a
        #: :class:`~repro.optim_sparse.SparseSGD` activates it per step.
        self.dirty_tracker = DirtyTracker()
        self._optimizers: list[SGD] = []
        self._archived_optim = self._zero_optimizer_totals()
        #: Serving-side stat sources (engines and micro-batchers register
        #: themselves here); folded into ``stats()["serving"]``.
        self._serving_sources: list[Any] = []
        self.runs = 0

    @property
    def np_dtype(self) -> np.dtype:
        return self.config.np_dtype

    # ------------------------------------------------------------------
    # binding models
    # ------------------------------------------------------------------
    def bind(self, model) -> PatternSchedule:
        """Configure ``model`` for this runtime and return its schedule.

        * casts every parameter to the configured dtype (in place);
        * installs the configured loss head on every module exposing the
          ``set_loss_head`` hook (the LSTM language model), *before* the
          engine attributes are applied and the sites enumerated, so a
          sampled head is configured, pooled and reseeded like any other
          pattern site;
        * sets ``execution_mode`` / ``use_workspace`` on every module that
          exposes them (the pattern layers, the loss heads, and models with
          engine-aware fast paths);
        * installs the runtime's :class:`~repro.backends.ExecutionBackend`
          instance on every module exposing a ``backend`` attribute, so all
          compact GEMMs of the run execute (and are counted) through it;
        * reseeds every pattern site's sampler from the pool-wide seed;
        * builds the pooled or scalar :class:`PatternSchedule` for the mode.
        """
        config = self.config
        self.runs += 1
        self._archive_finished_runs()
        for param in model.parameters():
            if param.data.dtype != config.np_dtype:
                param.data = param.data.astype(config.np_dtype)

        # Loss-head installation first: set_loss_head replaces a child
        # module, so the list is materialised before mutation and the
        # attribute/site loops below see the freshly installed head.
        for module in list(model.modules()):
            installer = getattr(module, "set_loss_head", None)
            if callable(installer):
                installer(config.loss_head, rate=config.loss_head_rate,
                          shortlist=config.head_shortlist,
                          clusters=config.head_clusters)

        layer_mode = "masked" if config.mode == "masked" else "compact"
        use_workspace = config.mode == "pooled"
        for module in model.modules():
            if hasattr(module, "execution_mode"):
                module.execution_mode = layer_mode
            if hasattr(module, "use_workspace"):
                module.use_workspace = use_workspace
            if hasattr(module, "backend"):
                module.backend = self.backend
            if getattr(module, "recurrent_site", False):
                # Gated recurrent DropConnect sites: enabled under
                # recurrent="tiled" (they then count as pattern sites below,
                # get pooled and reseeded), inert/dense otherwise.
                module.enabled = config.recurrent == "tiled"
                # Under the sparse optimizer the site caches its gathered
                # weight tiles across BPTT windows and refreshes only the
                # classes whose rows the optimizer dirtied; without update
                # notifications the cache would serve stale weights.
                if config.optimizer == "sparse" and module.enabled:
                    module.install_context_cache(self.dirty_tracker)
                elif hasattr(module, "disable_context_cache"):
                    module.disable_context_cache()
            workspace = getattr(module, "workspace", None)
            if (isinstance(workspace, CompactWorkspace)
                    and workspace.slots != config.workspace_slots):
                module.workspace = CompactWorkspace(slots=config.workspace_slots)

        sites = _pattern_sites(model)
        if config.seed is not None and sites:
            # One spawned child stream per site: the single config seed fixes
            # the whole schedule, and successive binds (run index) of the same
            # runtime get fresh-but-reproducible streams.
            root = np.random.SeedSequence([int(config.seed), self.runs])
            for site, child in zip(sites, root.spawn(len(sites))):
                site_rng = np.random.default_rng(child)
                sampler = getattr(site, "sampler", None)
                if sampler is not None:
                    sampler.rng = site_rng
                if hasattr(site, "rng"):
                    site.rng = site_rng

        if config.mode == "pooled":
            schedule_rng = (np.random.default_rng(config.seed)
                            if config.seed is not None else None)
            schedule = PatternSchedule.from_model(model, pool_size=config.pool_size,
                                                  rng=schedule_rng)
        else:
            schedule = PatternSchedule.scalar_for_model(model)
        self._bound.append((model, schedule))
        self._bind_call_baselines.append((model, dict(self.backend.calls)))
        return schedule

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def register_serving_source(self, source: Any) -> None:
        """Attach a serving stat source (an engine or micro-batcher).

        ``source`` must expose ``serving_stats() -> dict`` with integer
        counters; :meth:`stats` sums them under the ``"serving"`` key and
        derives the mean batch occupancy.  Called by
        :class:`~repro.serving.engine.InferenceEngine` and
        :class:`~repro.serving.batcher.MicroBatcher` at construction.
        """
        self._serving_sources.append(source)

    def _serving_totals(self) -> dict[str, Any]:
        totals = {"engines": 0, "batchers": 0, "infer_calls": 0, "rows": 0,
                  "batches": 0, "requests": 0, "queue_depth": 0}
        for source in self._serving_sources:
            for key, value in source.serving_stats().items():
                totals[key] = totals.get(key, 0) + value
        totals["mean_occupancy"] = (totals["requests"] / totals["batches"]
                                    if totals["batches"] else 0.0)
        return totals

    # ------------------------------------------------------------------
    # optimizers
    # ------------------------------------------------------------------
    def make_sgd(self, parameters, lr: float, momentum: float = 0.0,
                 weight_decay: float = 0.0,
                 grad_clip: float | None = None) -> SGD:
        """An SGD optimizer executing per ``config.optimizer``.

        ``"dense"`` returns the plain :class:`~repro.nn.optim.SGD`;
        ``"sparse"`` returns a :class:`~repro.optim_sparse.SparseSGD` sharing
        the runtime's dirty tracker, so its per-step activation window feeds
        the compact ops' scatter records straight into the update.  Both
        trainers construct their optimizer through this factory, and
        :meth:`stats` aggregates the counters of every optimizer it built.
        """
        if self.config.optimizer == "sparse":
            optimizer: SGD = SparseSGD(parameters, lr, momentum=momentum,
                                       weight_decay=weight_decay,
                                       grad_clip=grad_clip,
                                       tracker=self.dirty_tracker)
        else:
            optimizer = SGD(parameters, lr, momentum=momentum,
                            weight_decay=weight_decay, grad_clip=grad_clip)
        self._optimizers.append(optimizer)
        return optimizer

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @staticmethod
    def _zero_totals() -> dict[str, Any]:
        return {
            "steps": 0,
            "pools": {"sites": 0, "refills": 0, "consumed": 0, "remaining": 0},
            "workspace": {"num_buffers": 0, "hits": 0, "misses": 0},
            "head": {"draws": 0, "kept_classes": 0, "cluster_activations": 0},
        }

    @staticmethod
    def _zero_optimizer_totals() -> dict[str, int]:
        return {"steps": 0, "sparse_updates": 0, "dense_fallbacks": 0,
                "skipped_updates": 0, "skipped_norm_chunks": 0,
                "dirty_elements": 0, "total_elements": 0}

    @staticmethod
    def _fold_optimizers(totals: dict[str, int],
                         optimizers: list[SGD]) -> None:
        for optimizer in optimizers:
            totals["steps"] += optimizer.step_count
            if isinstance(optimizer, SparseSGD):
                totals["sparse_updates"] += optimizer.sparse_updates
                totals["dense_fallbacks"] += optimizer.dense_fallbacks
                totals["skipped_updates"] += optimizer.skipped_updates
                totals["skipped_norm_chunks"] += optimizer.skipped_norm_chunks
                totals["dirty_elements"] += optimizer._dirty_elements
                totals["total_elements"] += optimizer._total_elements

    @staticmethod
    def _fold(totals: dict[str, Any],
              bound: list[tuple[Any, PatternSchedule]]) -> None:
        """Add the live counters of ``bound`` (model, schedule) pairs to ``totals``."""
        seen_models: set[int] = set()
        for model, schedule in bound:
            totals["steps"] += schedule.iteration
            for site_stats in schedule.pool_stats().values():
                totals["pools"]["sites"] += 1
                totals["pools"]["refills"] += site_stats["refills"]
                totals["pools"]["consumed"] += site_stats["consumed"]
                totals["pools"]["remaining"] += site_stats["remaining"]
            if id(model) in seen_models:
                continue  # one model bound twice: count its workspaces once
            seen_models.add(id(model))
            for module in model.modules():
                ws = getattr(module, "workspace", None)
                if isinstance(ws, CompactWorkspace):
                    totals["workspace"]["num_buffers"] += ws.num_buffers
                    totals["workspace"]["hits"] += ws.hits
                    totals["workspace"]["misses"] += ws.misses
                counters = getattr(module, "head_counters", None)
                if callable(counters):
                    head = counters()
                    totals["head"]["draws"] += head.get("draws", 0)
                    totals["head"]["kept_classes"] += head.get("kept_classes", 0)
                    totals["head"]["cluster_activations"] += head.get(
                        "cluster_activations", 0)

    def _archive_finished_runs(self) -> None:
        """Fold the previous binds' counters and release their models.

        Called at the top of every :meth:`bind`: drivers run their training
        runs sequentially, so anything bound before a new bind is finished
        (its trainer has read its per-run :meth:`stats` already) and only its
        aggregate counters need to survive.
        """
        self._fold(self._archived, self._bound)
        self._bound = []
        self._bind_call_baselines = []
        # The previous runs' sites and optimizers are done: fold the
        # optimizer counters (releasing the parameter references), drop the
        # sites' context-cache observers and make sure no stale activation
        # window leaks into the next run.
        self._fold_optimizers(self._archived_optim, self._optimizers)
        self._optimizers = []
        self.dirty_tracker.clear_observers()
        self.dirty_tracker.clear()
        _dirty.deactivate(self.dirty_tracker)

    def stats(self, model=None) -> dict[str, Any]:
        """Engine counters: runtime-wide, or restricted to one bound model.

        Without ``model`` the pool/workspace/step counters (and the
        ``backend_calls`` totals) aggregate over every run of this runtime
        (the table-level record a driver stamps on its
        :class:`ExperimentTable`).  With ``model`` they cover only that
        model's schedule(s) and workspaces, and ``backend_calls`` is the
        delta since that model's bind — the per-run record a trainer
        attaches to its :class:`TrainingResult`; read it before the runtime's
        next ``bind``, which archives earlier runs and releases their models.
        The tile-plan / pattern cache counters are process-global caches
        reported as deltas since this runtime was created in either case.
        """
        config = self.config
        plan = tile_plan_cache_info()
        pattern = pattern_cache_info()
        backend_calls = dict(self.backend.calls)
        if model is None:
            totals = {"steps": self._archived["steps"],
                      "pools": dict(self._archived["pools"]),
                      "workspace": dict(self._archived["workspace"]),
                      "head": dict(self._archived["head"])}
            self._fold(totals, self._bound)
        else:
            totals = self._zero_totals()
            self._fold(totals, [(m, s) for m, s in self._bound if m is model])
            # Per-run record: report the backend calls since this model's
            # bind, not the runtime-cumulative totals (runs are sequential,
            # so the delta is exactly this run's work).
            baseline = next((calls for m, calls in self._bind_call_baselines
                             if m is model), {})
            backend_calls = {op: count - baseline.get(op, 0)
                             for op, count in backend_calls.items()
                             if count - baseline.get(op, 0)}
        steps = totals["steps"]
        pools = totals["pools"]
        workspace = totals["workspace"]
        # Optimizer counters are runtime-wide (optimizers are built from
        # parameter lists, not bound models, so there is no per-model split).
        optim = dict(self._archived_optim)
        self._fold_optimizers(optim, self._optimizers)
        dirty_elements = optim.pop("dirty_elements")
        total_elements = optim.pop("total_elements")
        return {
            "mode": config.mode,
            "dtype": config.dtype,
            "backend": config.backend,
            "recurrent": config.recurrent,
            "loss_head": {"kind": config.loss_head,
                          "rate": config.loss_head_rate,
                          "shortlist": config.head_shortlist,
                          "clusters": config.head_clusters,
                          **totals["head"]},
            "optimizer": {"kind": config.optimizer,
                          **optim,
                          "dirty_fraction": (dirty_elements / total_elements
                                             if total_elements else 0.0),
                          "tracker": self.dirty_tracker.stats()},
            "backend_calls": backend_calls,
            "seed": config.seed,
            "shards": config.shards,
            "runs": self.runs,
            "steps": steps,
            "tile_plan_cache": {
                "hits": plan.hits - self._plan_baseline.hits,
                "misses": plan.misses - self._plan_baseline.misses,
                "currsize": plan.currsize,
            },
            "pattern_cache": {
                kind: {
                    "hits": info.hits - self._pattern_baseline[kind].hits,
                    "misses": info.misses - self._pattern_baseline[kind].misses,
                    "currsize": info.currsize,
                }
                for kind, info in pattern.items()
            },
            "pools": pools,
            "workspace": workspace,
            "serving": self._serving_totals(),
        }

    def __repr__(self) -> str:
        return f"EngineRuntime({self.config.describe()}, runs={self.runs})"
