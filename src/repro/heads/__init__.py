"""repro.heads — compact loss heads (sampled and adaptive softmax).

The loss-head subsystem applies the pattern-site treatment to the output end
of a large-vocabulary model: a :class:`LossHead` turns hidden features into a
scalar training loss, and :class:`~repro.execution.ExecutionConfig.loss_head`
selects which implementation a run binds —

* ``"dense"`` → :class:`DenseSoftmaxHead`: the exact dense projection + full
  softmax cross-entropy (the pre-subsystem behaviour, refactored behind the
  head interface);
* ``"sampled"`` → :class:`CompactSoftmaxHead`: the vocabulary pruned by a
  pooled :class:`~repro.dropout.patterns.RowDropoutPattern` each iteration
  (targets always kept), executed as a compact gather-GEMM with an
  importance-weighted sampled softmax — see :mod:`repro.heads.softmax`;
* ``"adaptive"`` → :class:`AdaptiveSoftmaxHead`: two-level class
  factorization — an exact dense shortlist over the most frequent classes
  plus frequency-banded tail clusters, each expanded only when it appears in
  the batch targets — see :mod:`repro.heads.adaptive`.

Exact dense evaluation (perplexity reporting) is preserved under every
head: :meth:`LossHead.logits` never samples or factorizes.
"""

from repro.heads.adaptive import (
    AdaptiveSoftmaxHead,
    cluster_boundaries,
    default_shortlist,
)
from repro.heads.base import DenseSoftmaxHead, LossHead
from repro.heads.softmax import (
    CompactSoftmaxHead,
    sampled_class_set,
    sampled_softmax_loss,
)

#: Loss-head selectors understood by ``ExecutionConfig.loss_head``.
LOSS_HEAD_KINDS: tuple[str, ...] = ("dense", "sampled", "adaptive")


def build_loss_head(kind: str, vocab_size: int | None = None, *,
                    rate: float = 0.5, max_period: int | None = None,
                    rng=None, shortlist: int = 0,
                    clusters: int = 4) -> LossHead:
    """Instantiate a loss head by registry name.

    ``vocab_size`` is required by both compact heads; ``rate`` /
    ``max_period`` / ``rng`` are only consumed by the sampled head and
    ``shortlist`` / ``clusters`` only by the adaptive one (``shortlist=0``
    selects :func:`~repro.heads.adaptive.default_shortlist`).  The dense
    head is stateless.
    """
    if kind == "dense":
        return DenseSoftmaxHead()
    if kind == "sampled":
        if vocab_size is None:
            raise ValueError("the sampled loss head needs a vocab_size")
        return CompactSoftmaxHead(vocab_size, drop_rate=rate,
                                  max_period=max_period, rng=rng)
    if kind == "adaptive":
        if vocab_size is None:
            raise ValueError("the adaptive loss head needs a vocab_size")
        return AdaptiveSoftmaxHead(vocab_size, shortlist=shortlist,
                                   clusters=clusters)
    raise ValueError(
        f"unknown loss head {kind!r}; available: {LOSS_HEAD_KINDS}")


__all__ = [
    "LOSS_HEAD_KINDS",
    "LossHead",
    "DenseSoftmaxHead",
    "CompactSoftmaxHead",
    "AdaptiveSoftmaxHead",
    "build_loss_head",
    "cluster_boundaries",
    "default_shortlist",
    "sampled_class_set",
    "sampled_softmax_loss",
]
