"""Adaptive softmax: two-level class factorization for very large vocabularies.

The sampled head (:mod:`repro.heads.softmax`) prunes the class set uniformly;
at the 50k-500k vocab scale that still leaves the pruned set Zipf-blind — the
handful of classes that absorb most of the probability mass pay the same
sampling treatment as the rare tail.  The adaptive head exploits the skew
directly, following Grave et al. ("Efficient softmax approximation for
GPUs"): the ``shortlist`` most frequent classes get an exact dense
projection every step, and the tail is partitioned into frequency-banded
*clusters*, each represented inside the shortlist softmax by a single
cluster logit and expanded into a within-cluster softmax only when one of
its classes actually appears in the batch targets.

Factorization
-------------

Class ids are assumed frequency-ordered (id 0 most frequent) — true by
construction for the synthetic Zipfian corpus, and the standard adaptive-
softmax convention for real corpora (vocabularies are sorted by count).
The tail ``[shortlist, vocab)`` is split into geometrically sized bands
(small bands for the frequent tail, large for the rare tail) and the
probability of a target factorizes over the two levels:

* a shortlist target ``t < shortlist``:  ``P(t) = P_head(t)``
* a tail target in cluster ``c``:        ``P(t) = P_head(c) * P_c(t)``

``P_head`` is a softmax over ``shortlist + num_clusters`` logits and
``P_c`` a softmax over cluster ``c``'s band.  Both levels run through
:func:`~repro.dropout.compact_ops.head_compact_linear`, so only the touched
weight rows are gathered and only they receive gradient — classes in
clusters absent from the batch cost neither flops nor gradient traffic.

Cluster logits are *pilot rows*: cluster ``c``'s head logit is the exact
logit of its most frequent class (the first row of the band).  The head owns
no parameters (the :class:`~repro.heads.base.LossHead` contract — the
projection stays on the model, visible to the optimizer, the distributed
all-reduce and the checkpoints), so reusing a weight row as the cluster
representative keeps the factorization parameter-free while remaining fully
trainable: the pilot row receives gradient from both levels.

The loss is the batch-mean negative log-likelihood::

    CE_head(all examples)  +  sum_c (n_c / n) * CE_c(examples in cluster c)

which is exactly the mean of the per-example factorized NLLs.

Exactness is never sacrificed where it matters:
:meth:`~repro.heads.base.LossHead.logits` / ``dense_loss`` stay the exact
dense projection (evaluation, perplexity and the serving engine are never
approximated), and eval mode or ``"masked"`` execution fall back to the
dense loss exactly like the sampled head.

Unlike the sampled head, the adaptive head draws no randomness — given the
targets, the computed class set is deterministic — so it is *not* a pattern
site: nothing to pool, reseed or replay, and bit-identical histories across
backends come for free.
"""

from __future__ import annotations

import numpy as np

from repro.dropout.compact_ops import head_compact_linear
from repro.heads.base import LossHead
from repro.tensor import Tensor, functional as F

#: Vocabulary size beyond which the head stops drawing its gradient scatter
#: buffers from the workspace ring.  Ring reuse re-zeroes the full
#: ``(vocab, hidden)`` buffer with a dense ``fill(0)`` and forces a defensive
#: copy when the backward pass adopts it as the leaf gradient; a fresh
#: ``np.zeros`` is a lazy calloc (untouched pages cost nothing — and a
#: compact scatter touches only the kept rows) and is adopted without the
#: copy.  Below the cutoff the buffers are small enough that reuse wins.
WORKSPACE_VOCAB_CUTOFF = 16384


def cluster_boundaries(vocab_size: int, shortlist: int,
                       clusters: int) -> np.ndarray:
    """Geometric band edges over the tail ``[shortlist, vocab_size)``.

    Returns a strictly increasing integer array starting at ``shortlist``
    and ending at ``vocab_size``; band ``c`` is ``[edges[c], edges[c+1])``.
    Bands grow geometrically so the frequent tail is split finely and the
    rare tail coarsely — under a Zipfian unigram this roughly balances the
    probability mass per cluster.  Tails too short for the requested cluster
    count simply produce fewer bands (every band holds at least one class).
    """
    if not 0 < shortlist < vocab_size:
        raise ValueError(
            f"shortlist must be in (0, vocab_size), got {shortlist} "
            f"for vocab_size={vocab_size}")
    if clusters < 1:
        raise ValueError(f"clusters must be >= 1, got {clusters}")
    ratio = vocab_size / shortlist
    raw = shortlist * ratio ** (np.arange(clusters + 1) / clusters)
    edges = np.unique(np.round(raw).astype(np.int64))
    edges = np.clip(edges, shortlist, vocab_size)
    return np.unique(edges)


def default_shortlist(vocab_size: int) -> int:
    """The auto shortlist size (``head_shortlist=0``): a quarter of the
    vocabulary, capped at 4096 — under a Zipf exponent near 1 the cap still
    covers the bulk of the probability mass at any realistic vocab."""
    return max(1, min(vocab_size // 4, 4096))


class AdaptiveSoftmaxHead(LossHead):
    """Two-level adaptive-softmax loss head (``loss_head="adaptive"``).

    ``shortlist=0`` selects :func:`default_shortlist`.  The head holds no
    parameters and no RNG — it is configured (``execution_mode`` /
    ``use_workspace`` / ``backend``) by :meth:`~repro.execution.EngineRuntime.bind`
    like every head, but it is not a pattern site: the computed class set is
    a deterministic function of the batch targets.
    """

    kind = "adaptive"

    def __init__(self, vocab_size: int, shortlist: int = 0, clusters: int = 4):
        super().__init__()
        if vocab_size < 2:
            raise ValueError(f"vocab_size must be >= 2, got {vocab_size}")
        if shortlist < 0:
            raise ValueError(f"shortlist must be >= 0, got {shortlist}")
        if shortlist >= vocab_size:
            raise ValueError(
                f"shortlist must be < vocab_size ({vocab_size}), got "
                f"{shortlist} (a shortlist covering the whole vocabulary is "
                f"the dense head)")
        if clusters < 1:
            raise ValueError(f"clusters must be >= 1, got {clusters}")
        self.vocab_size = int(vocab_size)
        self.shortlist = int(shortlist) or default_shortlist(vocab_size)
        self.clusters = int(clusters)
        self.cluster_bounds = cluster_boundaries(self.vocab_size,
                                                 self.shortlist, self.clusters)
        self.num_clusters = len(self.cluster_bounds) - 1
        #: Each cluster's representative (most frequent) class: its exact
        #: logit doubles as the cluster logit in the head softmax.
        self.pilots = self.cluster_bounds[:-1].copy()
        #: The head-level class set: the dense shortlist plus one pilot row
        #: per cluster (sorted and duplicate-free by construction — pilots
        #: start at ``shortlist`` and the bounds are strictly increasing).
        self.head_classes = np.concatenate(
            [np.arange(self.shortlist, dtype=np.int64), self.pilots])
        self._steps = 0
        self._cluster_activations = 0
        self._projected_classes = 0

    # ------------------------------------------------------------------
    # workspace policy
    # ------------------------------------------------------------------
    def _scatter_workspace(self, marker):
        """The workspace ring, except at very large vocab (see
        :data:`WORKSPACE_VOCAB_CUTOFF`)."""
        if self.vocab_size >= WORKSPACE_VOCAB_CUTOFF:
            return None
        return self._step_workspace(marker)

    # ------------------------------------------------------------------
    # the adaptive loss
    # ------------------------------------------------------------------
    def loss(self, features: Tensor, weight: Tensor, bias: Tensor | None,
             targets: np.ndarray,
             input_pattern=None) -> Tensor:
        if not self.training or self.execution_mode == "masked":
            # Eval / conventional-baseline semantics: the exact dense loss.
            return self.dense_loss(features, weight, bias, targets,
                                   input_pattern=input_pattern)
        if weight.shape[0] != self.vocab_size:
            raise ValueError(
                f"head covers {self.vocab_size} classes but the projection "
                f"has {weight.shape[0]} output rows")
        targets = np.asarray(targets).reshape(-1)
        count = len(targets)
        marker = object()  # one workspace installment per loss call

        head_logits = head_compact_linear(
            features, weight, bias, self.head_classes,
            input_pattern=input_pattern,
            workspace=self._scatter_workspace(marker), backend=self.backend)

        # Head-level positions: shortlist targets index themselves, tail
        # targets index their cluster's pilot slot.
        positions = targets.copy()
        tail = targets >= self.shortlist
        tail_indices = np.flatnonzero(tail)
        cluster_of = np.searchsorted(self.cluster_bounds, targets[tail],
                                     side="right") - 1
        positions[tail] = self.shortlist + cluster_of
        loss = F.cross_entropy(head_logits, positions)

        active = np.unique(cluster_of)
        projected = len(self.head_classes)
        for cluster in active:
            lo = int(self.cluster_bounds[cluster])
            hi = int(self.cluster_bounds[cluster + 1])
            if hi - lo == 1:
                # A singleton band: the within-cluster softmax is the
                # constant 1 (zero loss, zero gradient) — nothing to compute.
                continue
            members = tail_indices[cluster_of == cluster]
            cluster_logits = head_compact_linear(
                features[members], weight, bias,
                np.arange(lo, hi, dtype=np.int64),
                input_pattern=input_pattern,
                workspace=self._scatter_workspace(marker),
                backend=self.backend)
            cluster_loss = F.cross_entropy(cluster_logits,
                                           targets[members] - lo)
            # cross_entropy returns the batch mean; weighting each cluster's
            # mean by its share of the batch makes the total the mean of the
            # per-example factorized NLLs.
            loss = loss + cluster_loss * (len(members) / count)

            projected += hi - lo
        self._steps += 1
        self._cluster_activations += int(len(active))
        self._projected_classes += projected
        return loss

    def head_counters(self) -> dict[str, int]:
        """Step / projected-class / cluster-activation totals for
        ``runtime.stats()`` (``kept_classes`` counts every class row whose
        logit was actually computed, head level plus expanded bands)."""
        return {"draws": self._steps,
                "kept_classes": self._projected_classes,
                "cluster_activations": self._cluster_activations}

    def __repr__(self) -> str:
        return (f"AdaptiveSoftmaxHead(vocab_size={self.vocab_size}, "
                f"shortlist={self.shortlist}, "
                f"clusters={self.num_clusters})")
