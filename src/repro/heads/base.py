"""The loss-head abstraction: how a model turns hidden features into a loss.

A large-vocabulary language model spends most of its step in two places the
rest of the engine never touched before this subsystem existed: the
``vocab x hidden`` output projection and the full-vocabulary softmax
cross-entropy that consumes it.  A :class:`LossHead` owns exactly that tail of
the forward pass — *features in, scalar loss out* — so the execution engine
can swap the dense tail for a compact one without the model or the trainer
changing shape.

Two heads ship:

* :class:`DenseSoftmaxHead` — the exact behaviour the LSTM language model and
  :class:`~repro.nn.losses.CrossEntropyLoss` always computed, refactored
  behind the head interface: a dense (or consumer-compacted, when the
  upstream dropout pattern is known) projection followed by full softmax
  cross-entropy.
* :class:`~repro.heads.softmax.CompactSoftmaxHead` — the vocabulary treated
  as a pattern site: each iteration a pooled
  :class:`~repro.dropout.patterns.RowDropoutPattern` prunes the class set,
  the batch targets are always kept, and the loss is an importance-weighted
  sampled softmax over the surviving classes executed as a compact
  gather-GEMM (:func:`~repro.dropout.compact_ops.head_compact_linear`).

Both heads expose :meth:`LossHead.logits` — the *exact dense* projection —
which is what evaluation uses, so perplexity reporting is never approximated
regardless of how the training loss was computed.

Like the pattern layers, a head carries ``execution_mode`` /
``use_workspace`` / ``backend`` slots and a private
:class:`~repro.dropout.engine.CompactWorkspace`, all configured by
:meth:`repro.execution.EngineRuntime.bind`; under ``"masked"`` execution the
compact head falls back to the dense loss (the conventional baseline computes
nothing compactly).
"""

from __future__ import annotations

import numpy as np

from repro.dropout.compact_ops import input_compact_linear
from repro.dropout.engine import CompactWorkspace
from repro.dropout.patterns import RowDropoutPattern
from repro.nn.module import Module
from repro.tensor import Tensor, functional as F


class LossHead(Module):
    """Base class of the loss heads: projection + loss behind one interface.

    The head owns no parameters — the projection ``weight``/``bias`` stay on
    the model (exactly like :class:`~repro.dropout.layers.ApproxRecurrentDropConnect`
    wraps the cell-owned ``weight_h``) — so heads can be swapped per
    :class:`~repro.execution.ExecutionConfig` without touching the optimizer
    state.
    """

    #: Registry name of the head ("dense", "sampled"); set by subclasses.
    kind: str = "abstract"

    def __init__(self):
        super().__init__()
        self.execution_mode = "masked"
        self.use_workspace = False
        # Named `workspace`/`backend` so EngineRuntime.bind configures the
        # slot depth and execution backend like any pattern layer's, and
        # stats() counts the workspace buffers.
        self.workspace = CompactWorkspace()
        self.backend = None
        self._ws_marker = None
        self._ws_uses = 0

    # ------------------------------------------------------------------
    # workspace ring bookkeeping (shared buffer-reuse contract)
    # ------------------------------------------------------------------
    def _step_workspace(self, marker) -> CompactWorkspace | None:
        """The workspace, unless disabled or this pattern installment already
        used up the buffer ring (more than ``slots`` calls inside one graph
        fall back to fresh allocations; see :mod:`repro.dropout.engine`)."""
        if not self.use_workspace:
            return None
        if marker is not self._ws_marker:
            self._ws_marker = marker
            self._ws_uses = 0
        self._ws_uses += 1
        if self._ws_uses > self.workspace.slots:
            return None
        return self.workspace

    # ------------------------------------------------------------------
    # the exact dense path (shared: evaluation always goes through this)
    # ------------------------------------------------------------------
    def logits(self, features: Tensor, weight: Tensor, bias: Tensor | None,
               input_pattern: RowDropoutPattern | None = None) -> Tensor:
        """Full-vocabulary logits — the *exact* projection.

        ``input_pattern`` (the row pattern an upstream dropout zeroed the
        features with, e.g. the LSTM's ``output_dropout``) lets the GEMM skip
        the zeroed input columns — the consumer-GEMM compaction of
        Fig. 3(a) step 2 — which is numerically identical to the dense
        product.  Callers vet the pattern with
        :func:`~repro.nn.recurrent.active_input_pattern`; passing ``None``
        runs the plain dense projection (always the case in eval mode).
        """
        if input_pattern is not None and self.execution_mode != "masked":
            return input_compact_linear(
                features, weight, bias, input_pattern,
                workspace=self._step_workspace(input_pattern),
                backend=self.backend)
        return F.linear(features, weight, bias)

    def dense_loss(self, features: Tensor, weight: Tensor, bias: Tensor | None,
                   targets: np.ndarray,
                   input_pattern: RowDropoutPattern | None = None) -> Tensor:
        """Exact full-softmax cross-entropy (the dense reference path)."""
        return F.cross_entropy(self.logits(features, weight, bias,
                                           input_pattern=input_pattern),
                               np.asarray(targets))

    # ------------------------------------------------------------------
    # the head interface
    # ------------------------------------------------------------------
    def loss(self, features: Tensor, weight: Tensor, bias: Tensor | None,
             targets: np.ndarray,
             input_pattern: RowDropoutPattern | None = None) -> Tensor:
        """Scalar training loss for ``features`` against integer ``targets``."""
        raise NotImplementedError

    def head_counters(self) -> dict[str, int]:
        """Pattern-draw / kept-class counters for ``runtime.stats()``."""
        return {"draws": 0, "kept_classes": 0}


class DenseSoftmaxHead(LossHead):
    """The exact dense loss head: full projection + full cross-entropy.

    This is the pre-subsystem behaviour of the LSTM language model (including
    its consumer-GEMM compaction against the output-dropout pattern),
    refactored out of the model/:class:`~repro.nn.losses.CrossEntropyLoss`
    pair so that dense and compact heads are selected the same way.
    """

    kind = "dense"

    def loss(self, features: Tensor, weight: Tensor, bias: Tensor | None,
             targets: np.ndarray,
             input_pattern: RowDropoutPattern | None = None) -> Tensor:
        return self.dense_loss(features, weight, bias, targets,
                               input_pattern=input_pattern)

    def __repr__(self) -> str:
        return "DenseSoftmaxHead()"
