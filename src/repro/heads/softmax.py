"""Sampled / class-pruned softmax: the vocabulary as a pattern site.

The compact loss head applies the paper's pattern-site treatment to the one
GEMM the engine still ran dense after the recurrent path was compacted: the
``vocab x hidden`` output projection plus the full-vocabulary cross-entropy
behind it.  Each training iteration one
:class:`~repro.dropout.patterns.RowDropoutPattern` over the *classes* is
installed (pooled, seeded and replayed exactly like every other site's
pattern stream), the batch's target classes are always added to the kept
set, and the loss is computed over the surviving classes only:

* the projection runs as a compact gather-GEMM
  (:func:`~repro.dropout.compact_ops.head_compact_linear`) — only the kept
  classes' weight rows are touched, and the logits stay compact;
* the softmax normaliser is estimated by importance weighting: a pattern
  with period ``dp`` keeps each non-target class with probability exactly
  ``1/dp`` (the bias phase is uniform), so scaling the kept non-target
  exponentials by ``dp`` is an unbiased estimator of the full normaliser's
  non-target sum, while target classes contribute exactly (they are kept
  with probability 1).

Folding the weights into the logits makes the whole loss one weighted
cross-entropy: with ``w_j = dp`` for kept non-target classes and ``w_j = 1``
for targets,

    -logit_t + log Σ_j w_j·exp(logit_j)  =  CE(logits + log w, t)    (w_t = 1)

so the sampled loss is the ordinary :func:`~repro.tensor.functional.cross_entropy`
of the weight-shifted compact logits.  When the drawn pattern keeps
everything (``dp == 1``) the weights vanish and the loss is *exactly* the
dense cross-entropy; for larger periods it is a consistent estimate whose
error shrinks with the vocabulary size (regression-tested against the dense
head).  Exact dense evaluation is preserved either way —
:meth:`~repro.heads.base.LossHead.logits` never samples.
"""

from __future__ import annotations

import numpy as np

from repro.dropout.compact_ops import head_compact_linear
from repro.dropout.engine import CompactWorkspace
from repro.dropout.layers import default_max_period
from repro.dropout.patterns import RowDropoutPattern
from repro.dropout.sampler import PatternSampler
from repro.heads.base import LossHead
from repro.tensor import Tensor, functional as F


def sampled_class_set(pattern: RowDropoutPattern, targets: np.ndarray,
                      dtype=np.float64,
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The kept class set of one sampled-softmax step.

    Returns ``(classes, log_weights, positions)``: the sorted union of the
    pattern's kept classes and the batch's target classes, the per-class
    log importance weights (``log dp`` for kept non-target classes, ``0``
    for targets) and each example's target position inside ``classes``.
    """
    targets = np.asarray(targets)
    kept = np.asarray(pattern.kept_indices)
    unique_targets = np.unique(targets)
    extra = np.setdiff1d(unique_targets, kept, assume_unique=False)
    classes = np.union1d(kept, extra) if len(extra) else kept
    log_weights = np.zeros(len(classes), dtype=dtype)
    if pattern.dp > 1:
        log_weights.fill(np.log(pattern.dp))
        log_weights[np.searchsorted(classes, unique_targets)] = 0.0
    positions = np.searchsorted(classes, targets)
    return classes, log_weights, positions


def _weighted_class_loss(features: Tensor, weight: Tensor, bias: Tensor | None,
                         classes: np.ndarray, log_weights: np.ndarray,
                         positions: np.ndarray,
                         input_pattern: RowDropoutPattern | None,
                         workspace: CompactWorkspace | None,
                         backend) -> Tensor:
    """The weighted cross-entropy over one prepared class set (the single
    definition :func:`sampled_softmax_loss` and :class:`CompactSoftmaxHead`
    share, so the estimator cannot diverge between the two entry points)."""
    logits = head_compact_linear(features, weight, bias, classes,
                                 input_pattern=input_pattern,
                                 workspace=workspace, backend=backend)
    if np.any(log_weights):
        logits = logits + Tensor(log_weights[None, :],
                                 dtype=log_weights.dtype)
    return F.cross_entropy(logits, positions)


def sampled_softmax_loss(features: Tensor, weight: Tensor, bias: Tensor | None,
                         targets: np.ndarray, pattern: RowDropoutPattern,
                         input_pattern: RowDropoutPattern | None = None,
                         workspace: CompactWorkspace | None = None,
                         backend=None) -> Tensor:
    """Importance-weighted sampled softmax cross-entropy over a class pattern.

    The functional form of :meth:`CompactSoftmaxHead.loss` (used by the
    benchmark harness and the property tests): ``pattern`` prunes the
    vocabulary, ``targets`` are always kept, and the loss is the weighted
    cross-entropy described in the module docstring.  With a ``dp == 1``
    pattern this equals the exact dense cross-entropy.
    """
    targets = np.asarray(targets)
    if pattern.num_units != weight.shape[0]:
        raise ValueError(
            f"pattern covers {pattern.num_units} classes but the projection "
            f"has {weight.shape[0]} output rows")
    classes, log_weights, positions = sampled_class_set(
        pattern, targets, dtype=features.data.dtype)
    return _weighted_class_loss(features, weight, bias, classes, log_weights,
                                positions, input_pattern, workspace, backend)


class CompactSoftmaxHead(LossHead):
    """Sampled-softmax loss head: the class dimension as a pooled pattern site.

    The head exposes the same pool protocol as the pattern layers
    (``draw_pool`` / ``set_pattern`` / ``drop_rate``), so
    :meth:`~repro.dropout.sampler.PatternSchedule.from_model` pools it,
    :meth:`~repro.execution.EngineRuntime.bind` reseeds it from the pool-wide
    :class:`~numpy.random.SeedSequence`, and the trainers drive it like every
    other site — one class pattern per iteration, shared across the batch.

    ``drop_rate`` is the target fraction of vocabulary classes pruned per
    step (the ``ExecutionConfig.loss_head_rate`` knob); the searched period
    distribution realises it in expectation, exactly as for the activation
    patterns.  Training-loss calls fall back to the exact dense path in eval
    mode, under ``"masked"`` execution (the conventional baseline) and for a
    zero rate.
    """

    kind = "sampled"

    def __init__(self, vocab_size: int, drop_rate: float = 0.5,
                 max_period: int | None = None,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if vocab_size <= 0:
            raise ValueError("vocab_size must be positive")
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError(f"drop_rate must be in [0, 1), got {drop_rate}")
        self.vocab_size = int(vocab_size)
        self.target_rate = float(drop_rate)
        self.rng = rng or np.random.default_rng()
        self.max_period = max_period or default_max_period(self.target_rate,
                                                           vocab_size)
        self.sampler = PatternSampler(self.target_rate, self.max_period,
                                      rng=self.rng)
        self.pattern: RowDropoutPattern | None = None
        self._draws = 0
        self._kept_classes = 0

    @property
    def drop_rate(self) -> float:
        """Target class-drop rate (the pool protocol's rate attribute)."""
        return self.target_rate

    # ------------------------------------------------------------------
    # pattern lifecycle (pool protocol, like every other pattern site)
    # ------------------------------------------------------------------
    def resample(self) -> RowDropoutPattern | None:
        """Draw a fresh class pattern for the next iteration."""
        if self.target_rate == 0.0:
            self.pattern = None
            return None
        self.pattern = self.sampler.sample_row_pattern(self.vocab_size)
        return self.pattern

    def draw_pool(self, count: int) -> list[RowDropoutPattern]:
        """Vectorized pool draw for :class:`~repro.dropout.sampler.PatternSchedule`."""
        return self.sampler.sample_row_patterns(self.vocab_size, count)

    def set_pattern(self, pattern: RowDropoutPattern) -> None:
        if pattern.num_units != self.vocab_size:
            raise ValueError(
                f"pattern covers {pattern.num_units} classes, head has "
                f"{self.vocab_size}")
        self.pattern = pattern

    # ------------------------------------------------------------------
    # the sampled loss
    # ------------------------------------------------------------------
    def loss(self, features: Tensor, weight: Tensor, bias: Tensor | None,
             targets: np.ndarray,
             input_pattern: RowDropoutPattern | None = None) -> Tensor:
        if (not self.training or self.target_rate == 0.0
                or self.execution_mode == "masked"):
            # Eval / conventional-baseline semantics: nothing is sampled.
            return self.dense_loss(features, weight, bias, targets,
                                   input_pattern=input_pattern)
        if self.pattern is None:
            self.resample()
        if self.pattern.num_units != weight.shape[0]:
            raise ValueError(
                f"pattern covers {self.pattern.num_units} classes but the "
                f"projection has {weight.shape[0]} output rows")
        classes, log_weights, positions = sampled_class_set(
            self.pattern, np.asarray(targets), dtype=features.data.dtype)
        self._draws += 1
        self._kept_classes += len(classes)
        return _weighted_class_loss(features, weight, bias, classes,
                                    log_weights, positions, input_pattern,
                                    self._step_workspace(self.pattern),
                                    self.backend)

    def head_counters(self) -> dict[str, int]:
        """Draw / kept-class totals stamped into ``runtime.stats()``."""
        return {"draws": self._draws, "kept_classes": self._kept_classes}

    def __repr__(self) -> str:
        return (f"CompactSoftmaxHead(vocab_size={self.vocab_size}, "
                f"drop_rate={self.target_rate}, max_period={self.max_period})")
