"""Wall-clock benchmark harness for the compact pattern-execution engine.

``python -m repro.bench`` times the training hot path (forward + backward of
one affine dropout layer) under three execution modes and writes the results
to ``BENCH_compact_engine.json``:

* ``masked`` — the conventional baseline: dense GEMM followed by an
  elementwise 0/1 mask (Fig. 1(a) of the paper);
* ``compact`` — the compact ops with per-step scalar pattern sampling and no
  buffer reuse (the seed repo's execution model);
* ``pooled`` — the vectorized pattern-pool engine: batched pattern draws,
  interned patterns/plans and preallocated scatter buffers.

The ``lstm_rec`` family times one recurrent projection (gate-aligned
structured DropConnect on an LSTM ``weight_h``) under the same protocol, and
the ``e2e`` family times *whole trainer steps* (MLP classifier and LSTM
language model) built through :class:`repro.execution.ExecutionConfig`, with
``masked`` being the conventional-dropout baseline model and
``--recurrent tiled`` routing the LSTM's recurrent GEMMs through the pattern
machinery.

See :mod:`repro.bench.harness` for the configuration knobs and
:mod:`repro.bench.delta` for the CI regression gate
(``python -m repro.bench.delta``).
"""

from repro.bench.delta import compare_reports, load_report
from repro.bench.harness import (
    BenchmarkConfig,
    BenchmarkResult,
    run_benchmark,
    write_report,
)

__all__ = [
    "BenchmarkConfig",
    "BenchmarkResult",
    "compare_reports",
    "load_report",
    "run_benchmark",
    "write_report",
]
