"""Timed comparison of mask-based dropout vs compact pattern execution.

Each benchmark case trains nothing — it repeatedly runs the *hot path* of one
training step (pattern draw, forward, scalar loss, backward) for a single
affine layer, which is exactly the code the compact engine accelerates, and
measures wall-clock time per step.  Three modes are timed per case:

``masked``
    Dense GEMM + elementwise mask via the autodiff ops — what conventional
    dropout costs (the paper's Fig. 1(a) baseline).
``compact``
    The compact ops called the way the seed repo called them: a fresh pattern
    object per step (kept indices recomputed), no workspace reuse.
``pooled``
    The full vectorized engine: the pattern stream pre-drawn in one batched
    call, interned pattern objects and compiled tile plans, and a
    :class:`~repro.dropout.engine.CompactWorkspace` reusing the scatter
    buffers across steps.

All three modes replay the *same* pre-drawn ``(dp, bias)`` sequence, so the
comparison is not confounded by one mode drawing cheaper patterns.

The ``lstm_rec`` family times one *recurrent* projection (``h @ weight_h.T``
with ``weight_h`` the 4-gate LSTM stack) under gate-aligned structured
DropConnect — the recurrent pattern site added by the recurrent-path PR —
with the same three-mode protocol as ``row``/``tile``.

The ``head`` family times one *loss-head* step (vocabulary projection +
cross-entropy, forward and backward) under the class-pruned sampled softmax
of :mod:`repro.heads`: ``masked`` runs the dense projection plus
full-vocabulary cross-entropy, ``compact`` the sampled loss with fresh
(uninterned) class patterns, ``pooled`` the same loss with interned patterns
and workspace buffer reuse.  ``width`` is the vocabulary size.

The ``e2e`` family widens the measurement from one layer to *whole trainer
steps*: it times ``ClassifierTrainer.train_step`` (MLP) and
``LanguageModelTrainer.train_step`` (LSTM) with the model and trainer built
through the same :class:`~repro.execution.ExecutionConfig` the experiment
drivers use.  There, ``masked`` is the conventional-dropout baseline (the
``original`` strategy: dense GEMMs + i.i.d. Bernoulli masks), while
``compact`` and ``pooled`` run the pattern strategy under
``ExecutionConfig(mode="compact")`` / ``ExecutionConfig(mode="pooled")``;
``BenchmarkConfig.recurrent`` (default ``"tiled"``) additionally routes the
LSTM case's recurrent projections through the pattern machinery, and
``BenchmarkConfig.loss_head`` (default ``"sampled"``, ``--loss-head`` on the
CLI) selects the loss head the LSTM case's compact/pooled modes train with —
the ``masked`` baseline always runs the dense head.

Backends: ``BenchmarkConfig.backend`` selects the
:class:`~repro.backends.ExecutionBackend` the compact/pooled modes execute
through (``--backend fused`` on the CLI), so every family compares the
conventional ``masked`` baseline against the chosen backend — run the
harness once per backend to compare ``numpy`` vs ``fused`` per mode.

The ``e2e_dist`` family measures *data-parallel scaling*: it times one MLP
trainer step ``single`` (in-process, ``shards=1``) against ``sharded`` (the
:class:`~repro.distributed.DistributedTrainer` coordinator driving
``BenchmarkConfig.dist_shards`` worker processes through the shared-memory
all-reduce).  Both modes run the same pooled engine configuration, so
``speedup_pooled`` reports pure multi-process scaling efficiency; the
entry additionally records ``shards`` and ``cpu_count`` so the delta gate
can skip the absolute scaling bar on machines with fewer cores than
workers (where a >1x speedup is physically impossible).

The ``serve`` family measures the *serving path*: for an MLP classifier and
an LSTM language model it drives ``serve_requests`` single requests through
(a) a per-request dense baseline — one eval-mode ``forward()`` per request,
the way inference worked before :mod:`repro.serving` — and (b) the frozen
:class:`~repro.serving.engine.InferenceEngine` behind a
:class:`~repro.serving.batcher.MicroBatcher`, both under the same
closed-loop load (``serve_concurrency`` in-flight requests).  ``mode_ms``
records the mean per-request latency of each mode (``masked`` = per-request
baseline, ``pooled`` = micro-batched engine, keeping ``speedup_pooled``
meaningful), and the entry's ``serving`` dict carries the full
p50/p99/throughput reports of both modes.  Entries are stamped
``cpu_gated`` when the box has a single core — the baseline's concurrent
request threads then serialise, so the comparison measures the machine.

The ``e2e_elastic`` family measures the *elastic recovery* machinery: its
``step`` mode times one coordinator step of the same distributed MLP trainer
(dirty-region gradient compression active under the sparse optimizer), and
its ``recover`` mode times one full recovery cycle — tear the cluster down,
respawn every worker at the current step, deterministically fast-forward,
and replay the in-flight step.  Recovery is dominated by process spawn, so
it gets its own best-of-``_RECOVER_CYCLES`` protocol instead of being
amortised over ``steps`` iterations.

Sharding: ``BenchmarkConfig.shards`` splits the (family, width, rate) cases
across that many worker *processes*, each pinned to its own BLAS thread
domain (``OMP_NUM_THREADS`` & friends set to ``cpu_count // shards`` before
numpy is imported in the worker), so concurrently timed cases do not fight
over the same BLAS pool.  Every case still times all of its modes inside one
worker, which keeps the per-case mode comparison fair.

Results are written as ``BENCH_compact_engine.json`` so successive PRs can
track the perf trajectory (see :mod:`repro.bench.delta` for the regression
gate).
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field

import numpy as np

from repro.backends import available_backends, create_backend
from repro.dropout.compact_ops import row_compact_linear, tile_compact_linear
from repro.dropout.engine import CompactWorkspace, compile_tile_plan
from repro.dropout.patterns import RowDropoutPattern, TileDropoutPattern
from repro.dropout.sampler import PatternSampler
from repro.tensor import Tensor, functional as F


@dataclass
class BenchmarkConfig:
    """Knobs of the benchmark run.

    ``steps`` hot-path iterations are timed per repeat; ``repeats`` repeats are
    run per (family, width, rate, mode) and the *best* repeat is reported,
    which is the standard way to suppress scheduler noise in wall-clock
    microbenchmarks.  ``warmup`` untimed steps precede every timed repeat so
    one-time costs (distribution search, pattern interning, plan compilation,
    BLAS thread spin-up) are excluded from the per-step figure — they are
    amortised over a whole training run, which is the scenario being modelled.
    """

    widths: tuple[int, ...] = (512, 1024, 2048)
    rates: tuple[float, ...] = (0.5, 0.7)
    batch: int = 128
    in_features: int | None = None  # defaults to the layer width (square layer)
    steps: int = 12
    #: Requests the ``serve`` family's MLP case drives through each mode (the
    #: heavier LSTM case runs a tenth of this, floored at 200).
    serve_requests: int = 10000
    #: Concurrent in-flight requests of the ``serve`` family's closed-loop
    #: driver (and the micro-batcher's batch bound, so a full wave of
    #: in-flight requests executes as exactly one pooled step).
    serve_concurrency: int = 8
    # Best-of estimation needs enough interleaved repeats that every mode
    # catches a quiet window on noisy single-core machines; 3 was too few.
    repeats: int = 6
    warmup: int = 2
    tile: int = 32
    max_period: int = 16
    seed: int = 0
    families: tuple[str, ...] = ("row", "tile", "e2e", "head", "serve",
                                 "e2e_dist", "e2e_elastic")
    #: Floating dtype of the e2e trainer-step cases ("float64" or "float32").
    e2e_dtype: str = "float64"
    #: Execution backend of the compact/pooled modes (registry name).
    backend: str = "numpy"
    #: Recurrent-projection execution of the e2e LSTM case's compact/pooled
    #: modes ("dense" keeps the pre-PR behaviour, "tiled" runs the recurrent
    #: DropConnect site).  The ``lstm_rec`` family always times the tiled op.
    recurrent: str = "tiled"
    #: Loss-head execution of the e2e LSTM case's compact/pooled modes
    #: ("dense" = exact full softmax, "sampled" = the class-pruned head).
    #: The ``head`` family always times the sampled loss.
    loss_head: str = "sampled"
    #: Vocabulary sizes of the ``head_vocab`` cases (dense vs sampled vs
    #: adaptive loss-head step at large vocab; sprouted by the ``head``
    #: family, or selected directly as the ``head_vocab`` family).  Empty
    #: disables the axis.
    head_vocab: tuple[int, ...] = (8192, 50000)
    #: Optimizer execution of the e2e cases' compact/pooled modes ("dense" =
    #: the plain SGD update, "sparse" = the dirty-region SparseSGD).  The
    #: ``masked`` baseline always runs the dense update.
    optimizer: str = "sparse"
    #: Worker processes the cases are sharded across (1 = run in-process).
    shards: int = 1
    #: Shard count of the ``e2e_dist`` data-parallel scaling case (the
    #: worker processes of *one* distributed trainer, not case sharding).
    dist_shards: int = 2
    output: str = "BENCH_compact_engine.json"

    #: Valid benchmark family names (``lstm_rec`` = one recurrent projection,
    #: ``head`` = one loss-head step: vocab projection + cross-entropy,
    #: ``serve`` = per-request dense inference vs the micro-batched frozen
    #: engine, ``e2e_dist`` = data-parallel scaling of one MLP trainer step,
    #: ``e2e_elastic`` = distributed step + full worker-recovery cycle).
    FAMILIES = ("row", "tile", "lstm_rec", "e2e", "head", "head_vocab",
                "serve", "e2e_dist", "e2e_elastic")

    def __post_init__(self):
        if self.batch <= 0 or self.steps <= 0 or self.repeats <= 0:
            raise ValueError("batch, steps and repeats must be positive")
        if self.serve_requests < 1 or self.serve_concurrency < 1:
            raise ValueError(
                "serve_requests and serve_concurrency must be positive")
        if self.warmup < 0:
            raise ValueError("warmup must be >= 0")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.dist_shards < 2:
            raise ValueError("dist_shards must be >= 2 (the e2e_dist case "
                             "compares single-process against that many "
                             "data-parallel workers)")
        if self.backend not in available_backends():
            raise ValueError(
                f"unknown execution backend {self.backend!r}; "
                f"available: {available_backends()}")
        from repro.execution import (
            LOSS_HEAD_MODES,
            OPTIMIZER_MODES,
            RECURRENT_MODES,
        )

        if self.recurrent not in RECURRENT_MODES:
            raise ValueError(
                f"unknown recurrent execution {self.recurrent!r}; "
                f"available: {RECURRENT_MODES}")
        if self.loss_head not in LOSS_HEAD_MODES:
            raise ValueError(
                f"unknown loss head {self.loss_head!r}; "
                f"available: {LOSS_HEAD_MODES}")
        if self.optimizer not in OPTIMIZER_MODES:
            raise ValueError(
                f"unknown optimizer execution {self.optimizer!r}; "
                f"available: {OPTIMIZER_MODES}")
        for family in self.families:
            if family not in self.FAMILIES:
                raise ValueError(
                    f"unknown benchmark family {family!r}; "
                    f"valid families: {', '.join(self.FAMILIES)}")
        for vocab in self.head_vocab:
            if vocab < 2:
                raise ValueError(
                    f"head_vocab sizes must be >= 2, got {vocab}")


@dataclass
class BenchmarkResult:
    """One (family, width, rate) case: per-step wall-clock of each mode."""

    family: str
    width: int
    in_features: int
    batch: int
    rate: float
    steps: int
    repeats: int
    #: Execution backend the compact/pooled modes ran through.
    backend: str = "numpy"
    #: Recurrent-projection execution of the case (None = not applicable).
    recurrent: str | None = None
    #: Loss-head execution of the case (None = not applicable).
    loss_head: str | None = None
    #: Optimizer execution of the case (None = not applicable).
    optimizer: str | None = None
    #: Vocabulary size of the ``head_vocab`` cases (None for families whose
    #: ``width`` is not a vocabulary).
    vocab: int | None = None
    #: Data-parallel worker count of the ``e2e_dist`` case (None otherwise).
    shards: int | None = None
    #: CPU cores the case was measured on (recorded for ``e2e_dist`` so the
    #: scaling gate can tell "regressed" from "machine too small to scale").
    cpu_count: int | None = None
    #: True when the box is too small for the case's comparison to be
    #: meaningful (``e2e_dist``/``e2e_elastic``: fewer cores than shards + 1;
    #: ``serve``: a single core, so the baseline's concurrent request threads
    #: serialise).  Gates treat such entries as machine facts, not
    #: regressions.  None for families where the question doesn't arise.
    cpu_gated: bool | None = None
    mode_ms: dict[str, float] = field(default_factory=dict)
    #: Mean fraction of the dense GEMM the compact modes execute over the
    #: case's shared pattern sequence (kept rows / kept tile area).
    keep_fraction: float | None = None
    #: ``serve``-family detail: per-mode :class:`~repro.serving.loadgen.LoadReport`
    #: dicts plus the driver's concurrency/batching knobs (None otherwise).
    serving: dict | None = None

    @property
    def speedup_compact(self) -> float | None:
        """masked / compact per-step time (None for cases without the mode)."""
        if "compact" not in self.mode_ms:
            return None
        return self.mode_ms["masked"] / self.mode_ms["compact"]

    @property
    def speedup_pooled(self) -> float:
        """masked / pooled per-step time (the full cached engine).

        The ``e2e_dist`` family has no masked baseline — there the headline
        ratio is single-process / sharded per-step time, i.e. the
        data-parallel scaling factor, kept under the same key so every
        report entry gates through one field.  The ``e2e_elastic`` family's
        headline is recovery / step time: how many ordinary steps one full
        worker-recovery cycle costs (lower is better there; the elastic
        gate bounds the absolute recovery time instead).
        """
        if "pooled" in self.mode_ms:
            return self.mode_ms["masked"] / self.mode_ms["pooled"]
        if "recover" in self.mode_ms:
            return self.mode_ms["recover"] / self.mode_ms["step"]
        return self.mode_ms["single"] / self.mode_ms["sharded"]

    def to_dict(self) -> dict:
        compact = self.speedup_compact
        return {
            "family": self.family,
            "width": self.width,
            "in_features": self.in_features,
            "batch": self.batch,
            "rate": self.rate,
            "steps": self.steps,
            "repeats": self.repeats,
            "backend": self.backend,
            "recurrent": self.recurrent,
            "loss_head": self.loss_head,
            "optimizer": self.optimizer,
            "vocab": self.vocab,
            "shards": self.shards,
            "cpu_count": self.cpu_count,
            "cpu_gated": self.cpu_gated,
            "mode_ms": {mode: round(ms, 4) for mode, ms in self.mode_ms.items()},
            "keep_fraction": (round(self.keep_fraction, 4)
                              if self.keep_fraction is not None else None),
            "serving": self.serving,
            "speedup_compact": round(compact, 3) if compact is not None else None,
            "speedup_pooled": round(self.speedup_pooled, 3),
        }


def _make_operands(rng: np.random.Generator, batch: int, in_features: int,
                   out_features: int) -> tuple[Tensor, Tensor, Tensor]:
    x = Tensor(rng.normal(size=(batch, in_features)), requires_grad=True)
    weight = Tensor(rng.normal(size=(out_features, in_features)) * 0.01,
                    requires_grad=True)
    bias = Tensor(np.zeros(out_features), requires_grad=True)
    return x, weight, bias


def _timed_modes(step_fns: dict[str, object], steps: int, warmup: int,
                 repeats: int) -> dict[str, float]:
    """Best-of-``repeats`` mean per-step time of each mode, in milliseconds.

    The repeats of the different modes are interleaved (mode A repeat 1,
    mode B repeat 1, ..., mode A repeat 2, ...) so slow drift in machine load
    biases every mode equally instead of whichever mode happened to run last.
    """
    best = {mode: float("inf") for mode in step_fns}
    for _ in range(repeats):
        for mode, step_fn in step_fns.items():
            for _ in range(warmup):
                step_fn()
            start = time.perf_counter()
            for _ in range(steps):
                step_fn()
            elapsed = time.perf_counter() - start
            best[mode] = min(best[mode], elapsed / steps)
    return {mode: value * 1000.0 for mode, value in best.items()}


def _zero_grads(*tensors: Tensor) -> None:
    for tensor in tensors:
        tensor.zero_grad()


def _shared_pattern_sequence(sampler: PatternSampler, limit: int,
                             count: int) -> list[tuple[int, int]]:
    """One ``(dp, bias)`` sequence shared by every mode of a case.

    All three modes replay the *same* pattern stream, so the comparison is not
    confounded by one mode happening to draw cheaper (larger-``dp``) patterns
    than another — the compact modes' cost is proportional to ``1/dp``.
    """
    periods, biases = sampler.sample_many(count)
    periods = np.minimum(periods, limit)
    biases = biases % periods
    return [(int(dp), int(b)) for dp, b in zip(periods, biases)]


class _Cycle:
    """Tiny deterministic cycle iterator (one per mode, same sequence)."""

    def __init__(self, items):
        self.items = items
        self.index = 0

    def next(self):
        item = self.items[self.index % len(self.items)]
        self.index += 1
        return item


def _bench_row_case(config: BenchmarkConfig, width: int, rate: float,
                    rng: np.random.Generator) -> BenchmarkResult:
    from repro.dropout.patterns import row_keep_counts, row_pattern, row_pattern_mask

    in_features = config.in_features or width
    x, weight, bias = _make_operands(rng, config.batch, in_features, width)
    sampler = PatternSampler(rate, min(config.max_period, width),
                             rng=np.random.default_rng(config.seed))
    sampler.result  # run the one-time distribution search outside the timers
    sequence = _shared_pattern_sequence(sampler, width,
                                        config.steps + config.warmup)
    masked_seq, compact_seq, pooled_seq = _Cycle(sequence), _Cycle(sequence), None
    backend = create_backend(config.backend)

    def masked_step():
        _zero_grads(x, weight, bias)
        dp, bias_phase = masked_seq.next()
        mask = row_pattern_mask(width, dp, bias_phase)  # built per step, as Fig. 1(a)
        out = F.apply_mask(F.linear(x, weight, bias), mask[None, :])
        out.sum().backward()

    def compact_step():
        _zero_grads(x, weight, bias)
        dp, bias_phase = compact_seq.next()
        pattern = RowDropoutPattern(width, dp, bias_phase)  # fresh object, no interning
        out = row_compact_linear(x, weight, bias, pattern, backend=backend)
        out.sum().backward()

    # The pooled mode replays the same (dp, bias) stream through interned
    # pattern objects — exactly what a PatternPool hands a trainer.
    pooled_seq = _Cycle([row_pattern(width, dp, b) for dp, b in sequence])
    workspace = CompactWorkspace()

    def pooled_step():
        _zero_grads(x, weight, bias)
        pattern = pooled_seq.next()  # interned pattern from the pre-drawn pool
        out = row_compact_linear(x, weight, bias, pattern, workspace=workspace,
                                 backend=backend)
        out.sum().backward()

    periods = np.array([dp for dp, _ in sequence])
    phases = np.array([b for _, b in sequence])
    result = BenchmarkResult(family="row", width=width, in_features=in_features,
                             batch=config.batch, rate=rate, steps=config.steps,
                             repeats=config.repeats, backend=config.backend,
                             keep_fraction=float(
                                 row_keep_counts(width, periods, phases).mean() / width))
    result.mode_ms = _timed_modes(
        {"masked": masked_step, "compact": compact_step, "pooled": pooled_step},
        config.steps, config.warmup, config.repeats)
    return result


def _bench_tile_case(config: BenchmarkConfig, width: int, rate: float,
                     rng: np.random.Generator) -> BenchmarkResult:
    in_features = config.in_features or width
    x, weight, bias = _make_operands(rng, config.batch, in_features, width)
    from repro.dropout.patterns import tile_pattern, tile_pattern_mask

    reference = TileDropoutPattern(rows=width, cols=in_features, dp=1, bias=0,
                                   tile=config.tile)
    sampler = PatternSampler(rate, min(config.max_period, reference.num_tiles),
                             rng=np.random.default_rng(config.seed))
    sampler.result
    sequence = _shared_pattern_sequence(sampler, reference.num_tiles,
                                        config.steps + config.warmup)
    masked_seq, compact_seq = _Cycle(sequence), _Cycle(sequence)
    backend = create_backend(config.backend)

    def masked_step():
        _zero_grads(x, weight, bias)
        dp, bias_phase = masked_seq.next()
        mask = tile_pattern_mask(width, in_features, dp, bias_phase, config.tile)
        out = x.matmul(F.apply_mask(weight, mask).transpose()) + bias
        out.sum().backward()

    def compact_step():
        _zero_grads(x, weight, bias)
        dp, bias_phase = compact_seq.next()
        pattern = TileDropoutPattern(width, in_features, dp, bias_phase,
                                     config.tile)  # fresh object, no interning
        out = tile_compact_linear(x, weight, bias, pattern, backend=backend)
        out.sum().backward()

    pooled_seq = _Cycle([tile_pattern(width, in_features, dp, b, config.tile)
                         for dp, b in sequence])
    workspace = CompactWorkspace()

    def pooled_step():
        _zero_grads(x, weight, bias)
        pattern = pooled_seq.next()  # interned pattern from the pre-drawn pool
        out = tile_compact_linear(x, weight, bias, pattern, workspace=workspace,
                                  plan=compile_tile_plan(pattern), backend=backend)
        out.sum().backward()

    result = BenchmarkResult(family="tile", width=width, in_features=in_features,
                             batch=config.batch, rate=rate, steps=config.steps,
                             repeats=config.repeats, backend=config.backend,
                             keep_fraction=float(np.mean(
                                 [plan.compact_flops_fraction
                                  for plan in (compile_tile_plan(p)
                                               for p in pooled_seq.items)])))
    result.mode_ms = _timed_modes(
        {"masked": masked_step, "compact": compact_step, "pooled": pooled_step},
        config.steps, config.warmup, config.repeats)
    return result


def _bench_lstm_rec_case(config: BenchmarkConfig, width: int, rate: float,
                         rng: np.random.Generator) -> BenchmarkResult:
    """One recurrent projection ``h @ weight_h.T`` under gate-aligned DropConnect.

    ``width`` is the hidden size; the weight has ``4 * width`` rows (the LSTM
    gate stack).  ``masked`` rebuilds the gate-replicated weight mask every
    step and runs the dense GEMM; ``compact`` executes fresh (uninterned)
    recurrent patterns through the plan op; ``pooled`` replays interned
    patterns with precompiled plans and workspace buffer reuse.  (The
    per-window weight-gather hoist the LSTM unroll adds on top only pays off
    when one pattern serves many timesteps — the ``e2e`` family measures
    that.)
    """
    from repro.dropout.compact_ops import recurrent_compact_linear
    from repro.dropout.engine import compile_recurrent_plan
    from repro.dropout.patterns import (
        RecurrentTilePattern,
        recurrent_tile_mask,
        recurrent_tile_pattern,
    )

    num_gates = 4
    # The recurrent projection is inherently square: h has `width` (hidden)
    # features regardless of any rectangular-layer override.
    in_features = width
    h = Tensor(rng.normal(size=(config.batch, width)), requires_grad=True)
    weight = Tensor(rng.normal(size=(num_gates * width, width)) * 0.01,
                    requires_grad=True)
    reference = TileDropoutPattern(rows=width, cols=width, dp=1, bias=0,
                                   tile=config.tile)
    sampler = PatternSampler(rate, min(config.max_period, reference.num_tiles),
                             rng=np.random.default_rng(config.seed))
    sampler.result
    sequence = _shared_pattern_sequence(sampler, reference.num_tiles,
                                        config.steps + config.warmup)
    masked_seq, compact_seq = _Cycle(sequence), _Cycle(sequence)
    backend = create_backend(config.backend)

    def masked_step():
        _zero_grads(h, weight)
        dp, bias_phase = masked_seq.next()
        mask = recurrent_tile_mask(width, num_gates, dp, bias_phase, config.tile)
        out = h.matmul(F.apply_mask(weight, mask).transpose())
        out.sum().backward()

    def compact_step():
        _zero_grads(h, weight)
        dp, bias_phase = compact_seq.next()
        pattern = RecurrentTilePattern(width, num_gates, dp, bias_phase,
                                       config.tile)  # fresh object, no interning
        out = recurrent_compact_linear(h, weight, pattern, backend=backend)
        out.sum().backward()

    pooled_seq = _Cycle([recurrent_tile_pattern(width, num_gates, dp, b,
                                                config.tile)
                         for dp, b in sequence])
    workspace = CompactWorkspace()

    def pooled_step():
        _zero_grads(h, weight)
        pattern = pooled_seq.next()  # interned pattern from the pre-drawn pool
        out = recurrent_compact_linear(h, weight, pattern, workspace=workspace,
                                       plan=compile_recurrent_plan(pattern),
                                       backend=backend)
        out.sum().backward()

    result = BenchmarkResult(family="lstm_rec", width=width,
                             in_features=in_features, batch=config.batch,
                             rate=rate, steps=config.steps,
                             repeats=config.repeats, backend=config.backend,
                             recurrent="tiled",
                             keep_fraction=float(np.mean(
                                 [compile_recurrent_plan(p).compact_flops_fraction
                                  for p in pooled_seq.items])))
    result.mode_ms = _timed_modes(
        {"masked": masked_step, "compact": compact_step, "pooled": pooled_step},
        config.steps, config.warmup, config.repeats)
    return result


def _bench_head_case(config: BenchmarkConfig, width: int, rate: float,
                     rng: np.random.Generator) -> BenchmarkResult:
    """One loss-head step: vocabulary projection + cross-entropy, fwd + bwd.

    ``width`` is the vocabulary size (the class-pattern dimension);
    ``in_features`` the hidden width feeding the projection.  ``masked``
    computes the dense projection and the full-vocabulary cross-entropy —
    what every trainer paid before the head subsystem; ``compact`` computes
    the sampled softmax with fresh (uninterned) class patterns and no
    workspace; ``pooled`` replays interned patterns with the workspace ring
    reusing the full-size gradient scatter buffers (the ``vocab x hidden``
    weight gradient is the big one).
    """
    from repro.dropout.patterns import row_pattern
    from repro.heads import sampled_softmax_loss

    in_features = config.in_features or width
    x, weight, bias = _make_operands(rng, config.batch, in_features, width)
    targets = rng.integers(0, width, size=config.batch)
    sampler = PatternSampler(rate, min(config.max_period, width),
                             rng=np.random.default_rng(config.seed))
    sampler.result  # run the one-time distribution search outside the timers
    sequence = _shared_pattern_sequence(sampler, width,
                                        config.steps + config.warmup)
    masked_seq, compact_seq = _Cycle(sequence), _Cycle(sequence)
    backend = create_backend(config.backend)

    def masked_step():
        _zero_grads(x, weight, bias)
        masked_seq.next()  # the dense baseline ignores the pattern stream
        loss = F.cross_entropy(F.linear(x, weight, bias), targets)
        loss.backward()

    def compact_step():
        _zero_grads(x, weight, bias)
        dp, bias_phase = compact_seq.next()
        pattern = RowDropoutPattern(width, dp, bias_phase)  # fresh object, no interning
        loss = sampled_softmax_loss(x, weight, bias, targets, pattern,
                                    backend=backend)
        loss.backward()

    pooled_seq = _Cycle([row_pattern(width, dp, b) for dp, b in sequence])
    workspace = CompactWorkspace()

    def pooled_step():
        _zero_grads(x, weight, bias)
        pattern = pooled_seq.next()  # interned pattern from the pre-drawn pool
        loss = sampled_softmax_loss(x, weight, bias, targets, pattern,
                                    workspace=workspace, backend=backend)
        loss.backward()

    from repro.heads import sampled_class_set

    # The executed class set is union(pattern kept, batch targets) — count
    # exactly what the sampled loss gathers, not the pattern alone.
    kept_counts = [len(sampled_class_set(pattern, targets)[0])
                   for pattern in pooled_seq.items]
    result = BenchmarkResult(family="head", width=width,
                             in_features=in_features, batch=config.batch,
                             rate=rate, steps=config.steps,
                             repeats=config.repeats, backend=config.backend,
                             loss_head="sampled",
                             keep_fraction=float(np.mean(kept_counts) / width))
    result.mode_ms = _timed_modes(
        {"masked": masked_step, "compact": compact_step, "pooled": pooled_step},
        config.steps, config.warmup, config.repeats)
    return result


#: Hidden width feeding the ``head_vocab`` cases' projection (overridable
#: via ``BenchmarkConfig.in_features``): fixed rather than square because
#: the axis sweeps the vocabulary, not the feature width.
_HEAD_VOCAB_HIDDEN = 256


def _bench_head_vocab_case(config: BenchmarkConfig, vocab: int, rate: float,
                           rng: np.random.Generator) -> BenchmarkResult:
    """Dense vs sampled vs adaptive loss-head step at large vocabulary.

    The large-vocab companion of the ``head`` family: one loss-head step
    (projection + cross-entropy, forward and backward) over a
    Zipf-distributed target batch, at a fixed hidden width and with the
    vocabulary as the swept axis.  The modes map the three head kinds onto
    the report's standard keys so the existing gates read the entry
    unchanged:

    * ``masked`` — the exact dense head (full projection + full softmax);
    * ``compact`` — the sampled head's importance-weighted loss with pooled
      interned class patterns at the case ``rate``;
    * ``pooled`` — the :class:`~repro.heads.AdaptiveSoftmaxHead` loss
      (auto-sized shortlist, default cluster count), so ``speedup_pooled``
      is the adaptive head's wall-clock win over the dense head — the
      number the delta gate's adaptive acceptance case bounds.

    Targets are Zipfian (matching the synthetic corpus and the adaptive
    head's frequency-ordered-ids assumption), so the batch concentrates in
    the shortlist and the frequent tail bands exactly as a real large-vocab
    training step would.
    """
    from repro.data.synthetic_text import _zipf_weights
    from repro.dropout.patterns import row_pattern
    from repro.heads import AdaptiveSoftmaxHead, sampled_softmax_loss

    hidden = config.in_features or _HEAD_VOCAB_HIDDEN
    x, weight, bias = _make_operands(rng, config.batch, hidden, vocab)
    unigram_cdf = np.cumsum(_zipf_weights(vocab, 1.05))
    targets = np.minimum(np.searchsorted(unigram_cdf,
                                         rng.random(config.batch)),
                         vocab - 1).astype(np.int64)
    sampler = PatternSampler(rate, min(config.max_period, vocab),
                             rng=np.random.default_rng(config.seed))
    sampler.result  # run the one-time distribution search outside the timers
    sequence = _shared_pattern_sequence(sampler, vocab,
                                        config.steps + config.warmup)
    backend = create_backend(config.backend)

    def masked_step():
        _zero_grads(x, weight, bias)
        loss = F.cross_entropy(F.linear(x, weight, bias), targets)
        loss.backward()

    sampled_seq = _Cycle([row_pattern(vocab, dp, b) for dp, b in sequence])
    workspace = CompactWorkspace()

    def sampled_step():
        _zero_grads(x, weight, bias)
        pattern = sampled_seq.next()  # interned pattern from the pre-drawn pool
        loss = sampled_softmax_loss(x, weight, bias, targets, pattern,
                                    workspace=workspace, backend=backend)
        loss.backward()

    head = AdaptiveSoftmaxHead(vocab)
    head.train()
    head.execution_mode = "compact"
    head.use_workspace = True
    head.backend = backend

    def adaptive_step():
        _zero_grads(x, weight, bias)
        loss = head.loss(x, weight, bias, targets)
        loss.backward()

    # The dense mode's per-step cost grows linearly with the vocabulary, so
    # the protocol is halved against the grid families to keep the sweep
    # affordable; the speedups at this scale dwarf protocol noise.
    steps = max(2, config.steps // 2)
    repeats = max(2, config.repeats // 2)
    result = BenchmarkResult(family="head_vocab", width=vocab,
                             in_features=hidden, batch=config.batch,
                             rate=rate, steps=steps, repeats=repeats,
                             backend=config.backend, loss_head="adaptive",
                             vocab=vocab)
    result.mode_ms = _timed_modes(
        {"masked": masked_step, "compact": sampled_step,
         "pooled": adaptive_step},
        steps, config.warmup, repeats)
    # Mean fraction of the vocabulary the adaptive head actually projected
    # (head level + expanded bands), averaged over every timed+warmup step.
    counters = head.head_counters()
    if counters["draws"]:
        result.keep_fraction = float(
            counters["kept_classes"] / (counters["draws"] * vocab))
    return result


# ----------------------------------------------------------------------
# end-to-end trainer-step cases
# ----------------------------------------------------------------------
#
# The e2e family times *whole* training steps — forward, loss, backward,
# gradient clip/update, pattern (re)sampling — with the model and trainer
# wired through the same ExecutionConfig/EngineRuntime the experiment drivers
# use.  The "masked" mode is the conventional-dropout baseline (the paper's
# "old time"): the `original` strategy with dense GEMMs and i.i.d. Bernoulli
# masks.  "compact" and "pooled" train the pattern (`row`) strategy under the
# matching engine mode.  Dimensions are derived from the sweep config but
# capped so the CPU-bound dense baselines stay affordable.

_E2E_STRATEGY = {"masked": "original", "compact": "row", "pooled": "row"}


def _e2e_runtime(mode: str, config: BenchmarkConfig):
    from repro.execution import EngineRuntime, ExecutionConfig

    # The masked baseline trains the `original` strategy, which has no
    # recurrent pattern sites and always pays the dense loss head and the
    # dense parameter update — the recurrent/loss-head/optimizer toggles only
    # affect the compact/pooled pattern runs.  The sampled head prunes
    # classes at the case's dropout rate.
    recurrent = "dense" if mode == "masked" else config.recurrent
    loss_head = "dense" if mode == "masked" else config.loss_head
    optimizer = "dense" if mode == "masked" else config.optimizer
    return EngineRuntime(ExecutionConfig(mode=mode, dtype=config.e2e_dtype,
                                         backend=config.backend,
                                         recurrent=recurrent,
                                         loss_head=loss_head,
                                         loss_head_rate=max(config.rates),
                                         optimizer=optimizer,
                                         seed=config.seed))


def _bench_e2e_mlp_case(config: BenchmarkConfig,
                        rng: np.random.Generator) -> BenchmarkResult:
    from repro.data.synthetic_mnist import make_synthetic_mnist
    from repro.models.mlp import MLPClassifier, MLPConfig
    from repro.training.trainer import ClassifierTrainer, ClassifierTrainingConfig

    hidden = min(max(config.widths), 512)
    rate = max(config.rates)
    batch = config.batch
    data = make_synthetic_mnist(num_train=max(batch, 64), num_test=32,
                                seed=config.seed)
    images = data.train_images[:batch]
    labels = data.train_labels[:batch]

    step_fns: dict[str, object] = {}
    for mode, strategy in _E2E_STRATEGY.items():
        model = MLPClassifier(MLPConfig(
            input_size=data.num_features, hidden_sizes=(hidden, hidden),
            num_classes=data.num_classes, drop_rates=(rate, rate),
            strategy=strategy, seed=config.seed))
        trainer = ClassifierTrainer(
            model, data,
            ClassifierTrainingConfig(batch_size=batch, epochs=1, seed=config.seed),
            runtime=_e2e_runtime(mode, config))
        step_fns[mode] = (lambda t=trainer: t.train_step(images, labels))

    result = BenchmarkResult(family="e2e_mlp", width=hidden,
                             in_features=data.num_features, batch=batch,
                             rate=rate, steps=config.steps, repeats=config.repeats,
                             backend=config.backend,
                             optimizer=config.optimizer)
    result.mode_ms = _timed_modes(step_fns, config.steps, config.warmup,
                                  config.repeats)
    return result


def _bench_e2e_lstm_case(config: BenchmarkConfig,
                         rng: np.random.Generator) -> BenchmarkResult:
    from repro.data.synthetic_text import make_synthetic_corpus
    from repro.models.lstm_lm import LSTMConfig, LSTMLanguageModel
    from repro.training.lm_trainer import (
        LanguageModelTrainer,
        LanguageModelTrainingConfig,
    )

    hidden = min(max(config.widths) // 2, 256)
    vocab = 8 * hidden
    seq_len = 12
    batch = max(4, config.batch // 4)
    rate = max(config.rates)
    corpus = make_synthetic_corpus(vocab_size=vocab,
                                   num_train_tokens=seq_len * batch * 4,
                                   num_valid_tokens=seq_len * batch,
                                   num_test_tokens=seq_len * batch,
                                   seed=config.seed)
    inputs = rng.integers(0, vocab, size=(seq_len, batch))
    targets = rng.integers(0, vocab, size=(seq_len, batch))

    step_fns: dict[str, object] = {}
    for mode, strategy in _E2E_STRATEGY.items():
        model = LSTMLanguageModel(LSTMConfig(
            vocab_size=vocab, embed_size=hidden, hidden_size=hidden,
            num_layers=2, drop_rates=(rate, rate), strategy=strategy,
            seed=config.seed))
        trainer = LanguageModelTrainer(
            model, corpus,
            LanguageModelTrainingConfig(batch_size=batch, seq_len=seq_len,
                                        epochs=1, seed=config.seed),
            runtime=_e2e_runtime(mode, config))
        state = model.init_state(batch)

        def step_fn(t=trainer, state_box=[state]):
            _, state_box[0] = t.train_step(inputs, targets, state_box[0])

        step_fns[mode] = step_fn

    result = BenchmarkResult(family="e2e_lstm", width=hidden, in_features=vocab,
                             batch=batch, rate=rate, steps=config.steps,
                             repeats=config.repeats, backend=config.backend,
                             recurrent=config.recurrent,
                             loss_head=config.loss_head,
                             optimizer=config.optimizer)
    result.mode_ms = _timed_modes(step_fns, config.steps, config.warmup,
                                  config.repeats)
    return result


def _bench_e2e_dist_case(config: BenchmarkConfig,
                         rng: np.random.Generator) -> BenchmarkResult:
    """Data-parallel scaling of one MLP trainer step.

    ``single`` times ``ClassifierTrainer.train_step`` in-process;
    ``sharded`` times one :meth:`_Cluster.step` of the distributed
    coordinator — publish params, release ``dist_shards`` workers on their
    strided batch slices, shared-memory tree reduce, one optimizer step.
    Both modes run the same pooled-engine configuration, so the ratio is
    pure multi-process scaling (workers idle at the params barrier while
    the single mode is timed, so the interleaved repeats stay fair).
    """
    from repro.data.synthetic_mnist import make_synthetic_mnist
    from repro.distributed import DistributedTrainer
    from repro.execution import EngineRuntime, ExecutionConfig
    from repro.models.mlp import MLPClassifier, MLPConfig
    from repro.training.trainer import ClassifierTrainer, ClassifierTrainingConfig

    hidden = min(max(config.widths), 512)
    rate = max(config.rates)
    batch = config.batch
    # Enough training data that every shard's strided slice of the epoch
    # schedule stays non-empty, and the step loop cycles a few batches.
    data = make_synthetic_mnist(num_train=max(batch * 4, 256), num_test=32,
                                seed=config.seed)
    train_config = ClassifierTrainingConfig(batch_size=batch, epochs=1,
                                            seed=config.seed)

    def build(shards: int):
        model = MLPClassifier(MLPConfig(
            input_size=data.num_features, hidden_sizes=(hidden, hidden),
            num_classes=data.num_classes, drop_rates=(rate, rate),
            strategy="row", seed=config.seed))
        runtime = EngineRuntime(ExecutionConfig(
            mode="pooled", dtype=config.e2e_dtype, backend=config.backend,
            optimizer=config.optimizer, seed=config.seed, shards=shards))
        return model, runtime

    model, runtime = build(1)
    single = ClassifierTrainer(model, data, train_config, runtime=runtime)
    images = data.train_images[:batch]
    labels = data.train_labels[:batch]

    dist_model, dist_runtime = build(config.dist_shards)
    dist = DistributedTrainer(dist_model, data, train_config,
                              runtime=dist_runtime)

    result = BenchmarkResult(family="e2e_dist", width=hidden,
                             in_features=data.num_features, batch=batch,
                             rate=rate, steps=config.steps,
                             repeats=config.repeats, backend=config.backend,
                             optimizer=config.optimizer,
                             shards=config.dist_shards,
                             cpu_count=os.cpu_count(),
                             cpu_gated=(os.cpu_count() or 1)
                             < config.dist_shards + 1)
    with dist.session() as cluster:
        result.mode_ms = _timed_modes(
            {"single": lambda: single.train_step(images, labels),
             "sharded": cluster.step},
            config.steps, config.warmup, config.repeats)
    return result


#: Full teardown -> respawn -> replay cycles timed by the ``e2e_elastic``
#: case's ``recover`` mode (best cycle reported).  Each cycle respawns every
#: worker process, so this is deliberately far below ``repeats``.
_RECOVER_CYCLES = 2


def _bench_e2e_elastic_case(config: BenchmarkConfig,
                            rng: np.random.Generator) -> BenchmarkResult:
    """Distributed step plus one full elastic recovery cycle.

    ``step`` times one :meth:`_Cluster.step` of the distributed MLP trainer
    (with dirty-region gradient compression active whenever
    ``config.optimizer == "sparse"``); ``recover`` times what the elastic
    retry loop pays per failure once the fault is detected — tear the whole
    cluster down, respawn every worker with ``start_step`` at the current
    step, let them deterministically fast-forward, and replay the in-flight
    step.  The carry-state snapshot is threaded through the respawn exactly
    like :meth:`DistributedTrainer._run` does (a no-op for the stateless
    classifier, but the cycle being timed is the real recovery path).
    """
    from repro.data.synthetic_mnist import make_synthetic_mnist
    from repro.distributed import DistributedTrainer
    from repro.distributed.trainer import _Cluster
    from repro.execution import EngineRuntime, ExecutionConfig
    from repro.models.mlp import MLPClassifier, MLPConfig
    from repro.training.trainer import ClassifierTrainingConfig

    hidden = min(max(config.widths), 512)
    rate = max(config.rates)
    batch = config.batch
    data = make_synthetic_mnist(num_train=max(batch * 4, 256), num_test=32,
                                seed=config.seed)
    train_config = ClassifierTrainingConfig(batch_size=batch, epochs=1,
                                            seed=config.seed)
    model = MLPClassifier(MLPConfig(
        input_size=data.num_features, hidden_sizes=(hidden, hidden),
        num_classes=data.num_classes, drop_rates=(rate, rate),
        strategy="row", seed=config.seed))
    runtime = EngineRuntime(ExecutionConfig(
        mode="pooled", dtype=config.e2e_dtype, backend=config.backend,
        optimizer=config.optimizer, seed=config.seed,
        shards=config.dist_shards))
    trainer = DistributedTrainer(model, data, train_config, runtime=runtime)

    result = BenchmarkResult(family="e2e_elastic", width=hidden,
                             in_features=data.num_features, batch=batch,
                             rate=rate, steps=config.steps,
                             repeats=config.repeats, backend=config.backend,
                             optimizer=config.optimizer,
                             shards=config.dist_shards,
                             cpu_count=os.cpu_count(),
                             cpu_gated=(os.cpu_count() or 1)
                             < config.dist_shards + 1)
    cluster = _Cluster(trainer)
    try:
        cluster.start()
        result.mode_ms = _timed_modes({"step": cluster.step}, config.steps,
                                      config.warmup, config.repeats)
        best = float("inf")
        for _ in range(_RECOVER_CYCLES):
            resume_step = cluster.start_step + cluster.steps
            states = cluster.states_snapshot()
            start = time.perf_counter()
            cluster.close(join_timeout=10.0)
            cluster = _Cluster(trainer, start_step=resume_step,
                               resume_states=states)
            cluster.start()
            cluster.step()
            best = min(best, time.perf_counter() - start)
        result.mode_ms["recover"] = best * 1000.0
    finally:
        cluster.close()
    return result


def _bench_serve_case(config: BenchmarkConfig, kind: str,
                      rng: np.random.Generator) -> BenchmarkResult:
    """Per-request dense inference vs the micro-batched frozen engine.

    Both modes serve the same frozen (eval-mode) model under the same
    closed-loop load: ``serve_concurrency`` request threads, each keeping
    one request in flight.  ``masked`` answers every request with its own
    synchronous eval-mode ``forward()`` — the per-request GEMV-shaped path
    inference took before :mod:`repro.serving` existed.  ``pooled`` routes
    the same requests through an :class:`~repro.serving.engine.InferenceEngine`
    behind a :class:`~repro.serving.batcher.MicroBatcher` whose batch bound
    equals the concurrency, so each full wave of in-flight requests executes
    as exactly one GEMM-shaped pooled step.  ``mode_ms`` records each mode's
    mean per-request latency (keeping ``speedup_pooled`` the headline ratio);
    the entry's ``serving`` dict carries both full
    :class:`~repro.serving.loadgen.LoadReport` summaries plus the batcher's
    realised occupancy, and a ``rate_sweep`` ladder — one open-loop
    (Poisson-arrival) report per offered rate at 30/60/90% of the pooled
    closed loop's realised throughput (see
    :func:`~repro.serving.loadgen.run_rate_sweep`).
    """
    from repro.execution import EngineRuntime, ExecutionConfig
    from repro.serving import (InferenceEngine, MicroBatcher, run_closed_loop,
                               run_rate_sweep)
    from repro.tensor.tensor import no_grad

    concurrency = config.serve_concurrency
    rate = max(config.rates)
    exec_config = ExecutionConfig(
        mode="pooled", dtype=config.e2e_dtype, backend=config.backend,
        recurrent=config.recurrent, seed=config.seed,
        serve_max_batch=concurrency)
    runtime = EngineRuntime(exec_config)

    if kind == "serve_mlp":
        from repro.models.mlp import MLPClassifier, MLPConfig

        hidden = min(max(config.widths), 2048)
        in_features = 784
        model = MLPClassifier(MLPConfig(
            input_size=in_features, hidden_sizes=(hidden, hidden),
            num_classes=10, drop_rates=(rate, rate), strategy="row",
            seed=config.seed))
        runtime.bind(model)
        requests = [rng.normal(size=in_features).astype(runtime.np_dtype)
                    for _ in range(config.serve_requests)]

        def baseline(request):
            with no_grad():
                return model(Tensor(request[None, :],
                                    dtype=runtime.np_dtype)).data[0]

        width, recurrent = hidden, None
    else:  # serve_lstm
        from repro.models.lstm_lm import LSTMConfig, LSTMLanguageModel

        hidden = min(max(config.widths) // 2, 256)
        vocab = 8 * hidden
        model = LSTMLanguageModel(LSTMConfig(
            vocab_size=vocab, embed_size=hidden, hidden_size=hidden,
            num_layers=2, drop_rates=(rate, rate), strategy="row",
            seed=config.seed))
        runtime.bind(model)
        # Variable-length token requests so the pooled path pays its real
        # padding cost; a tenth of the MLP request count (each request is a
        # full sequence unroll, not one GEMV).
        count = max(200, config.serve_requests // 10)
        lengths = rng.integers(4, 17, size=count)
        requests = [rng.integers(0, vocab, size=int(length))
                    for length in lengths]

        def baseline(request):
            with no_grad():
                logits, _ = model(np.asarray(request)[:, None])
            return logits.data

        width, in_features, recurrent = hidden, vocab, config.recurrent

    model.eval()
    engine = InferenceEngine(model, runtime=runtime)

    # Warm both paths (interns the engine's workspace ring, faults the
    # baseline's allocation patterns in) before anything is timed.
    warm = requests[:min(len(requests), 2 * concurrency)]
    for request in warm:
        baseline(request)
    engine.infer_requests(list(warm))

    masked = run_closed_loop(baseline, requests, concurrency=concurrency)
    with MicroBatcher(engine, max_batch=concurrency) as batcher:
        pooled = run_closed_loop(batcher.submit, requests,
                                 concurrency=concurrency)
        # Latency-vs-offered-load ladder through the same batcher: Poisson
        # arrivals at fractions of the closed loop's realised capacity, so
        # the report shows how the engine's quantiles grow toward
        # saturation.  Bounded request count per rung — the ladder is a
        # characterisation, not the headline timing.
        sweep_requests = requests[:min(len(requests), 50 * concurrency)]
        sweep_rates = [round(pooled.throughput_rps * fraction, 2)
                       for fraction in (0.3, 0.6, 0.9)]
        if min(sweep_rates, default=0.0) > 0:
            sweep_reports = run_rate_sweep(batcher.submit, sweep_requests,
                                           rates_rps=sweep_rates,
                                           seed=config.seed)
        else:  # degenerate closed loop (zero throughput): nothing to sweep
            sweep_rates, sweep_reports = [], []

    result = BenchmarkResult(family=kind, width=width,
                             in_features=in_features, batch=concurrency,
                             rate=rate, steps=len(requests), repeats=1,
                             backend=config.backend, recurrent=recurrent,
                             cpu_count=os.cpu_count(),
                             cpu_gated=(os.cpu_count() or 1) < 2)
    result.mode_ms = {"masked": masked.mean_ms, "pooled": pooled.mean_ms}
    occupancy = (batcher.requests_served / batcher.batches_formed
                 if batcher.batches_formed else 0.0)
    result.serving = {
        "concurrency": concurrency,
        "max_batch": batcher.max_batch,
        "max_wait_ms": batcher.max_wait_ms,
        "batches": batcher.batches_formed,
        "mean_occupancy": round(occupancy, 3),
        "masked": masked.to_dict(),
        "pooled": pooled.to_dict(),
        "rate_sweep": [{"rate_rps": rate, **report.to_dict()}
                       for rate, report in zip(sweep_rates, sweep_reports)],
    }
    return result


# ----------------------------------------------------------------------
# case scheduling (in-process or sharded across worker processes)
# ----------------------------------------------------------------------

def case_descriptors(config: BenchmarkConfig) -> list[tuple[str, int | None, float | None]]:
    """The flat list of ``(kind, width, rate)`` cases ``config`` expands to.

    ``e2e`` expands to one descriptor per trainer workload (their dimensions
    derive from the sweep bounds, not the grid).  The descriptor list is the
    unit of sharding: each descriptor runs entirely inside one worker.
    """
    cases: list[tuple[str, int | None, float | None]] = []
    for family in config.families:
        if family == "e2e":
            cases.append(("e2e_mlp", None, None))
            cases.append(("e2e_lstm", None, None))
            continue
        if family == "serve":
            cases.append(("serve_mlp", None, None))
            cases.append(("serve_lstm", None, None))
            continue
        if family in ("e2e_dist", "e2e_elastic"):
            cases.append((family, None, None))
            continue
        if family == "head_vocab":
            # One case per swept vocabulary at the top rate (the rate only
            # drives the sampled mode; the dense/adaptive modes ignore it).
            for vocab in config.head_vocab:
                cases.append(("head_vocab", vocab, max(config.rates)))
            continue
        for width in config.widths:
            for rate in config.rates:
                cases.append((family, width, rate))
        if family == "head" and "head_vocab" not in config.families:
            # The head family sprouts its large-vocab axis so a plain
            # `--families head` run (and the delta gate) measures it without
            # naming the sub-family explicitly.
            for vocab in config.head_vocab:
                cases.append(("head_vocab", vocab, max(config.rates)))
    return cases


def run_case(config: BenchmarkConfig, index: int,
             case: tuple[str, int | None, float | None]) -> BenchmarkResult:
    """Run one case descriptor (the unit of work a shard executes).

    Each case gets an independent, deterministic operand stream seeded from
    ``(config.seed, index)``, so the results do not depend on which process
    (or in which order) a case ran.
    """
    kind, width, rate = case
    rng = np.random.default_rng([config.seed, index])
    if kind == "e2e_mlp":
        return _bench_e2e_mlp_case(config, rng)
    if kind == "e2e_lstm":
        return _bench_e2e_lstm_case(config, rng)
    if kind in ("serve_mlp", "serve_lstm"):
        return _bench_serve_case(config, kind, rng)
    if kind == "e2e_dist":
        return _bench_e2e_dist_case(config, rng)
    if kind == "e2e_elastic":
        return _bench_e2e_elastic_case(config, rng)
    bench = {"row": _bench_row_case, "tile": _bench_tile_case,
             "lstm_rec": _bench_lstm_rec_case, "head": _bench_head_case,
             "head_vocab": _bench_head_vocab_case}[kind]
    return bench(config, width, rate, rng)


def _run_sharded(config: BenchmarkConfig,
                 cases: list[tuple[str, int | None, float | None]],
                 verbose: bool) -> list[BenchmarkResult]:
    from concurrent.futures import ProcessPoolExecutor, as_completed

    from repro.distributed.procs import pinned_blas_env, spawn_context

    shards = min(config.shards, len(cases))
    results: list[BenchmarkResult | None] = [None] * len(cases)
    # Each worker gets its own BLAS thread domain: the caps are exported in
    # the parent for the duration of the pool (spawn-context children
    # snapshot the environment at exec time), see repro.distributed.procs.
    with pinned_blas_env(shards):
        with ProcessPoolExecutor(max_workers=shards,
                                 mp_context=spawn_context()) as pool:
            futures = {pool.submit(run_case, config, index, case): index
                       for index, case in enumerate(cases)}
            for future in as_completed(futures):
                index = futures[future]
                results[index] = future.result()
                if verbose:
                    print(_format_row(results[index]))
    return list(results)


def run_benchmark(config: BenchmarkConfig | None = None,
                  verbose: bool = False) -> list[BenchmarkResult]:
    """Run every (family, width, rate) case of ``config`` and return the results.

    With ``config.shards > 1`` the cases are distributed across that many
    worker processes (one BLAS thread domain each); results always come back
    in descriptor order regardless of completion order.
    """
    config = config or BenchmarkConfig()
    cases = case_descriptors(config)
    if config.shards > 1:
        return _run_sharded(config, cases, verbose)
    results: list[BenchmarkResult] = []
    for index, case in enumerate(cases):
        result = run_case(config, index, case)
        results.append(result)
        if verbose:
            print(_format_row(result))
    return results


def _format_row(result: BenchmarkResult) -> str:
    modes = "  ".join(f"{mode}={ms:8.3f}ms"
                      for mode, ms in result.mode_ms.items())
    return (f"[{result.family:8s}] width={result.width:5d} rate={result.rate:.2f} "
            f"backend={result.backend}  "
            f"{modes}  speedup(pooled)={result.speedup_pooled:5.2f}x")


def write_report(results: list[BenchmarkResult], config: BenchmarkConfig,
                 path: str | None = None) -> str:
    """Serialise the results (plus environment metadata) to JSON; returns the path."""
    path = path or config.output
    report = {
        "benchmark": "compact_engine",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "config": {
            "widths": list(config.widths),
            "rates": list(config.rates),
            "batch": config.batch,
            "steps": config.steps,
            "repeats": config.repeats,
            "warmup": config.warmup,
            "tile": config.tile,
            "max_period": config.max_period,
            "families": list(config.families),
            "head_vocab": list(config.head_vocab),
            "e2e_dtype": config.e2e_dtype,
            "backend": config.backend,
            "recurrent": config.recurrent,
            "loss_head": config.loss_head,
            "optimizer": config.optimizer,
            "shards": config.shards,
            "dist_shards": config.dist_shards,
            "serve_requests": config.serve_requests,
            "serve_concurrency": config.serve_concurrency,
            "seed": config.seed,
        },
        "results": [result.to_dict() for result in results],
    }
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return path
