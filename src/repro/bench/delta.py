"""Benchmark-regression gate: compare a fresh run against a committed report.

``python -m repro.bench.delta`` runs a quick benchmark at the acceptance case
(width 2048, rate 0.7, both the row and tile families), loads the committed
``BENCH_compact_engine.json`` and **fails (exit code 1) when the freshly
measured ``speedup_pooled`` regresses by more than 30%** relative to the
committed value.  This is the CI hook that keeps the pooled engine's headline
speedup honest across PRs without re-running the full sweep.

Usage::

    PYTHONPATH=src python -m repro.bench.delta                      # run + compare
    PYTHONPATH=src python -m repro.bench.delta --fresh new.json     # compare two reports
    PYTHONPATH=src python -m repro.bench.delta --threshold 0.2      # stricter gate

The comparison logic (:func:`compare_reports`) is pure and unit-tested; the
measurement side reuses :func:`repro.bench.harness.run_benchmark` with a
reduced quick configuration.
"""

from __future__ import annotations

import argparse
import json

from repro.bench.harness import BenchmarkConfig, run_benchmark

#: The acceptance cases gated by the delta check: (family, width, rate).
ACCEPTANCE_CASES: tuple[tuple[str, int, float], ...] = (
    ("row", 2048, 0.7),
    ("tile", 2048, 0.7),
)

#: Maximum tolerated relative drop in ``speedup_pooled`` (0.3 = 30%).
DEFAULT_THRESHOLD = 0.3


def load_report(path: str) -> dict:
    """Load a ``BENCH_compact_engine.json`` report."""
    with open(path) as handle:
        return json.load(handle)


def _case_entries(entries: list[dict]) -> dict[tuple[str, int, float], dict]:
    return {(e["family"], int(e["width"]), float(e["rate"])): e for e in entries}


def compare_reports(fresh: list[dict], baseline: list[dict],
                    threshold: float = DEFAULT_THRESHOLD,
                    cases: tuple[tuple[str, int, float], ...] = ACCEPTANCE_CASES,
                    ) -> list[str]:
    """Failure messages for every gated case that regressed (empty = pass).

    ``fresh`` and ``baseline`` are lists of result dicts (the ``results``
    entries of a report).  A case fails when its fresh ``speedup_pooled``
    drops below ``(1 - threshold)`` times the committed value; a gated case
    missing from either side also fails, so the gate cannot rot silently.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    fresh_by_case = _case_entries(fresh)
    baseline_by_case = _case_entries(baseline)
    failures: list[str] = []
    for case in cases:
        family, width, rate = case
        label = f"{family} width={width} rate={rate}"
        fresh_entry = fresh_by_case.get(case)
        baseline_entry = baseline_by_case.get(case)
        if baseline_entry is None:
            failures.append(f"{label}: missing from the committed baseline report")
            continue
        if fresh_entry is None:
            failures.append(f"{label}: missing from the fresh run")
            continue
        committed = float(baseline_entry["speedup_pooled"])
        measured = float(fresh_entry["speedup_pooled"])
        floor = (1.0 - threshold) * committed
        if measured < floor:
            drop = 1.0 - measured / committed
            failures.append(
                f"{label}: speedup_pooled regressed {drop:.0%} "
                f"({committed:.2f}x committed -> {measured:.2f}x fresh, "
                f"floor {floor:.2f}x at threshold {threshold:.0%})")
    return failures


def quick_acceptance_config(backend: str = "numpy") -> BenchmarkConfig:
    """A reduced configuration that still measures the acceptance case.

    Only the sweep is reduced (one width, one rate); the per-case protocol
    (steps/warmup/repeats) matches the committed full run, because a lighter
    protocol measures systematically lower speedups (cold BLAS threads, page
    faults in the masked baseline's fresh allocations) and would trip the gate
    without any real regression.  ``backend`` selects the execution backend of
    the fresh measurement — ``--backend fused`` gates the fused backend
    against the committed ``numpy`` baseline (it must be at least as fast).
    """
    full = BenchmarkConfig()
    return BenchmarkConfig(widths=(2048,), rates=(0.7,), batch=full.batch,
                           steps=full.steps, repeats=full.repeats,
                           warmup=full.warmup, families=("row", "tile"),
                           backend=backend)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.delta",
        description="Fail on >threshold regression of speedup_pooled vs the "
                    "committed benchmark report.")
    parser.add_argument("--baseline", default="BENCH_compact_engine.json",
                        help="committed report to compare against")
    parser.add_argument("--fresh", default=None,
                        help="optional pre-computed fresh report; when omitted "
                             "a quick benchmark of the acceptance case is run")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="maximum tolerated relative regression (default 0.3)")
    parser.add_argument("--backend", default="numpy",
                        help="execution backend of the fresh measurement "
                             "(gate an accelerated backend against the "
                             "committed numpy baseline)")
    args = parser.parse_args(argv)

    baseline = load_report(args.baseline)
    if args.fresh is not None:
        fresh_entries = load_report(args.fresh)["results"]
    else:
        print("repro.bench.delta — quick re-measurement of the acceptance case "
              f"(backend={args.backend})")
        results = run_benchmark(quick_acceptance_config(args.backend), verbose=True)
        fresh_entries = [result.to_dict() for result in results]

    failures = compare_reports(fresh_entries, baseline["results"],
                               threshold=args.threshold)
    if failures:
        print("\nBENCHMARK REGRESSION:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nbenchmark delta check passed "
          f"(threshold {args.threshold:.0%}, baseline {args.baseline})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
