"""Benchmark-regression gate: compare a fresh run against a committed report.

``python -m repro.bench.delta`` runs a quick benchmark at the acceptance case
(width 2048, rate 0.7; the row, tile, e2e, head, serve, e2e_dist and
e2e_elastic families — the e2e LSTM trainer-step case derives hidden size 256
from that sweep, and the head family sprouts the 50k-vocabulary
``head_vocab`` adaptive-head case), loads
the committed ``BENCH_compact_engine.json`` and **fails (exit code 1) when
the freshly measured ``speedup_pooled`` regresses by more than 30%** relative
to the committed value.  This is the CI hook that keeps the pooled engine's headline
speedup honest across PRs without re-running the full sweep.

The ``e2e_dist`` data-parallel scaling case is gated on an *absolute* bar
instead (:func:`scaling_failures`): the sharded trainer must beat the
single-process step by at least ``DEFAULT_MIN_SCALING`` (1.5x at 2 shards).
Scaling beyond 1x is physically impossible when the workers plus the
coordinator outnumber the CPU cores, so the bar is enforced only when the
entry's recorded ``cpu_count >= shards + 1`` — the case is still *measured*
everywhere (catching determinism or crash regressions), but the absolute
bar reports a skip, not a failure, on machines too small to scale.

The ``e2e_elastic`` case is gated the same way (:func:`elastic_failures`):
one full worker-recovery cycle (teardown, respawn, fast-forward, replay)
must finish within ``DEFAULT_MAX_RECOVERY_S``, a missing case always fails,
and a CPU-starved box (``cpu_count < shards + 1``) skips the budget with a
printed note — there the respawn runs oversubscribed, so the wall-clock
bound would measure the machine, not the recovery path.

The ``head_vocab`` large-vocabulary case is gated on an absolute bar too
(:func:`adaptive_failures`): at 50k classes the adaptive loss head must beat
the exact dense head's wall-clock by at least ``DEFAULT_MIN_ADAPTIVE``.  The
case runs in a single process, so no CPU-count skip applies — a missing
entry always fails.

The ``serve`` family is gated on an absolute *dominance* bar
(:func:`serving_failures`): the micro-batched frozen engine must beat the
per-request dense baseline on **both** p99 latency and throughput under the
same closed-loop load.  Entries stamped ``cpu_gated`` (a single-core box,
where the baseline's concurrent request threads serialise and the comparison
measures the machine) skip the bar with a printed note, exactly like the
distributed bars; a gated case missing from the fresh run always fails.

All three absolute gates prefer the entry's recorded ``cpu_gated`` stamp
(written by the harness at measurement time) and fall back to recomputing
``cpu_count < shards + 1`` for reports that predate the stamp.

Usage::

    PYTHONPATH=src python -m repro.bench.delta                      # run + compare
    PYTHONPATH=src python -m repro.bench.delta --fresh new.json     # compare two reports
    PYTHONPATH=src python -m repro.bench.delta --threshold 0.2      # stricter gate

The comparison logic (:func:`compare_reports`) is pure and unit-tested; the
measurement side reuses :func:`repro.bench.harness.run_benchmark` with a
reduced quick configuration.
"""

from __future__ import annotations

import argparse
import json

from repro.backends import available_backends
from repro.bench.harness import BenchmarkConfig, run_benchmark, write_report

#: The acceptance cases gated by the delta check: (family, width, rate).
#: ``head`` gates the sampled loss head (vocab projection + cross-entropy);
#: ``e2e_lstm`` gates whole LSTM trainer steps (tiled recurrent site, sampled
#: head, sparse optimizer) — the width is the e2e case's derived hidden size,
#: ``min(max(widths) // 2, 256)``.
ACCEPTANCE_CASES: tuple[tuple[str, int, float], ...] = (
    ("row", 2048, 0.7),
    ("tile", 2048, 0.7),
    ("head", 2048, 0.7),
    ("head_vocab", 50000, 0.7),
    ("e2e_lstm", 256, 0.7),
)

#: Maximum tolerated relative drop in ``speedup_pooled`` (0.3 = 30%).
DEFAULT_THRESHOLD = 0.3

#: Data-parallel scaling cases gated on an absolute bar: (family, width,
#: rate).  The width is the e2e_dist case's derived hidden size,
#: ``min(max(widths), 512)``.
SCALING_CASES: tuple[tuple[str, int, float], ...] = (
    ("e2e_dist", 512, 0.7),
)

#: Minimum single-process / sharded step-time ratio the e2e_dist case must
#: reach at 2 shards (enforced only on machines with enough cores).
DEFAULT_MIN_SCALING = 1.5

#: Elastic-recovery cases gated on an absolute wall-clock budget: (family,
#: width, rate).  The width is the e2e_elastic case's derived hidden size,
#: ``min(max(widths), 512)``.
ELASTIC_CASES: tuple[tuple[str, int, float], ...] = (
    ("e2e_elastic", 512, 0.7),
)

#: Maximum tolerated wall-clock of one full worker-recovery cycle (teardown,
#: respawn, fast-forward, replay).  Respawning a couple of workers costs
#: single-digit seconds; a cycle this long means the recovery path regressed
#: into a hang (e.g. a barrier that waits out its full timeout).
DEFAULT_MAX_RECOVERY_S = 30.0

#: Large-vocabulary adaptive-head cases gated on an absolute bar: (family,
#: width, rate).  The width is the swept vocabulary size.
ADAPTIVE_CASES: tuple[tuple[str, int, float], ...] = (
    ("head_vocab", 50000, 0.7),
)

#: Minimum dense / adaptive wall-clock ratio (``speedup_pooled`` of the
#: ``head_vocab`` entry) the adaptive loss head must reach at 50k classes.
#: Measured headroom: the interleaved best-of protocol lands ~1.7x on a
#: loaded 4-core box; the bar sits below that so machine noise cannot trip
#: it while a factorization regression (e.g. the head silently falling back
#: to the dense path) still fails clearly.
DEFAULT_MIN_ADAPTIVE = 1.3

#: Serving cases gated on the dominance bar: (family, width, rate).  The
#: widths are the serve cases' derived hidden sizes — ``min(max(widths),
#: 2048)`` for the MLP, ``min(max(widths) // 2, 256)`` for the LSTM.
SERVE_CASES: tuple[tuple[str, int, float], ...] = (
    ("serve_mlp", 2048, 0.7),
    ("serve_lstm", 256, 0.7),
)


def load_report(path: str) -> dict:
    """Load a ``BENCH_compact_engine.json`` report (clear error on bad shape)."""
    with open(path) as handle:
        report = json.load(handle)
    if not isinstance(report, dict) or "results" not in report:
        raise ValueError(
            f"{path} is not a benchmark report: expected a JSON object with a "
            f"'results' list (was it written by `python -m repro.bench`?)")
    return report


def _case_entries(entries: list[dict],
                  source: str) -> dict[tuple[str, int, float], dict]:
    """Index result entries by (family, width, rate), failing clearly on
    malformed entries instead of surfacing a raw ``KeyError``."""
    indexed: dict[tuple[str, int, float], dict] = {}
    for position, entry in enumerate(entries):
        missing = [key for key in ("family", "width", "rate", "speedup_pooled")
                   if key not in entry]
        if missing:
            raise ValueError(
                f"{source} report entry #{position} is missing required "
                f"fields {missing}; each result needs family/width/rate/"
                f"speedup_pooled (regenerate the report with "
                f"`python -m repro.bench`)")
        indexed[(entry["family"], int(entry["width"]),
                 float(entry["rate"]))] = entry
    return indexed


def compare_reports(fresh: list[dict], baseline: list[dict],
                    threshold: float = DEFAULT_THRESHOLD,
                    cases: tuple[tuple[str, int, float], ...] = ACCEPTANCE_CASES,
                    require_backend: str | None = None,
                    ) -> list[str]:
    """Failure messages for every gated case that regressed (empty = pass).

    ``fresh`` and ``baseline`` are lists of result dicts (the ``results``
    entries of a report).  A case fails when its fresh ``speedup_pooled``
    drops below ``(1 - threshold)`` times the committed value; a gated case
    missing from either side also fails, so the gate cannot rot silently.
    Malformed entries raise a :class:`ValueError` naming the offending report
    and fields instead of a raw ``KeyError``.

    ``require_backend`` asserts which backend the *fresh* entries were
    measured with — used when gating a pre-computed ``--fresh`` report, where
    a report produced with a different ``--backend`` would otherwise be
    compared silently.  (The *baseline* side is deliberately not constrained:
    gating an accelerated backend against the committed numpy baseline is the
    intended use.)
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    fresh_by_case = _case_entries(fresh, "fresh")
    baseline_by_case = _case_entries(baseline, "baseline")
    failures: list[str] = []
    for case in cases:
        family, width, rate = case
        label = f"{family} width={width} rate={rate}"
        fresh_entry = fresh_by_case.get(case)
        baseline_entry = baseline_by_case.get(case)
        if baseline_entry is None:
            failures.append(f"{label}: missing from the committed baseline report")
            continue
        if fresh_entry is None:
            failures.append(f"{label}: missing from the fresh run")
            continue
        if require_backend is not None:
            fresh_backend = fresh_entry.get("backend")
            if fresh_backend is None:
                # An entry with no backend field is ambiguous — failing loudly
                # beats gating the wrong backend's measurements silently.
                failures.append(
                    f"{label}: the fresh report entry does not record which "
                    f"backend it measured; the gate expects a "
                    f"{require_backend!r} measurement (regenerate the report "
                    f"with `python -m repro.bench --backend "
                    f"{require_backend}`)")
                continue
            if fresh_backend != require_backend:
                failures.append(
                    f"{label}: backend mismatch — the gate expected a fresh "
                    f"{require_backend!r} measurement but the report entry ran "
                    f"{fresh_backend!r} (re-run the fresh report with "
                    f"--backend {require_backend})")
                continue
        committed = float(baseline_entry["speedup_pooled"])
        measured = float(fresh_entry["speedup_pooled"])
        floor = (1.0 - threshold) * committed
        if measured < floor:
            drop = 1.0 - measured / committed
            failures.append(
                f"{label}: speedup_pooled regressed {drop:.0%} "
                f"({committed:.2f}x committed -> {measured:.2f}x fresh, "
                f"floor {floor:.2f}x at threshold {threshold:.0%})")
    return failures


def _entry_cpu_gated(entry: dict) -> bool:
    """Whether the entry was measured on a machine too small for its bar.

    Prefers the ``cpu_gated`` stamp the harness writes at measurement time;
    reports that predate the stamp fall back to the original
    ``cpu_count < shards + 1`` recomputation.
    """
    stamp = entry.get("cpu_gated")
    if stamp is not None:
        return bool(stamp)
    shards = entry.get("shards")
    cpu_count = entry.get("cpu_count")
    if shards and cpu_count:
        return int(cpu_count) < int(shards) + 1
    return False


def scaling_failures(entries: list[dict],
                     min_scaling: float = DEFAULT_MIN_SCALING,
                     cases: tuple[tuple[str, int, float], ...] = SCALING_CASES,
                     ) -> tuple[list[str], list[str]]:
    """Absolute data-parallel scaling gate; returns ``(failures, skips)``.

    For each gated ``(family, width, rate)`` case, the fresh entry's
    ``speedup_pooled`` (single-process / sharded step time for ``e2e_dist``)
    must reach ``min_scaling``.  A machine whose recorded ``cpu_count`` is
    below ``shards + 1`` (workers plus coordinator) cannot scale past 1x no
    matter how good the all-reduce is, so such entries produce a *skip*
    message instead of a failure — honest on a 1-core dev box, enforced on
    multi-core CI.  A gated case missing from ``entries``, or one that never
    recorded its ``shards``/``cpu_count``, fails: the gate must not rot
    silently.
    """
    if min_scaling <= 0:
        raise ValueError(f"min_scaling must be positive, got {min_scaling}")
    indexed = _case_entries(entries, "fresh")
    failures: list[str] = []
    skips: list[str] = []
    for case in cases:
        family, width, rate = case
        label = f"{family} width={width} rate={rate}"
        entry = indexed.get(case)
        if entry is None:
            failures.append(f"{label}: missing from the fresh run "
                            f"(data-parallel scaling case not measured)")
            continue
        shards = entry.get("shards")
        cpu_count = entry.get("cpu_count")
        if not shards or not cpu_count:
            failures.append(
                f"{label}: entry does not record shards/cpu_count, so the "
                f"scaling gate cannot tell a regression from a too-small "
                f"machine (regenerate the report with `python -m repro.bench`)")
            continue
        measured = float(entry["speedup_pooled"])
        if _entry_cpu_gated(entry):
            skips.append(
                f"{label}: measured {measured:.2f}x at {shards} shards, but "
                f"only {cpu_count} CPU core(s) — the {min_scaling:.1f}x bar "
                f"needs at least {int(shards) + 1} cores (workers + "
                f"coordinator) to be physically reachable; not enforced")
            continue
        if measured < min_scaling:
            failures.append(
                f"{label}: data-parallel scaling {measured:.2f}x at {shards} "
                f"shards is below the {min_scaling:.1f}x bar "
                f"(cpu_count={cpu_count})")
    return failures, skips


def elastic_failures(entries: list[dict],
                     max_recovery_s: float = DEFAULT_MAX_RECOVERY_S,
                     cases: tuple[tuple[str, int, float], ...] = ELASTIC_CASES,
                     ) -> tuple[list[str], list[str]]:
    """Elastic-recovery gate; returns ``(failures, skips)``.

    For each gated ``(family, width, rate)`` case, the fresh entry's
    ``recover`` mode (one full teardown -> respawn -> replay cycle of the
    distributed trainer) must complete within ``max_recovery_s``.  On a
    machine whose recorded ``cpu_count`` is below ``shards + 1`` the respawn
    runs oversubscribed and can legitimately blow the budget, so such
    entries produce a *skip* message instead of a failure — the case is
    still measured there, which is what exercises the recovery machinery.
    A gated case missing from ``entries``, or one without recorded
    ``recover``/``step`` timings or ``shards``/``cpu_count``, fails: the
    gate must not rot silently.
    """
    if max_recovery_s <= 0:
        raise ValueError(
            f"max_recovery_s must be positive, got {max_recovery_s}")
    indexed = _case_entries(entries, "fresh")
    failures: list[str] = []
    skips: list[str] = []
    for case in cases:
        family, width, rate = case
        label = f"{family} width={width} rate={rate}"
        entry = indexed.get(case)
        if entry is None:
            failures.append(f"{label}: missing from the fresh run "
                            f"(elastic recovery case not measured)")
            continue
        mode_ms = entry.get("mode_ms") or {}
        if "recover" not in mode_ms or "step" not in mode_ms:
            failures.append(
                f"{label}: entry does not record recover/step timings "
                f"(regenerate the report with `python -m repro.bench`)")
            continue
        shards = entry.get("shards")
        cpu_count = entry.get("cpu_count")
        if not shards or not cpu_count:
            failures.append(
                f"{label}: entry does not record shards/cpu_count, so the "
                f"recovery gate cannot tell a regression from a too-small "
                f"machine (regenerate the report with `python -m repro.bench`)")
            continue
        recover_s = float(mode_ms["recover"]) / 1000.0
        if _entry_cpu_gated(entry):
            skips.append(
                f"{label}: recovery cycle measured {recover_s:.1f}s at "
                f"{shards} shards, but only {cpu_count} CPU core(s) — the "
                f"respawn runs oversubscribed, so the "
                f"{max_recovery_s:.0f}s budget is not enforced")
            continue
        if recover_s > max_recovery_s:
            failures.append(
                f"{label}: one worker-recovery cycle took {recover_s:.1f}s "
                f"at {shards} shards, over the {max_recovery_s:.0f}s budget "
                f"(cpu_count={cpu_count}) — the elastic respawn path "
                f"regressed")
    return failures, skips


def serving_failures(entries: list[dict],
                     cases: tuple[tuple[str, int, float], ...] = SERVE_CASES,
                     ) -> tuple[list[str], list[str]]:
    """Serving dominance gate; returns ``(failures, skips)``.

    For each gated ``(family, width, rate)`` case, the fresh entry's pooled
    (micro-batched engine) load report must beat the masked (per-request
    dense) report on **both** p99 latency and throughput — batching that
    wins throughput by giving up tail latency, or vice versa, fails.
    Entries stamped ``cpu_gated`` (single-core box: the baseline's
    concurrent request threads serialise, so the comparison measures the
    machine) produce a *skip* instead.  A gated case missing from
    ``entries``, or one without recorded ``serving`` load reports, fails:
    the gate must not rot silently.
    """
    indexed = _case_entries(entries, "fresh")
    failures: list[str] = []
    skips: list[str] = []
    for case in cases:
        family, width, rate = case
        label = f"{family} width={width} rate={rate}"
        entry = indexed.get(case)
        if entry is None:
            failures.append(f"{label}: missing from the fresh run "
                            f"(serving case not measured)")
            continue
        serving = entry.get("serving") or {}
        masked = serving.get("masked") or {}
        pooled = serving.get("pooled") or {}
        required = ("p99_ms", "throughput_rps")
        if any(key not in masked or key not in pooled for key in required):
            failures.append(
                f"{label}: entry does not record masked/pooled serving load "
                f"reports (regenerate the report with `python -m repro.bench "
                f"--families serve`)")
            continue
        summary = (
            f"p99 {float(masked['p99_ms']):.2f}ms -> "
            f"{float(pooled['p99_ms']):.2f}ms, throughput "
            f"{float(masked['throughput_rps']):.0f} -> "
            f"{float(pooled['throughput_rps']):.0f} req/s")
        if _entry_cpu_gated(entry):
            skips.append(
                f"{label}: {summary}, but measured on "
                f"{entry.get('cpu_count')} CPU core(s) — the per-request "
                f"baseline's concurrent request threads serialise there, so "
                f"the dominance bar would measure the machine; not enforced")
            continue
        problems = []
        if float(pooled["p99_ms"]) >= float(masked["p99_ms"]):
            problems.append("p99 latency")
        if float(pooled["throughput_rps"]) <= float(masked["throughput_rps"]):
            problems.append("throughput")
        if problems:
            failures.append(
                f"{label}: the micro-batched engine does not beat the "
                f"per-request dense baseline on {' or '.join(problems)} "
                f"({summary})")
    return failures, skips


def adaptive_failures(entries: list[dict],
                      min_speedup: float = DEFAULT_MIN_ADAPTIVE,
                      cases: tuple[tuple[str, int, float], ...] = ADAPTIVE_CASES,
                      ) -> list[str]:
    """Absolute large-vocabulary adaptive-head gate; returns failures.

    For each gated ``(family, width, rate)`` case, the fresh entry's
    ``speedup_pooled`` (dense / adaptive loss-head step time for
    ``head_vocab``) must reach ``min_speedup``.  The case runs in a single
    process, so unlike the distributed/serving bars there is no CPU-count
    skip — a gated case missing from ``entries`` always fails, keeping the
    gate from rotting silently.
    """
    if min_speedup <= 0:
        raise ValueError(f"min_speedup must be positive, got {min_speedup}")
    indexed = _case_entries(entries, "fresh")
    failures: list[str] = []
    for case in cases:
        family, width, rate = case
        label = f"{family} width={width} rate={rate}"
        entry = indexed.get(case)
        if entry is None:
            failures.append(f"{label}: missing from the fresh run "
                            f"(large-vocabulary adaptive head case not "
                            f"measured)")
            continue
        measured = float(entry["speedup_pooled"])
        if measured < min_speedup:
            failures.append(
                f"{label}: the adaptive loss head beats the dense head by "
                f"only {measured:.2f}x at vocab={width}, below the "
                f"{min_speedup:.1f}x bar — the two-level factorization "
                f"stopped paying for itself")
    return failures


def quick_acceptance_config(backend: str = "numpy") -> BenchmarkConfig:
    """A reduced configuration that still measures the acceptance case.

    Only the sweep is reduced (one width, one rate); the per-case protocol
    (steps/warmup/repeats) matches the committed full run, because a lighter
    protocol measures systematically lower speedups (cold BLAS threads, page
    faults in the masked baseline's fresh allocations) and would trip the gate
    without any real regression.  ``backend`` selects the execution backend of
    the fresh measurement — ``--backend fused`` gates the fused backend
    against the committed ``numpy`` baseline (it must be at least as fast).
    """
    full = BenchmarkConfig()
    return BenchmarkConfig(widths=(2048,), rates=(0.7,), batch=full.batch,
                           steps=full.steps, repeats=full.repeats,
                           warmup=full.warmup,
                           families=("row", "tile", "e2e", "head", "serve",
                                     "e2e_dist", "e2e_elastic"),
                           # Only the gated 50k vocabulary: the head family
                           # sprouts one head_vocab case per entry, and the
                           # default 8192 point would double the dense
                           # baseline's cost without being gated.
                           head_vocab=(50_000,),
                           backend=backend)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.delta",
        description="Fail on >threshold regression of speedup_pooled vs the "
                    "committed benchmark report.")
    parser.add_argument("--baseline", default="BENCH_compact_engine.json",
                        help="committed report to compare against")
    parser.add_argument("--fresh", default=None,
                        help="optional pre-computed fresh report; when omitted "
                             "a quick benchmark of the acceptance case is run")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="maximum tolerated relative regression (default 0.3)")
    parser.add_argument("--min-scaling", type=float, default=DEFAULT_MIN_SCALING,
                        help="absolute data-parallel scaling bar of the "
                             "e2e_dist case (default 1.5; only enforced when "
                             "the entry's recorded cpu_count >= shards + 1)")
    parser.add_argument("--min-adaptive-speedup", type=float,
                        default=DEFAULT_MIN_ADAPTIVE,
                        help="absolute dense/adaptive wall-clock bar of the "
                             "head_vocab case at 50k classes (default 1.3)")
    parser.add_argument("--max-recovery-s", type=float,
                        default=DEFAULT_MAX_RECOVERY_S,
                        help="wall-clock budget of one e2e_elastic worker-"
                             "recovery cycle (default 30s; only enforced "
                             "when the entry's recorded cpu_count >= "
                             "shards + 1)")
    parser.add_argument("--backend", default="numpy",
                        help="execution backend of the fresh measurement "
                             "(gate an accelerated backend against the "
                             "committed numpy baseline)")
    parser.add_argument("--write-fresh", default=None, metavar="PATH",
                        help="also write the freshly measured acceptance "
                             "report to PATH (for CI artifacts); requires a "
                             "measured run, i.e. incompatible with --fresh")
    args = parser.parse_args(argv)
    if args.backend not in available_backends():
        parser.error(
            f"unknown execution backend {args.backend!r}; registered backends: "
            f"{', '.join(available_backends())}")
    if args.write_fresh is not None and args.fresh is not None:
        parser.error("--write-fresh requires a measured run; it cannot be "
                     "combined with a pre-computed --fresh report")

    baseline = load_report(args.baseline)
    if args.fresh is not None:
        # A pre-computed fresh report must actually have been measured with
        # the backend being gated — compare_reports checks per gated entry.
        fresh_entries = load_report(args.fresh)["results"]
    else:
        print("repro.bench.delta — quick re-measurement of the acceptance case "
              f"(backend={args.backend})")
        config = quick_acceptance_config(args.backend)
        results = run_benchmark(config, verbose=True)
        fresh_entries = [result.to_dict() for result in results]
        if args.write_fresh is not None:
            path = write_report(results, config, path=args.write_fresh)
            print(f"fresh acceptance report written to {path}")

    failures = compare_reports(fresh_entries, baseline["results"],
                               threshold=args.threshold,
                               require_backend=args.backend)
    scaling, skips = scaling_failures(fresh_entries,
                                      min_scaling=args.min_scaling)
    for skip in skips:
        print(f"\nscaling gate skipped — {skip}")
    failures += scaling
    elastic, elastic_skips = elastic_failures(
        fresh_entries, max_recovery_s=args.max_recovery_s)
    for skip in elastic_skips:
        print(f"\nelastic gate skipped — {skip}")
    failures += elastic
    serving, serving_skips = serving_failures(fresh_entries)
    for skip in serving_skips:
        print(f"\nserving gate skipped — {skip}")
    failures += serving
    failures += adaptive_failures(fresh_entries,
                                  min_speedup=args.min_adaptive_speedup)
    if failures:
        print("\nBENCHMARK REGRESSION:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nbenchmark delta check passed "
          f"(threshold {args.threshold:.0%}, baseline {args.baseline})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
