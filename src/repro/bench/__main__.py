"""CLI entry point: ``python -m repro.bench``.

Times mask-based dropout against the compact pattern-execution engine across
layer widths and dropout rates, prints a comparison table and writes
``BENCH_compact_engine.json`` (see :mod:`repro.bench.harness`).
"""

from __future__ import annotations

import argparse

from repro.backends import available_backends
from repro.bench.harness import BenchmarkConfig, run_benchmark, write_report
from repro.execution import LOSS_HEAD_MODES, OPTIMIZER_MODES, RECURRENT_MODES


def parse_args(argv: list[str] | None = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Wall-clock benchmark of the compact pattern-execution engine.")
    parser.add_argument("--widths", type=int, nargs="+", default=[512, 1024, 2048],
                        help="layer widths (out_features) to benchmark")
    parser.add_argument("--rates", type=float, nargs="+", default=[0.5, 0.7],
                        help="target dropout rates")
    parser.add_argument("--batch", type=int, default=128, help="mini-batch size")
    parser.add_argument("--steps", type=int, default=12,
                        help="timed hot-path steps per repeat")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repeats per case (best repeat is reported)")
    parser.add_argument("--warmup", type=int, default=2,
                        help="untimed warm-up steps per repeat")
    parser.add_argument("--tile", type=int, default=32, help="TDP tile edge")
    parser.add_argument("--families", nargs="+",
                        default=["row", "tile", "e2e", "head", "serve",
                                 "e2e_dist", "e2e_elastic"],
                        help="benchmark families to time (lstm_rec = one "
                             "recurrent projection, head = one loss-head "
                             "step, e2e = whole trainer steps, serve = "
                             "per-request dense inference vs the "
                             "micro-batched frozen engine, e2e_dist = "
                             "data-parallel scaling of one MLP trainer step, "
                             "e2e_elastic = distributed step + full "
                             "worker-recovery cycle, head_vocab = dense vs "
                             "sampled vs adaptive loss head across the "
                             "--head-vocab vocabulary sweep; the head family "
                             "sprouts it automatically)")
    parser.add_argument("--head-vocab", type=int, nargs="+",
                        default=[8192, 50000],
                        help="vocabulary sizes of the head_vocab large-vocab "
                             "loss-head cases (each runs dense, sampled and "
                             "adaptive heads at a fixed hidden width)")
    parser.add_argument("--e2e-dtype", default="float64",
                        choices=["float64", "float32"],
                        help="floating dtype of the e2e trainer-step cases")
    parser.add_argument("--backend", default="numpy",
                        help="execution backend of the compact/pooled modes "
                             "(see --list-backends)")
    parser.add_argument("--recurrent", default="tiled",
                        choices=list(RECURRENT_MODES),
                        help="recurrent-projection execution of the e2e LSTM "
                             "case (tiled = gate-aligned DropConnect site)")
    parser.add_argument("--loss-head", default="sampled",
                        choices=list(LOSS_HEAD_MODES),
                        help="loss head of the e2e LSTM case's compact/pooled "
                             "modes (sampled = class-pruned softmax; the "
                             "masked baseline always pays the dense head)")
    parser.add_argument("--optimizer", default="sparse",
                        choices=list(OPTIMIZER_MODES),
                        help="optimizer of the e2e cases' compact/pooled "
                             "modes (sparse = the dirty-region SparseSGD, "
                             "bit-identical to dense; the masked baseline "
                             "always runs the dense update)")
    parser.add_argument("--list-backends", action="store_true",
                        help="print the registered execution backends and exit")
    parser.add_argument("--shards", type=int, default=1,
                        help="worker processes to shard the cases across "
                             "(one BLAS thread domain each)")
    parser.add_argument("--dist-shards", type=int, default=2,
                        help="data-parallel worker count of the e2e_dist "
                             "scaling case")
    parser.add_argument("--serve-requests", type=int, default=10000,
                        help="requests the serve family's MLP case drives "
                             "through each mode (the LSTM case runs a tenth)")
    parser.add_argument("--serve-concurrency", type=int, default=8,
                        help="in-flight requests of the serve family's "
                             "closed-loop driver (and its micro-batch bound)")
    parser.add_argument("--output", default="BENCH_compact_engine.json",
                        help="path of the JSON report")
    parser.add_argument("--quick", action="store_true",
                        help="small fast configuration (smoke testing)")
    args = parser.parse_args(argv)
    # Fail fast in the CLI on unknown backends: validated here (not via
    # argparse choices frozen at import) so plugin backends registered before
    # parse_args are selectable, and the error names every registered one.
    if not args.list_backends and args.backend not in available_backends():
        parser.error(
            f"unknown execution backend {args.backend!r}; registered backends: "
            f"{', '.join(available_backends())} (see --list-backends)")
    # Same treatment for families: the error names every valid family instead
    # of argparse's terse choices dump, mirroring the backend behaviour.
    unknown = [family for family in args.families
               if family not in BenchmarkConfig.FAMILIES]
    if unknown:
        parser.error(
            f"unknown benchmark families: {', '.join(unknown)}; "
            f"valid families: {', '.join(BenchmarkConfig.FAMILIES)}")
    return args


def main(argv: list[str] | None = None) -> int:
    args = parse_args(argv)
    if args.list_backends:
        for name in available_backends():
            print(name)
        return 0
    if args.quick:
        config = BenchmarkConfig(widths=(256,), rates=(0.5,), batch=32, steps=3,
                                 repeats=1, warmup=1, families=tuple(args.families),
                                 head_vocab=tuple(args.head_vocab),
                                 e2e_dtype=args.e2e_dtype, backend=args.backend,
                                 recurrent=args.recurrent,
                                 loss_head=args.loss_head,
                                 optimizer=args.optimizer,
                                 shards=args.shards,
                                 dist_shards=args.dist_shards,
                                 serve_requests=min(args.serve_requests, 300),
                                 serve_concurrency=min(args.serve_concurrency, 4),
                                 output=args.output)
    else:
        config = BenchmarkConfig(widths=tuple(args.widths), rates=tuple(args.rates),
                                 batch=args.batch, steps=args.steps,
                                 repeats=args.repeats, warmup=args.warmup,
                                 tile=args.tile, families=tuple(args.families),
                                 head_vocab=tuple(args.head_vocab),
                                 e2e_dtype=args.e2e_dtype, backend=args.backend,
                                 recurrent=args.recurrent,
                                 loss_head=args.loss_head,
                                 optimizer=args.optimizer,
                                 shards=args.shards,
                                 dist_shards=args.dist_shards,
                                 serve_requests=args.serve_requests,
                                 serve_concurrency=args.serve_concurrency,
                                 output=args.output)
    print("repro.bench — compact pattern-execution engine vs mask-based dropout")
    print(f"batch={config.batch} steps={config.steps} repeats={config.repeats} "
          f"backend={config.backend} shards={config.shards} "
          f"(best repeat reported; per-step ms)\n")
    results = run_benchmark(config, verbose=True)
    path = write_report(results, config)
    # The e2e_elastic "headline" is a recovery cost (recover/step time), not
    # a speedup over a baseline — summarised on its own line below.
    headline = [result for result in results
                if result.family != "e2e_elastic"]
    if headline:
        worst = min(headline, key=lambda result: result.speedup_pooled)
        best = max(headline, key=lambda result: result.speedup_pooled)
        print(f"\npooled-engine speedup over masked baseline: "
              f"min {worst.speedup_pooled:.2f}x "
              f"(width={worst.width}, rate={worst.rate}, family={worst.family}), "
              f"max {best.speedup_pooled:.2f}x "
              f"(width={best.width}, rate={best.rate}, family={best.family})")
    for result in results:
        if result.family == "e2e_elastic":
            print(f"elastic recovery cycle at {result.shards} shards: "
                  f"{result.mode_ms['recover']:.0f}ms "
                  f"(~{result.speedup_pooled:.0f} ordinary steps)")
        if result.family.startswith("serve_") and result.serving:
            masked = result.serving["masked"]
            pooled = result.serving["pooled"]
            print(f"{result.family}: p99 {masked['p99_ms']:.2f}ms -> "
                  f"{pooled['p99_ms']:.2f}ms, throughput "
                  f"{masked['throughput_rps']:.0f} -> "
                  f"{pooled['throughput_rps']:.0f} req/s "
                  f"(occupancy {result.serving['mean_occupancy']:.1f})")
    print(f"report written to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
