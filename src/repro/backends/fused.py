"""Fused execution backend: tile GEMMs grouped into single stacked-GEMM calls.

The reference :class:`~repro.backends.numpy_backend.NumpyBackend` executes a
:class:`~repro.dropout.engine.TileExecutionPlan` with one Python-level GEMM
per surviving tile-row group.  For the TDP patterns this repo trains (tile
32, periods up to 16) a 2048-wide layer has up to 64 tile-rows, so the hot
path pays up to 64 interpreter round-trips, 64 input gathers and 64
skinny-output BLAS calls (``N = 32``) per pass.

The key structural fact this backend exploits: within one ``(dp, bias)``
pattern the surviving tiles of tile-row ``r`` are the tile columns ``c`` with
``(r * grid_cols + c) % dp == bias`` — a residue class whose phase depends
only on ``r % dp``-ish arithmetic — so the plan's tile-rows fall into **at
most ``dp`` classes with an identical column set**.  All rows of a class are
concatenated into one GEMM::

    out[:, rows] = x[:, cols] @ weight[ix_(rows, cols)].T

which turns ~``grid_rows`` skinny GEMMs into ~``dp`` well-shaped ones,
gathers each distinct column set of ``x`` *once* instead of once per
tile-row, and scatters each class with a single fancy-index write.  The
backward passes reuse the same classes.  Classes with a single member (rare:
more periods than tile-rows) fall back to the reference per-group loop,
which also covers the ``dp == 1`` plan that is already one contiguous view.

Results are bit-identical to the reference backend for the forward pass and
input gradient up to floating-point summation order (the property tests in
``tests/backends/test_backends.py`` pin down agreement to tight tolerances,
and exact equality of the sparsity structure).

The fused layout of a plan is computed once and cached per pattern identity
(plans are themselves interned per process, so the cache stays small).

Optionally the backend dispatches each fused class GEMM — forward and both
backward passes — through the :mod:`repro.gpu` roofline cost model and
accumulates the *predicted* accelerator execution time of the work it ran;
:meth:`FusedBackend.stats` then reports ``predicted_ms`` next to the call
counters, which lets the experiment records compare measured CPU wall-clock
against modelled GPU time.  Select it as the registered ``"fused-predict"``
backend (a :class:`FusedBackend` preconfigured with the paper's GTX-1080Ti
device spec), or construct ``FusedBackend(predict_device=...)`` directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends.numpy_backend import NumpyBackend

#: Safety cap on cached fused layouts (patterns are interned, so in practice
#: the cache holds a few dozen entries; the cap only guards pathological use).
_FUSED_CACHE_CAP = 4096


@dataclass(frozen=True)
class _FusedClass:
    """All tile-row groups of one plan sharing an identical column set."""

    rows: np.ndarray          # concatenated row indices of the class's groups
    cols: np.ndarray          # the shared column indices
    #: Zero-copy selectors when the indices form one contiguous run.
    rows_slice: slice | None
    cols_slice: slice | None

    @property
    def row_selector(self):
        return self.rows_slice if self.rows_slice is not None else self.rows

    @property
    def col_selector(self):
        return self.cols_slice if self.cols_slice is not None else self.cols

    def weight_selector(self):
        """The cheapest 2-D selector of the class's weight block."""
        if self.rows_slice is not None and self.cols_slice is not None:
            return self.rows_slice, self.cols_slice
        return np.ix_(self.rows, self.cols)


@dataclass(frozen=True)
class _FusedPlanLayout:
    """Concatenated-GEMM execution layout of one :class:`TileExecutionPlan`."""

    classes: tuple[_FusedClass, ...]
    leftovers: tuple  # TileRowGroup objects executed by the reference loop


def _contiguous_slice(indices: np.ndarray) -> slice | None:
    if len(indices) and indices[-1] - indices[0] + 1 == len(indices):
        return slice(int(indices[0]), int(indices[-1]) + 1)
    return None


def _fuse_plan(plan) -> _FusedPlanLayout:
    # Built on the engine's canonical identical-column-set partition, so the
    # fused classes and the recurrent window context's classes always agree.
    from repro.dropout.engine import plan_column_groups

    classes: list[_FusedClass] = []
    leftovers: list = []
    for groups in plan_column_groups(plan):
        if len(groups) < 2:
            # A lone class member gains nothing from re-gathering; the
            # reference loop also keeps the view fast path of slice columns.
            leftovers.extend(groups)
            continue
        rows = np.concatenate([np.arange(g.row_start, g.row_stop) for g in groups])
        cols = np.asarray(groups[0].col_indices)
        classes.append(_FusedClass(rows=rows, cols=cols,
                                   rows_slice=_contiguous_slice(rows),
                                   cols_slice=_contiguous_slice(cols)))
    return _FusedPlanLayout(classes=tuple(classes), leftovers=tuple(leftovers))


class FusedBackend(NumpyBackend):
    """Concatenated-GEMM execution of tile plans (reference loop elsewhere).

    Parameters
    ----------
    predict_device:
        Optional :class:`~repro.gpu.device.DeviceSpec`.  When given, every
        fused class GEMM is also dispatched through the
        :class:`~repro.gpu.gemm.GemmCostModel` roofline model and the
        predicted accelerator time accumulates in :attr:`predicted_ms`
        (reported by :meth:`stats`).  ``None`` skips the modelling entirely.
    """

    name = "fused"

    def __init__(self, predict_device=None):
        super().__init__()
        self._layouts: dict[tuple, _FusedPlanLayout] = {}
        self.predict_device = predict_device
        self.predicted_ms = 0.0
        self._cost_model = None

    # ------------------------------------------------------------------
    # fused layout cache
    # ------------------------------------------------------------------
    def layout_for(self, plan) -> _FusedPlanLayout:
        """The fused layout of ``plan`` (computed once per plan identity)."""
        key = plan.identity
        layout = self._layouts.get(key)
        if layout is None:
            if len(self._layouts) >= _FUSED_CACHE_CAP:
                self._layouts.clear()
            layout = _fuse_plan(plan)
            self._layouts[key] = layout
            self.count("plan_fuse")
        return layout

    # ------------------------------------------------------------------
    # tile-plan execution
    # ------------------------------------------------------------------
    def tile_forward(self, plan, x, weight, out) -> None:
        layout = self.layout_for(plan)
        self.count("tile_forward")
        self._classes_forward(layout.classes, x, weight, out)
        if layout.leftovers:
            self.count("tile_group_gemm", len(layout.leftovers))
            self._groups_forward(layout.leftovers, x, weight, out)

    def tile_backward_input(self, plan, grad, weight, grad_x,
                            scale: float = 1.0) -> None:
        layout = self.layout_for(plan)
        self.count("tile_backward_input")
        self._classes_backward_input(layout.classes, grad, weight, grad_x, scale)
        if layout.leftovers:
            self.count("tile_group_gemm", len(layout.leftovers))
            self._groups_backward_input(layout.leftovers, grad, weight, grad_x,
                                        scale)

    def tile_backward_weight(self, plan, grad, x, grad_weight,
                             scale: float = 1.0) -> None:
        layout = self.layout_for(plan)
        self.count("tile_backward_weight")
        self._classes_backward_weight(layout.classes, grad, x, grad_weight, scale)
        if layout.leftovers:
            self.count("tile_group_gemm", len(layout.leftovers))
            self._groups_backward_weight(layout.leftovers, grad, x, grad_weight,
                                         scale)

    # ------------------------------------------------------------------
    # per-class loop bodies (shared with the stacked backend's singletons)
    # ------------------------------------------------------------------
    def _classes_forward(self, classes, x, weight, out) -> None:
        for cls in classes:
            self.count("fused_gemm")
            xc = x[:, cls.col_selector]                      # one gather per class
            wc = weight[cls.weight_selector()]               # (R_total, C)
            out[:, cls.row_selector] = xc @ wc.T
            self._predict(cls, batch=x.shape[0])

    def _classes_backward_input(self, classes, grad, weight, grad_x,
                                scale) -> None:
        for cls in classes:
            self.count("fused_gemm")
            gc = grad[:, cls.row_selector]
            if scale != 1.0:
                gc = gc * scale
            wc = weight[cls.weight_selector()]
            # += not =: tiles from different classes may share columns.
            grad_x[:, cls.col_selector] += gc @ wc
            self._predict(cls, batch=grad.shape[0])

    def _classes_backward_weight(self, classes, grad, x, grad_weight,
                                 scale) -> None:
        for cls in classes:
            self.count("fused_gemm")
            gc = grad[:, cls.row_selector]
            if scale != 1.0:
                gc = gc * scale
            # Each tile-row belongs to exactly one class, so the classes'
            # weight blocks are disjoint: plain assignment scatters them all.
            grad_weight[cls.weight_selector()] = gc.T @ x[:, cls.col_selector]
            self._predict(cls, batch=grad.shape[0])

    # ------------------------------------------------------------------
    # optional cost-model dispatch
    # ------------------------------------------------------------------
    def _predict(self, cls: _FusedClass, batch: int) -> None:
        if self.predict_device is None:
            return
        if self._cost_model is None:
            from repro.gpu.gemm import GemmCostModel

            self._cost_model = GemmCostModel(self.predict_device)
        from repro.gpu.gemm import GemmShape

        shape = GemmShape(m=len(cls.rows), n=batch, k=len(cls.cols))
        self.predicted_ms += self._cost_model.dense(
            shape, name="fused_tile_class").time_ms

    def stats(self):
        record = super().stats()
        if self.predict_device is not None:
            record["predicted_ms"] = round(self.predicted_ms, 4)
        return record
