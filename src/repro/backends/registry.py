"""Name-based registry of execution backends.

:class:`~repro.execution.ExecutionConfig` validates its ``backend`` field
against this registry (instead of a hardcoded tuple), and
:class:`~repro.execution.EngineRuntime` instantiates its backend through it —
so a new backend only needs one :func:`register_backend` call to become
selectable everywhere (config validation, trainers, experiment drivers, the
benchmark CLI).

Factories, not instances, are registered: every
:class:`~repro.execution.EngineRuntime` gets a private backend object so the
per-backend call counters of concurrent runtimes never mix.
"""

from __future__ import annotations

from typing import Callable

from repro.backends.base import ExecutionBackend

_REGISTRY: dict[str, Callable[[], ExecutionBackend]] = {}


def register_backend(name: str, factory: Callable[[], ExecutionBackend],
                     overwrite: bool = False) -> None:
    """Register ``factory`` (a zero-argument callable) under ``name``."""
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"backend {name!r} is already registered")
    _REGISTRY[name] = factory


def unregister_backend(name: str) -> None:
    """Remove a registered backend (used by tests plugging in temporary ones)."""
    _REGISTRY.pop(name, None)


def available_backends() -> tuple[str, ...]:
    """Names of every registered backend, in registration order."""
    return tuple(_REGISTRY)


def create_backend(name: str) -> ExecutionBackend:
    """A fresh backend instance for ``name``; unknown names fail fast."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown execution backend {name!r}; "
            f"available: {available_backends()}") from None
    backend = factory()
    if not isinstance(backend, ExecutionBackend):
        raise TypeError(
            f"backend factory for {name!r} returned {type(backend).__name__}, "
            f"expected an ExecutionBackend")
    return backend
