"""Stacked execution backend: equal-shape tile GEMMs batched into 3-D matmuls.

The :class:`~repro.backends.fused.FusedBackend` concatenates the tile-row
groups of a :class:`~repro.dropout.engine.TileExecutionPlan` that share an
*identical* column set into one GEMM per class.  That still leaves one BLAS
call (and one gather/scatter round-trip) per distinct column set — up to
``dp`` of them per pattern, and the pooled pattern stream replays the same
handful of plans for thousands of consecutive steps.

This backend goes one step further, the ROADMAP's "fuse the row family
across steps" idea generalised to any plan-driven op: fused classes of
**equal kept-count** (same number of rows and columns, different column
sets) are stacked along a new leading axis and executed as a *single batched
GEMM* (``np.matmul`` on 3-D operands)::

    xs  = x[:, cols2d]                    # (batch, F, C) — one gather for F classes
    ws  = weight[rows2d[:,:,None], cols2d[:,None,:]]   # (F, R, C)
    out[:, rows2d] = matmul(xs.transpose(1,0,2), ws.transpose(0,2,1))  # (F, batch, R)

which replaces ``F`` interpreter round-trips, gathers and skinny GEMMs with
one of each.  The structure this exploits is pervasive:

* within one ``(dp, bias)`` tile pattern the surviving tile-rows keep either
  ``floor(grid_cols/dp)`` or ``ceil(grid_cols/dp)`` tiles — at most two
  distinct kept-counts, so nearly every class lands in a stackable family;
* the gate-aligned recurrent patterns
  (:class:`~repro.dropout.patterns.RecurrentTilePattern`) replicate one
  per-gate plan across the stacked gate blocks, multiplying the family sizes
  by ``num_gates``;
* the pooled pattern stream draws from a few dozen interned patterns, so the
  stacked index layouts (cached per plan identity, like the fused layouts)
  are computed once and replayed across consecutive training steps.

The batching covers both plan entry points: the plan-driven ops — the tile
layers (``tile_compact_linear``) and the recurrent plan op
(``recurrent_compact_linear``, e.g. the ``lstm_rec`` bench family or
standalone cell calls) — and the *window-context* path the LSTM unroll uses
(:func:`~repro.dropout.compact_ops.recurrent_context_linear`): its per-class
GEMMs against the pre-gathered weight blocks route through the backend's
``context_*`` primitives, whose stacked override batches equal-shape classes
into the same 3-D ``np.matmul`` tier (context layouts cached per plan
identity like the plan layouts).

Classes without an equal-shape partner fall back to the fused per-class
path, and lone tile-row groups to the reference loop — the three tiers share
the exact arithmetic, so results match the reference backend to summation
order (property-tested in ``tests/backends/test_backends.py``).

The only subtle point is the input-gradient scatter: two stacked classes may
share *some* columns (their column sets are distinct but can overlap), and a
fancy-indexed ``+=`` buffers duplicate indices.  The batched GEMM therefore
computes every class's contribution at once, but the per-class ``+=``
scatters run as separate statements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends.base import _slice_or_index
from repro.backends.fused import FusedBackend, _FusedClass, _FusedPlanLayout

#: Safety cap on cached stacked layouts (mirrors the fused layout cache cap).
_STACKED_CACHE_CAP = 4096


@dataclass(frozen=True)
class _StackedFamily:
    """All fused classes of one plan sharing the same (rows, cols) shape."""

    members: tuple[_FusedClass, ...]
    rows2d: np.ndarray  # (F, R) row indices, one row of indices per member
    cols2d: np.ndarray  # (F, C) column indices, one row of indices per member

    @property
    def size(self) -> int:
        return len(self.members)


@dataclass(frozen=True)
class _StackedLayout:
    """Three-tier execution layout of one plan: batched / fused / reference."""

    families: tuple[_StackedFamily, ...]
    singles: tuple[_FusedClass, ...]  # classes without an equal-shape partner
    leftovers: tuple                  # TileRowGroup objects (reference loop)


@dataclass(frozen=True)
class _ContextFamily:
    """All window-context classes of one plan sharing the same (R, C) shape."""

    members: tuple[int, ...]  # indices into the plan's class list
    rows2d: np.ndarray        # (F, R) row indices, one row per member
    cols2d: np.ndarray        # (F, C) column indices, one row per member


@dataclass(frozen=True)
class _ContextLayout:
    """Two-tier context execution: batched families / per-class reference."""

    families: tuple[_ContextFamily, ...]
    singles: tuple[int, ...]  # class indices without an equal-shape partner


def _context_layout(classes) -> _ContextLayout:
    by_shape: dict[tuple[int, int], list[int]] = {}
    for index, (rows, cols) in enumerate(classes):
        by_shape.setdefault((len(rows), len(cols)), []).append(index)
    families: list[_ContextFamily] = []
    singles: list[int] = []
    for members in by_shape.values():
        if len(members) < 2:
            singles.extend(members)
            continue
        rows2d = np.stack([np.asarray(classes[i][0]) for i in members])
        cols2d = np.stack([np.asarray(classes[i][1]) for i in members])
        families.append(_ContextFamily(members=tuple(members),
                                       rows2d=rows2d, cols2d=cols2d))
    return _ContextLayout(families=tuple(families), singles=tuple(singles))


def _stack_layout(fused: _FusedPlanLayout) -> _StackedLayout:
    by_shape: dict[tuple[int, int], list[_FusedClass]] = {}
    for cls in fused.classes:
        by_shape.setdefault((len(cls.rows), len(cls.cols)), []).append(cls)
    families: list[_StackedFamily] = []
    singles: list[_FusedClass] = []
    for classes in by_shape.values():
        if len(classes) < 2:
            # A lone shape gains nothing from batching; the fused per-class
            # path keeps its zero-copy slice selectors.
            singles.extend(classes)
            continue
        rows2d = np.stack([cls.rows for cls in classes])
        cols2d = np.stack([cls.cols for cls in classes])
        families.append(_StackedFamily(members=tuple(classes),
                                       rows2d=rows2d, cols2d=cols2d))
    return _StackedLayout(families=tuple(families), singles=tuple(singles),
                          leftovers=fused.leftovers)


class StackedBackend(FusedBackend):
    """Batched-GEMM execution of equal-shape fused classes.

    Inherits the fused layout machinery (and its optional roofline
    prediction for the singleton classes); adds a second cached layout level
    that partitions the fused classes into equal-shape stacked families.
    """

    name = "stacked"

    def __init__(self, predict_device=None):
        super().__init__(predict_device=predict_device)
        self._stacked: dict[tuple, _StackedLayout] = {}
        self._context: dict[tuple, _ContextLayout] = {}

    # ------------------------------------------------------------------
    # stacked layout caches
    # ------------------------------------------------------------------
    def stacked_layout(self, plan) -> _StackedLayout:
        """The stacked layout of ``plan`` (computed once per plan identity)."""
        key = plan.identity
        layout = self._stacked.get(key)
        if layout is None:
            if len(self._stacked) >= _STACKED_CACHE_CAP:
                self._stacked.clear()
            layout = _stack_layout(self.layout_for(plan))
            self._stacked[key] = layout
            self.count("plan_stack")
        return layout

    def context_layout(self, key, classes) -> _ContextLayout:
        """The equal-shape family partition of one plan's context classes.

        The class structure is a pure function of the plan identity ``key``
        (see :func:`~repro.dropout.engine.plan_column_classes`), so the
        stacked index layouts are computed once and replayed by every
        timestep of every window that replays the plan.
        """
        layout = self._context.get(key)
        if layout is None:
            if len(self._context) >= _STACKED_CACHE_CAP:
                self._context.clear()
            layout = _context_layout(classes)
            self._context[key] = layout
            self.count("context_stack")
        return layout

    # ------------------------------------------------------------------
    # tile-plan execution
    # ------------------------------------------------------------------
    def tile_forward(self, plan, x, weight, out) -> None:
        layout = self.stacked_layout(plan)
        self.count("tile_forward")
        for family in layout.families:
            self.count("stacked_gemm")
            xs = x[:, family.cols2d]                               # (batch, F, C)
            ws = weight[family.rows2d[:, :, None],
                        family.cols2d[:, None, :]]                  # (F, R, C)
            result = np.matmul(xs.transpose(1, 0, 2),
                               ws.transpose(0, 2, 1))               # (F, batch, R)
            # Row sets are disjoint across classes (each tile-row belongs to
            # exactly one), so the fancy-indexed assignment is exact.
            out[:, family.rows2d] = result.transpose(1, 0, 2)
        self._classes_forward(layout.singles, x, weight, out)
        if layout.leftovers:
            self.count("tile_group_gemm", len(layout.leftovers))
            self._groups_forward(layout.leftovers, x, weight, out)

    def tile_backward_input(self, plan, grad, weight, grad_x,
                            scale: float = 1.0) -> None:
        layout = self.stacked_layout(plan)
        self.count("tile_backward_input")
        for family in layout.families:
            self.count("stacked_gemm")
            gc = grad[:, family.rows2d].transpose(1, 0, 2)          # (F, batch, R)
            if scale != 1.0:
                gc = gc * scale
            ws = weight[family.rows2d[:, :, None],
                        family.cols2d[:, None, :]]                  # (F, R, C)
            contrib = np.matmul(gc, ws)                             # (F, batch, C)
            # Different classes may share *some* columns, and a fancy-indexed
            # += buffers duplicates — scatter one class at a time instead
            # (the GEMM above already ran batched).
            for index, cls in enumerate(family.members):
                grad_x[:, cls.col_selector] += contrib[index]
        self._classes_backward_input(layout.singles, grad, weight, grad_x, scale)
        if layout.leftovers:
            self.count("tile_group_gemm", len(layout.leftovers))
            self._groups_backward_input(layout.leftovers, grad, weight, grad_x,
                                        scale)

    def tile_backward_weight(self, plan, grad, x, grad_weight,
                             scale: float = 1.0) -> None:
        layout = self.stacked_layout(plan)
        self.count("tile_backward_weight")
        for family in layout.families:
            self.count("stacked_gemm")
            gc = grad[:, family.rows2d].transpose(1, 0, 2)          # (F, batch, R)
            if scale != 1.0:
                gc = gc * scale
            xs = x[:, family.cols2d].transpose(1, 0, 2)             # (F, batch, C)
            gw = np.matmul(gc.transpose(0, 2, 1), xs)               # (F, R, C)
            # The classes' weight blocks are disjoint (disjoint row sets), so
            # the batched fancy-indexed assignment scatters them all exactly.
            grad_weight[family.rows2d[:, :, None],
                        family.cols2d[:, None, :]] = gw
        self._classes_backward_weight(layout.singles, grad, x, grad_weight, scale)
        if layout.leftovers:
            self.count("tile_group_gemm", len(layout.leftovers))
            self._groups_backward_weight(layout.leftovers, grad, x, grad_weight,
                                         scale)

    # ------------------------------------------------------------------
    # window-context execution (batched tier over the pre-gathered blocks)
    # ------------------------------------------------------------------
    @staticmethod
    def _family_blocks(family, blocks, scratch) -> np.ndarray:
        """The family's blocks stacked into one (F, R, C) array.

        The blocks are fixed for a whole BPTT window, so the stacked copy is
        built once and cached in the context's per-window ``scratch`` —
        subsequent timesteps (forward and backward) reuse it instead of
        re-copying F*R*C floats per call.
        """
        if scratch is None:
            return np.stack([blocks[i] for i in family.members])
        stacked = scratch.get(family.members)
        if stacked is None:
            stacked = scratch[family.members] = np.stack(
                [blocks[i] for i in family.members])
        return stacked

    def context_forward(self, key, classes, blocks, h, out,
                        scratch: dict | None = None) -> None:
        layout = self.context_layout(key, classes)
        self.count("context_forward")
        for family in layout.families:
            self.count("stacked_gemm")
            ws = self._family_blocks(family, blocks, scratch)        # (F, R, C)
            xs = h[:, family.cols2d]                                 # (batch, F, C)
            result = np.matmul(xs.transpose(1, 0, 2),
                               ws.transpose(0, 2, 1))                # (F, batch, R)
            # Row sets are disjoint across classes, so the fancy-indexed
            # assignment is exact.
            out[:, family.rows2d] = result.transpose(1, 0, 2)
        if layout.singles:
            self.count("context_gemm", len(layout.singles))
            for i in layout.singles:
                rows, cols = classes[i]
                out[:, _slice_or_index(rows)] = h[:, cols] @ blocks[i].T

    def context_backward_h(self, key, classes, blocks, grad, grad_h,
                           scale: float = 1.0,
                           scratch: dict | None = None) -> None:
        layout = self.context_layout(key, classes)
        self.count("context_backward_h")
        for family in layout.families:
            self.count("stacked_gemm")
            gc = grad[:, family.rows2d].transpose(1, 0, 2)           # (F, batch, R)
            if scale != 1.0:
                gc = gc * scale
            ws = self._family_blocks(family, blocks, scratch)        # (F, R, C)
            contrib = np.matmul(gc, ws)                              # (F, batch, C)
            # Different classes may share *some* columns, and a fancy-indexed
            # += buffers duplicates — scatter one class at a time instead.
            for position, i in enumerate(family.members):
                grad_h[:, classes[i][1]] += contrib[position]
        if layout.singles:
            self.count("context_gemm", len(layout.singles))
            for i in layout.singles:
                rows, cols = classes[i]
                gc = grad[:, _slice_or_index(rows)]
                if scale != 1.0:
                    gc = gc * scale
                grad_h[:, cols] += gc @ blocks[i]

    def context_backward_blocks(self, key, classes, grad, h,
                                scale: float = 1.0) -> list[np.ndarray]:
        layout = self.context_layout(key, classes)
        self.count("context_backward_blocks")
        pieces: list[np.ndarray | None] = [None] * len(classes)
        for family in layout.families:
            self.count("stacked_gemm")
            gc = grad[:, family.rows2d].transpose(1, 0, 2)           # (F, batch, R)
            if scale != 1.0:
                gc = gc * scale
            xs = h[:, family.cols2d].transpose(1, 0, 2)              # (F, batch, C)
            gw = np.matmul(gc.transpose(0, 2, 1), xs)                # (F, R, C)
            for position, i in enumerate(family.members):
                pieces[i] = gw[position]
        if layout.singles:
            self.count("context_gemm", len(layout.singles))
            for i in layout.singles:
                rows, cols = classes[i]
                gc = grad[:, _slice_or_index(rows)]
                if scale != 1.0:
                    gc = gc * scale
                pieces[i] = gc.T @ h[:, cols]
        return pieces
