"""Stacked execution backend: equal-shape tile GEMMs batched into 3-D matmuls.

The :class:`~repro.backends.fused.FusedBackend` concatenates the tile-row
groups of a :class:`~repro.dropout.engine.TileExecutionPlan` that share an
*identical* column set into one GEMM per class.  That still leaves one BLAS
call (and one gather/scatter round-trip) per distinct column set — up to
``dp`` of them per pattern, and the pooled pattern stream replays the same
handful of plans for thousands of consecutive steps.

This backend goes one step further, the ROADMAP's "fuse the row family
across steps" idea generalised to any plan-driven op: fused classes of
**equal kept-count** (same number of rows and columns, different column
sets) are stacked along a new leading axis and executed as a *single batched
GEMM* (``np.matmul`` on 3-D operands)::

    xs  = x[:, cols2d]                    # (batch, F, C) — one gather for F classes
    ws  = weight[rows2d[:,:,None], cols2d[:,None,:]]   # (F, R, C)
    out[:, rows2d] = matmul(xs.transpose(1,0,2), ws.transpose(0,2,1))  # (F, batch, R)

which replaces ``F`` interpreter round-trips, gathers and skinny GEMMs with
one of each.  The structure this exploits is pervasive:

* within one ``(dp, bias)`` tile pattern the surviving tile-rows keep either
  ``floor(grid_cols/dp)`` or ``ceil(grid_cols/dp)`` tiles — at most two
  distinct kept-counts, so nearly every class lands in a stackable family;
* the gate-aligned recurrent patterns
  (:class:`~repro.dropout.patterns.RecurrentTilePattern`) replicate one
  per-gate plan across the stacked gate blocks, multiplying the family sizes
  by ``num_gates``;
* the pooled pattern stream draws from a few dozen interned patterns, so the
  stacked index layouts (cached per plan identity, like the fused layouts)
  are computed once and replayed across consecutive training steps.

Scope: the batching applies to *plan-driven* execution — the tile layers
(``tile_compact_linear``) and the recurrent plan op
(``recurrent_compact_linear``, e.g. the ``lstm_rec`` bench family or
standalone cell calls).  The LSTM *unroll* instead hoists a per-window
context (:func:`~repro.dropout.compact_ops.recurrent_compact_context`) whose
per-class GEMMs run against pre-gathered blocks and deliberately bypass the
plan entry points — at LSTM sizes the gather hoist dominates anything the
batched tier could add (folding the two is a ROADMAP item).

Classes without an equal-shape partner fall back to the fused per-class
path, and lone tile-row groups to the reference loop — the three tiers share
the exact arithmetic, so results match the reference backend to summation
order (property-tested in ``tests/backends/test_backends.py``).

The only subtle point is the input-gradient scatter: two stacked classes may
share *some* columns (their column sets are distinct but can overlap), and a
fancy-indexed ``+=`` buffers duplicate indices.  The batched GEMM therefore
computes every class's contribution at once, but the per-class ``+=``
scatters run as separate statements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends.fused import FusedBackend, _FusedClass, _FusedPlanLayout

#: Safety cap on cached stacked layouts (mirrors the fused layout cache cap).
_STACKED_CACHE_CAP = 4096


@dataclass(frozen=True)
class _StackedFamily:
    """All fused classes of one plan sharing the same (rows, cols) shape."""

    members: tuple[_FusedClass, ...]
    rows2d: np.ndarray  # (F, R) row indices, one row of indices per member
    cols2d: np.ndarray  # (F, C) column indices, one row of indices per member

    @property
    def size(self) -> int:
        return len(self.members)


@dataclass(frozen=True)
class _StackedLayout:
    """Three-tier execution layout of one plan: batched / fused / reference."""

    families: tuple[_StackedFamily, ...]
    singles: tuple[_FusedClass, ...]  # classes without an equal-shape partner
    leftovers: tuple                  # TileRowGroup objects (reference loop)


def _stack_layout(fused: _FusedPlanLayout) -> _StackedLayout:
    by_shape: dict[tuple[int, int], list[_FusedClass]] = {}
    for cls in fused.classes:
        by_shape.setdefault((len(cls.rows), len(cls.cols)), []).append(cls)
    families: list[_StackedFamily] = []
    singles: list[_FusedClass] = []
    for classes in by_shape.values():
        if len(classes) < 2:
            # A lone shape gains nothing from batching; the fused per-class
            # path keeps its zero-copy slice selectors.
            singles.extend(classes)
            continue
        rows2d = np.stack([cls.rows for cls in classes])
        cols2d = np.stack([cls.cols for cls in classes])
        families.append(_StackedFamily(members=tuple(classes),
                                       rows2d=rows2d, cols2d=cols2d))
    return _StackedLayout(families=tuple(families), singles=tuple(singles),
                          leftovers=fused.leftovers)


class StackedBackend(FusedBackend):
    """Batched-GEMM execution of equal-shape fused classes.

    Inherits the fused layout machinery (and its optional roofline
    prediction for the singleton classes); adds a second cached layout level
    that partitions the fused classes into equal-shape stacked families.
    """

    name = "stacked"

    def __init__(self, predict_device=None):
        super().__init__(predict_device=predict_device)
        self._stacked: dict[tuple, _StackedLayout] = {}

    # ------------------------------------------------------------------
    # stacked layout cache
    # ------------------------------------------------------------------
    def stacked_layout(self, plan) -> _StackedLayout:
        """The stacked layout of ``plan`` (computed once per plan identity)."""
        key = plan.identity
        layout = self._stacked.get(key)
        if layout is None:
            if len(self._stacked) >= _STACKED_CACHE_CAP:
                self._stacked.clear()
            layout = _stack_layout(self.layout_for(plan))
            self._stacked[key] = layout
            self.count("plan_stack")
        return layout

    # ------------------------------------------------------------------
    # tile-plan execution
    # ------------------------------------------------------------------
    def tile_forward(self, plan, x, weight, out) -> None:
        layout = self.stacked_layout(plan)
        self.count("tile_forward")
        for family in layout.families:
            self.count("stacked_gemm")
            xs = x[:, family.cols2d]                               # (batch, F, C)
            ws = weight[family.rows2d[:, :, None],
                        family.cols2d[:, None, :]]                  # (F, R, C)
            result = np.matmul(xs.transpose(1, 0, 2),
                               ws.transpose(0, 2, 1))               # (F, batch, R)
            # Row sets are disjoint across classes (each tile-row belongs to
            # exactly one), so the fancy-indexed assignment is exact.
            out[:, family.rows2d] = result.transpose(1, 0, 2)
        self._classes_forward(layout.singles, x, weight, out)
        if layout.leftovers:
            self.count("tile_group_gemm", len(layout.leftovers))
            self._groups_forward(layout.leftovers, x, weight, out)

    def tile_backward_input(self, plan, grad, weight, grad_x,
                            scale: float = 1.0) -> None:
        layout = self.stacked_layout(plan)
        self.count("tile_backward_input")
        for family in layout.families:
            self.count("stacked_gemm")
            gc = grad[:, family.rows2d].transpose(1, 0, 2)          # (F, batch, R)
            if scale != 1.0:
                gc = gc * scale
            ws = weight[family.rows2d[:, :, None],
                        family.cols2d[:, None, :]]                  # (F, R, C)
            contrib = np.matmul(gc, ws)                             # (F, batch, C)
            # Different classes may share *some* columns, and a fancy-indexed
            # += buffers duplicates — scatter one class at a time instead
            # (the GEMM above already ran batched).
            for index, cls in enumerate(family.members):
                grad_x[:, cls.col_selector] += contrib[index]
        self._classes_backward_input(layout.singles, grad, weight, grad_x, scale)
        if layout.leftovers:
            self.count("tile_group_gemm", len(layout.leftovers))
            self._groups_backward_input(layout.leftovers, grad, weight, grad_x,
                                        scale)

    def tile_backward_weight(self, plan, grad, x, grad_weight,
                             scale: float = 1.0) -> None:
        layout = self.stacked_layout(plan)
        self.count("tile_backward_weight")
        for family in layout.families:
            self.count("stacked_gemm")
            gc = grad[:, family.rows2d].transpose(1, 0, 2)          # (F, batch, R)
            if scale != 1.0:
                gc = gc * scale
            xs = x[:, family.cols2d].transpose(1, 0, 2)             # (F, batch, C)
            gw = np.matmul(gc.transpose(0, 2, 1), xs)               # (F, R, C)
            # The classes' weight blocks are disjoint (disjoint row sets), so
            # the batched fancy-indexed assignment scatters them all exactly.
            grad_weight[family.rows2d[:, :, None],
                        family.cols2d[:, None, :]] = gw
        self._classes_backward_weight(layout.singles, grad, x, grad_weight, scale)
        if layout.leftovers:
            self.count("tile_group_gemm", len(layout.leftovers))
            self._groups_backward_weight(layout.leftovers, grad, x, grad_weight,
                                         scale)
