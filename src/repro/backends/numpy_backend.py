"""Reference numpy execution backend.

This is the execution strategy the compact ops always had, factored behind
the :class:`~repro.backends.base.ExecutionBackend` interface: one BLAS GEMM
per gathered operand pair, and one GEMM per surviving tile-row group when
executing a :class:`~repro.dropout.engine.TileExecutionPlan`.  It is the
correctness baseline every accelerated backend is property-tested against.

The per-group loop bodies are exposed as static helpers
(:meth:`NumpyBackend._groups_forward` and friends) so subclasses that fuse
*most* of a plan can delegate their leftover groups without duplicating the
reference arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import ExecutionBackend


class NumpyBackend(ExecutionBackend):
    """Straightforward per-group numpy/BLAS execution."""

    name = "numpy"

    def gemm(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.count("gemm")
        return a @ b

    # ------------------------------------------------------------------
    # tile-plan execution
    # ------------------------------------------------------------------
    def tile_forward(self, plan, x, weight, out) -> None:
        self.count("tile_forward")
        self.count("tile_group_gemm", len(plan.row_groups))
        self._groups_forward(plan.row_groups, x, weight, out)

    def tile_backward_input(self, plan, grad, weight, grad_x,
                            scale: float = 1.0) -> None:
        self.count("tile_backward_input")
        self.count("tile_group_gemm", len(plan.row_groups))
        self._groups_backward_input(plan.row_groups, grad, weight, grad_x, scale)

    def tile_backward_weight(self, plan, grad, x, grad_weight,
                             scale: float = 1.0) -> None:
        self.count("tile_backward_weight")
        self.count("tile_group_gemm", len(plan.row_groups))
        self._groups_backward_weight(plan.row_groups, grad, x, grad_weight, scale)

    # ------------------------------------------------------------------
    # shared per-group loop bodies
    # ------------------------------------------------------------------
    @staticmethod
    def _groups_forward(groups, x, weight, out) -> None:
        for group in groups:
            block = weight[group.row_start:group.row_stop, group.selector]
            out[:, group.row_start:group.row_stop] = x[:, group.selector] @ block.T

    @staticmethod
    def _groups_backward_input(groups, grad, weight, grad_x, scale) -> None:
        for group in groups:
            block = weight[group.row_start:group.row_stop, group.selector]
            grad_compact = grad[:, group.row_start:group.row_stop]
            if scale != 1.0:
                grad_compact = grad_compact * scale
            # += not =: tiles from different tile-rows may share columns.
            grad_x[:, group.selector] += grad_compact @ block

    @staticmethod
    def _groups_backward_weight(groups, grad, x, grad_weight, scale) -> None:
        for group in groups:
            grad_compact = grad[:, group.row_start:group.row_stop]
            if scale != 1.0:
                grad_compact = grad_compact * scale
            grad_weight[group.row_start:group.row_stop, group.selector] = (
                grad_compact.T @ x[:, group.selector])
