"""Pluggable execution backends of the compact pattern engine.

The compact dropout ops (:mod:`repro.dropout.compact_ops`) describe *what* to
compute — gather the surviving rows/tiles, multiply, scatter back — and an
:class:`ExecutionBackend` decides *how*.  Two backends ship:

``"numpy"``
    :class:`NumpyBackend`, the reference implementation: one BLAS GEMM per
    gathered operand pair / per surviving tile-row group.
``"fused"``
    :class:`FusedBackend`: tile-row groups of a compiled
    :class:`~repro.dropout.engine.TileExecutionPlan` that share an identical
    column set are concatenated into single stacked GEMM calls, cutting the
    Python-loop, gather and skinny-GEMM overhead of tile-pattern execution.
``"fused-predict"``
    ``fused`` with every class GEMM also dispatched through the
    :mod:`repro.gpu` roofline model, accumulating predicted
    accelerator time in its ``stats()["predicted_ms"]``.
``"stacked"``
    :class:`StackedBackend`: fused classes of equal kept-count (same shape,
    different column sets) are stacked along a new axis and executed as one
    batched 3-D GEMM — one interpreter round-trip, gather and ``matmul`` for
    a whole family of tile-row classes.  The stacked index layouts are
    cached per plan identity, so the pooled pattern stream's consecutive
    steps replay them for free.  The gate-aligned recurrent DropConnect
    plans, whose per-gate replication makes every family ``num_gates``
    times deeper, benefit the most — through the plan-driven ops (the tile
    layers, ``recurrent_compact_linear``, the ``lstm_rec`` bench family);
    the LSTM unroll's per-window context path pre-gathers its blocks and
    bypasses the plan entry points entirely (see ``backends/stacked.py``).

Selection is by name through :class:`repro.execution.ExecutionConfig`
(``backend="fused"``), which validates against this registry and whose
:class:`~repro.execution.EngineRuntime` instantiates the backend and installs
it on every pattern layer it binds.  Third-party backends plug in with::

    from repro.backends import ExecutionBackend, register_backend

    class MyBackend(ExecutionBackend): ...
    register_backend("mine", MyBackend)

after which ``ExecutionConfig(backend="mine")`` works everywhere (trainers,
experiment drivers, ``python -m repro.bench --backend mine``).
"""

from __future__ import annotations

from repro.backends.base import ExecutionBackend
from repro.backends.fused import FusedBackend
from repro.backends.numpy_backend import NumpyBackend
from repro.backends.registry import (
    available_backends,
    create_backend,
    register_backend,
    unregister_backend,
)
from repro.backends.stacked import StackedBackend

def _fused_predict_factory() -> FusedBackend:
    """``fused`` preconfigured to model each class GEMM on the paper's GPU.

    The device spec is imported lazily so importing :mod:`repro.backends`
    never drags in the :mod:`repro.gpu` layer.
    """
    from repro.gpu.device import GTX_1080TI

    return FusedBackend(predict_device=GTX_1080TI)


register_backend("numpy", NumpyBackend)
register_backend("fused", FusedBackend)
register_backend("fused-predict", _fused_predict_factory)
register_backend("stacked", StackedBackend)

#: Shared fallback instance used by compact ops called without a runtime
#: (ad-hoc layer use, unit tests); runtimes always install their own instance.
_DEFAULT_BACKEND = NumpyBackend()


def default_backend() -> NumpyBackend:
    """The process-wide fallback :class:`NumpyBackend` instance."""
    return _DEFAULT_BACKEND


__all__ = [
    "ExecutionBackend",
    "NumpyBackend",
    "FusedBackend",
    "StackedBackend",
    "available_backends",
    "create_backend",
    "default_backend",
    "register_backend",
    "unregister_backend",
]
