"""Abstract execution-backend interface of the compact pattern engine.

An :class:`ExecutionBackend` owns the three numeric primitives the compact
dropout ops are built from — dense GEMM on the gathered operands, compact
gather/scatter of the surviving rows/columns, and scatter-buffer allocation —
plus the execution of a whole compiled
:class:`~repro.dropout.engine.TileExecutionPlan` (forward and both backward
passes).  The autodiff orchestration stays in
:mod:`repro.dropout.compact_ops`: the ops build the tape and decide *what* to
compute, the backend decides *how* the arrays are produced.  Swapping the
backend therefore never changes semantics, only the execution strategy
(per-group loops vs. batched stacked GEMMs vs., eventually, device kernels).

Every primitive increments a per-operation call counter (``self.calls``);
:meth:`ExecutionBackend.stats` exposes the counters so
:meth:`repro.execution.EngineRuntime.stats` can stamp per-backend call counts
into the experiment records.

Backends are instantiated through the registry
(:func:`repro.backends.create_backend`), one instance per
:class:`~repro.execution.EngineRuntime`, so the counters of concurrent
runtimes never mix.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.tensor import dirty as _dirty

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine -> backends)
    from repro.dropout.engine import CompactWorkspace, TileExecutionPlan


def _slice_or_index(indices: np.ndarray):
    """``indices`` as a slice when it is a contiguous ascending run.

    Fancy indexing with a contiguous index array copies; the equivalent slice
    is a view (gather) or a strided assignment (scatter) over the same
    elements in the same order, so swapping it in is bit-identical.
    """
    indices = np.asarray(indices)
    if indices.size >= 2:
        first = int(indices[0])
        if (int(indices[-1]) - first + 1 == indices.size
                and np.all(np.diff(indices) == 1)):
            return slice(first, first + indices.size)
    return indices


class ExecutionBackend(abc.ABC):
    """Numeric execution strategy behind the compact dropout ops.

    Subclasses implement the GEMM/plan primitives; the shared base provides
    workspace-aware buffer allocation, gather/scatter helpers and the
    per-operation call counters.
    """

    #: Registry name of the backend (set by subclasses).
    name: str = "abstract"

    def __init__(self):
        self.calls: dict[str, int] = {}

    # ------------------------------------------------------------------
    # call accounting
    # ------------------------------------------------------------------
    def count(self, op: str, n: int = 1) -> None:
        """Record ``n`` executions of primitive ``op``."""
        self.calls[op] = self.calls.get(op, 0) + n

    def reset_stats(self) -> None:
        self.calls = {}

    def stats(self) -> dict[str, Any]:
        """Per-operation call counts (plus subclass extras) for diagnostics."""
        return {"name": self.name, "calls": dict(self.calls)}

    # ------------------------------------------------------------------
    # workspace allocation
    # ------------------------------------------------------------------
    def zeros(self, workspace: "CompactWorkspace | None", key: str,
              shape: tuple[int, ...], dtype) -> np.ndarray:
        """A zero-filled scatter buffer, drawn from ``workspace`` when given.

        This is the single allocation point of the compact ops' full-size
        output/gradient arrays; the workspace ring (when present) turns the
        per-step allocation into a ``fill(0)``.  Every buffer handed out is
        reported to the active dirty tracker as freshly zeroed, so the
        sparse optimizer knows its region starts empty.
        """
        self.count("alloc")
        if workspace is None:
            out = np.zeros(shape, dtype=dtype)
            _dirty.record_reset(out)
            # A fresh allocation has no later writer, so the backward pass
            # may adopt it as a leaf ``.grad`` without the defensive copy.
            # Ring buffers stay unmarked: a later request of the same key
            # refills them in place.
            _dirty.mark_transferable(out)
        else:
            out = workspace.zeros(key, shape, dtype=dtype)
            _dirty.record_reset(out)
        return out

    # ------------------------------------------------------------------
    # compact gather / scatter
    # ------------------------------------------------------------------
    def gather_rows(self, array: np.ndarray, indices) -> np.ndarray:
        """The rows of ``array`` selected by ``indices`` (compact gather)."""
        self.count("gather")
        return array[indices]

    def gather_cols(self, array: np.ndarray, indices) -> np.ndarray:
        """The columns of ``array`` selected by ``indices`` (compact gather)."""
        self.count("gather")
        return array[:, indices]

    def gather_block(self, array: np.ndarray, row_indices,
                     col_indices) -> np.ndarray:
        """The 2-D block ``array[ix_(rows, cols)]`` (compact tile-class gather)."""
        self.count("gather")
        rows = _slice_or_index(np.asarray(row_indices))
        cols = _slice_or_index(np.asarray(col_indices))
        if isinstance(rows, slice) or isinstance(cols, slice):
            # Mixed basic/advanced indexing on two axes selects the same
            # block as np.ix_ but skips the 2-D index broadcast.
            return array[rows, cols]
        return array[np.ix_(rows, cols)]

    def scatter_rows(self, out: np.ndarray, indices, values: np.ndarray) -> None:
        """``out[indices] = values`` (compact scatter into a zeroed buffer)."""
        self.count("scatter")
        out[indices] = values
        _dirty.record_rows(out, indices)

    def scatter_block(self, out: np.ndarray, row_indices, col_indices,
                      values: np.ndarray) -> None:
        """``out[ix_(rows, cols)] = values`` — the 2-D counterpart of
        :meth:`gather_block` (compact tile/class-block scatter).  Recorded as
        a dirty *row* set (a safe overapproximation: the untouched columns of
        a recorded row stay exactly zero)."""
        self.count("scatter")
        rows = _slice_or_index(np.asarray(row_indices))
        cols = _slice_or_index(np.asarray(col_indices))
        if isinstance(rows, slice) or isinstance(cols, slice):
            out[rows, cols] = values
        else:
            out[np.ix_(rows, cols)] = values
        _dirty.record_rows(out, row_indices)

    def scatter_cols(self, out: np.ndarray, indices, values: np.ndarray) -> None:
        """``out[:, indices] = values`` (compact scatter into a zeroed buffer)."""
        self.count("scatter")
        out[:, indices] = values
        _dirty.record_cols(out, indices)

    # ------------------------------------------------------------------
    # GEMM primitives
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def gemm(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Dense matrix product ``a @ b`` of the gathered compact operands."""

    # ------------------------------------------------------------------
    # tile-plan execution
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def tile_forward(self, plan: "TileExecutionPlan", x: np.ndarray,
                     weight: np.ndarray, out: np.ndarray) -> None:
        """Fill ``out[:, row_start:row_stop]`` for every surviving tile-row.

        ``out`` arrives zero-filled; dropped tile-rows must stay zero.
        """

    @abc.abstractmethod
    def tile_backward_input(self, plan: "TileExecutionPlan", grad: np.ndarray,
                            weight: np.ndarray, grad_x: np.ndarray,
                            scale: float = 1.0) -> None:
        """Accumulate ``d loss / d x`` into the zero-filled ``grad_x``."""

    @abc.abstractmethod
    def tile_backward_weight(self, plan: "TileExecutionPlan", grad: np.ndarray,
                             x: np.ndarray, grad_weight: np.ndarray,
                             scale: float = 1.0) -> None:
        """Write ``d loss / d W`` for the surviving tiles into ``grad_weight``."""

    # ------------------------------------------------------------------
    # window-context execution (per-class GEMMs on pre-gathered blocks)
    # ------------------------------------------------------------------
    #
    # The per-window recurrent context (`recurrent_compact_context`) gathers
    # the surviving weight tiles once per BPTT window into per-class blocks;
    # every timestep then runs one small GEMM per column class against those
    # blocks.  These three primitives own that per-timestep loop, so backends
    # can batch it (see StackedBackend) without the op changing shape.
    # ``key`` is a hashable layout-cache key (the plan identity) — the class
    # structure is a pure function of it, so layouts can be cached per key.

    def context_forward(self, key, classes, blocks, h: np.ndarray,
                        out: np.ndarray, scratch: dict | None = None) -> None:
        """Fill ``out[:, rows] = h[:, cols] @ block.T`` for every class.

        ``classes`` is a sequence of ``(row_indices, col_indices)`` pairs
        with disjoint row sets (so plain assignment is exact) and ``blocks``
        the matching pre-gathered ``(R, C)`` weight blocks.  ``out`` arrives
        zero-filled.  ``scratch`` is the context's per-window dict: the
        blocks are fixed for the window, so a backend may cache derived
        layouts in it across timesteps (ignored by the reference loop).

        Gate-aligned recurrent plans often keep *every* tile-row, so a
        class's row set is one contiguous run — selecting it as a slice
        instead of a fancy index turns three per-timestep permutation
        copies of the gate-width gradient into views (same elements, same
        GEMMs, bit-identical results).
        """
        self.count("context_forward")
        self.count("context_gemm", len(classes))
        for (rows, cols), block in zip(classes, blocks):
            out[:, _slice_or_index(rows)] = h[:, cols] @ block.T

    def context_backward_h(self, key, classes, blocks, grad: np.ndarray,
                           grad_h: np.ndarray, scale: float = 1.0,
                           scratch: dict | None = None) -> None:
        """Accumulate ``d loss / d h`` into the zero-filled ``grad_h``."""
        self.count("context_backward_h")
        self.count("context_gemm", len(classes))
        for (rows, cols), block in zip(classes, blocks):
            grad_compact = grad[:, _slice_or_index(rows)]
            if scale != 1.0:
                grad_compact = grad_compact * scale
            # += not =: different column classes may share some columns.
            grad_h[:, cols] += grad_compact @ block

    def context_backward_blocks(self, key, classes, grad: np.ndarray,
                                h: np.ndarray,
                                scale: float = 1.0) -> list[np.ndarray]:
        """Per-class block gradients ``grad[:, rows].T @ h[:, cols]``, in
        class order (the caller flattens them back into the compact gather's
        gradient)."""
        self.count("context_backward_blocks")
        self.count("context_gemm", len(classes))
        pieces: list[np.ndarray] = []
        for rows, cols in classes:
            grad_compact = grad[:, _slice_or_index(rows)]
            if scale != 1.0:
                grad_compact = grad_compact * scale
            pieces.append(grad_compact.T @ h[:, cols])
        return pieces

    def __repr__(self) -> str:
        total = sum(self.calls.values())
        return f"{type(self).__name__}(name={self.name!r}, calls={total})"
