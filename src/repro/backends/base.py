"""Abstract execution-backend interface of the compact pattern engine.

An :class:`ExecutionBackend` owns the three numeric primitives the compact
dropout ops are built from — dense GEMM on the gathered operands, compact
gather/scatter of the surviving rows/columns, and scatter-buffer allocation —
plus the execution of a whole compiled
:class:`~repro.dropout.engine.TileExecutionPlan` (forward and both backward
passes).  The autodiff orchestration stays in
:mod:`repro.dropout.compact_ops`: the ops build the tape and decide *what* to
compute, the backend decides *how* the arrays are produced.  Swapping the
backend therefore never changes semantics, only the execution strategy
(per-group loops vs. batched stacked GEMMs vs., eventually, device kernels).

Every primitive increments a per-operation call counter (``self.calls``);
:meth:`ExecutionBackend.stats` exposes the counters so
:meth:`repro.execution.EngineRuntime.stats` can stamp per-backend call counts
into the experiment records.

Backends are instantiated through the registry
(:func:`repro.backends.create_backend`), one instance per
:class:`~repro.execution.EngineRuntime`, so the counters of concurrent
runtimes never mix.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine -> backends)
    from repro.dropout.engine import CompactWorkspace, TileExecutionPlan


class ExecutionBackend(abc.ABC):
    """Numeric execution strategy behind the compact dropout ops.

    Subclasses implement the GEMM/plan primitives; the shared base provides
    workspace-aware buffer allocation, gather/scatter helpers and the
    per-operation call counters.
    """

    #: Registry name of the backend (set by subclasses).
    name: str = "abstract"

    def __init__(self):
        self.calls: dict[str, int] = {}

    # ------------------------------------------------------------------
    # call accounting
    # ------------------------------------------------------------------
    def count(self, op: str, n: int = 1) -> None:
        """Record ``n`` executions of primitive ``op``."""
        self.calls[op] = self.calls.get(op, 0) + n

    def reset_stats(self) -> None:
        self.calls = {}

    def stats(self) -> dict[str, Any]:
        """Per-operation call counts (plus subclass extras) for diagnostics."""
        return {"name": self.name, "calls": dict(self.calls)}

    # ------------------------------------------------------------------
    # workspace allocation
    # ------------------------------------------------------------------
    def zeros(self, workspace: "CompactWorkspace | None", key: str,
              shape: tuple[int, ...], dtype) -> np.ndarray:
        """A zero-filled scatter buffer, drawn from ``workspace`` when given.

        This is the single allocation point of the compact ops' full-size
        output/gradient arrays; the workspace ring (when present) turns the
        per-step allocation into a ``fill(0)``.
        """
        self.count("alloc")
        if workspace is None:
            return np.zeros(shape, dtype=dtype)
        return workspace.zeros(key, shape, dtype=dtype)

    # ------------------------------------------------------------------
    # compact gather / scatter
    # ------------------------------------------------------------------
    def gather_rows(self, array: np.ndarray, indices) -> np.ndarray:
        """The rows of ``array`` selected by ``indices`` (compact gather)."""
        self.count("gather")
        return array[indices]

    def gather_cols(self, array: np.ndarray, indices) -> np.ndarray:
        """The columns of ``array`` selected by ``indices`` (compact gather)."""
        self.count("gather")
        return array[:, indices]

    def gather_block(self, array: np.ndarray, row_indices,
                     col_indices) -> np.ndarray:
        """The 2-D block ``array[ix_(rows, cols)]`` (compact tile-class gather)."""
        self.count("gather")
        return array[np.ix_(np.asarray(row_indices), np.asarray(col_indices))]

    def scatter_rows(self, out: np.ndarray, indices, values: np.ndarray) -> None:
        """``out[indices] = values`` (compact scatter into a zeroed buffer)."""
        self.count("scatter")
        out[indices] = values

    def scatter_cols(self, out: np.ndarray, indices, values: np.ndarray) -> None:
        """``out[:, indices] = values`` (compact scatter into a zeroed buffer)."""
        self.count("scatter")
        out[:, indices] = values

    # ------------------------------------------------------------------
    # GEMM primitives
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def gemm(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Dense matrix product ``a @ b`` of the gathered compact operands."""

    # ------------------------------------------------------------------
    # tile-plan execution
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def tile_forward(self, plan: "TileExecutionPlan", x: np.ndarray,
                     weight: np.ndarray, out: np.ndarray) -> None:
        """Fill ``out[:, row_start:row_stop]`` for every surviving tile-row.

        ``out`` arrives zero-filled; dropped tile-rows must stay zero.
        """

    @abc.abstractmethod
    def tile_backward_input(self, plan: "TileExecutionPlan", grad: np.ndarray,
                            weight: np.ndarray, grad_x: np.ndarray,
                            scale: float = 1.0) -> None:
        """Accumulate ``d loss / d x`` into the zero-filled ``grad_x``."""

    @abc.abstractmethod
    def tile_backward_weight(self, plan: "TileExecutionPlan", grad: np.ndarray,
                             x: np.ndarray, grad_weight: np.ndarray,
                             scale: float = 1.0) -> None:
        """Write ``d loss / d W`` for the surviving tiles into ``grad_weight``."""

    def __repr__(self) -> str:
        total = sum(self.calls.values())
        return f"{type(self).__name__}(name={self.name!r}, calls={total})"
