"""Synthetic load generation for the serving path.

Two standard driver shapes:

* **closed loop** — ``concurrency`` workers each keep exactly one request in
  flight (submit, wait, repeat).  Measures the service's best sustainable
  per-stream latency and the throughput that concurrency level extracts.
* **open loop** — requests arrive on a Poisson process at ``rate_rps``
  regardless of completions (the real-traffic shape).  Latency is measured
  from each request's *scheduled* arrival, not from when the dispatcher got
  around to submitting it, so a saturated server shows its queueing delay
  instead of the coordinated-omission artefact.

Both report the same :class:`LoadReport`: request count, wall-clock,
steady-state throughput and the p50/p99 latency quantiles — the numbers the
``serve`` benchmark family records for the per-request baseline and the
micro-batched engine.

``submit`` is any callable taking one request; it may return a
``concurrent.futures.Future``-like object (resolved off-thread, e.g.
:meth:`~repro.serving.batcher.MicroBatcher.submit`) or the finished result
directly (a synchronous per-request baseline).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LoadReport:
    """Latency/throughput summary of one load-generation run."""

    requests: int
    elapsed_s: float
    throughput_rps: float
    mean_ms: float
    p50_ms: float
    p99_ms: float

    def to_dict(self) -> dict[str, float]:
        return {"requests": self.requests, "elapsed_s": round(self.elapsed_s, 4),
                "throughput_rps": round(self.throughput_rps, 2),
                "mean_ms": round(self.mean_ms, 4),
                "p50_ms": round(self.p50_ms, 4), "p99_ms": round(self.p99_ms, 4)}


def _report(latencies_s: list[float], elapsed_s: float) -> LoadReport:
    latencies = np.asarray(latencies_s, dtype=np.float64)
    return LoadReport(
        requests=int(latencies.size),
        elapsed_s=float(elapsed_s),
        throughput_rps=float(latencies.size / elapsed_s) if elapsed_s > 0 else 0.0,
        mean_ms=float(latencies.mean() * 1e3) if latencies.size else 0.0,
        p50_ms=float(np.percentile(latencies, 50) * 1e3) if latencies.size else 0.0,
        p99_ms=float(np.percentile(latencies, 99) * 1e3) if latencies.size else 0.0,
    )


def _resolve(result):
    """The request's final value: wait when ``submit`` returned a future."""
    waiter = getattr(result, "result", None)
    return waiter() if callable(waiter) else result


def run_closed_loop(submit, requests: list, *, concurrency: int = 4) -> LoadReport:
    """Drive ``requests`` through ``submit`` with a fixed in-flight count.

    ``concurrency`` worker threads pull from a shared cursor; each submits
    one request, blocks on its completion, records the latency and moves on.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    cursor = iter(range(len(requests)))
    cursor_lock = threading.Lock()
    latencies: list[list[float]] = [[] for _ in range(concurrency)]

    def worker(slot: int) -> None:
        while True:
            with cursor_lock:
                index = next(cursor, None)
            if index is None:
                return
            started = time.perf_counter()
            _resolve(submit(requests[index]))
            latencies[slot].append(time.perf_counter() - started)

    threads = [threading.Thread(target=worker, args=(slot,), daemon=True)
               for slot in range(concurrency)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    return _report([value for slot in latencies for value in slot], elapsed)


def run_open_loop(submit, requests: list, *, rate_rps: float,
                  seed: int | None = 0) -> LoadReport:
    """Drive ``requests`` through ``submit`` on a Poisson arrival process.

    Inter-arrival gaps are exponential with mean ``1 / rate_rps`` (``seed``
    fixes the draw).  The dispatcher submits each request at its scheduled
    arrival time; latency runs from that schedule to completion, so requests
    a saturated server queues are charged their waiting time.
    """
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be > 0, got {rate_rps}")
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0 / rate_rps, size=len(requests)))
    done = threading.Semaphore(0)
    latencies: list[float] = [0.0] * len(requests)

    started = time.perf_counter()
    for index, request in enumerate(requests):
        scheduled = started + arrivals[index]
        delay = scheduled - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        result = submit(request)
        if callable(getattr(result, "add_done_callback", None)):
            def record(_future, index=index, scheduled=scheduled):
                latencies[index] = time.perf_counter() - scheduled
                done.release()
            result.add_done_callback(record)
        else:
            latencies[index] = time.perf_counter() - scheduled
            done.release()
    for _ in requests:
        done.acquire()
    elapsed = time.perf_counter() - started
    return _report(latencies, elapsed)


def run_rate_sweep(submit, requests: list, *, rates_rps: list[float] | tuple,
                   seed: int | None = 0) -> list[LoadReport]:
    """Latency vs offered rate: one :func:`run_open_loop` per Poisson rate.

    Returns one :class:`LoadReport` per entry of ``rates_rps`` (in order) —
    the standard latency/throughput-vs-offered-load ladder.  Each rung
    replays the same ``requests`` list on a fresh seeded arrival process, so
    the rungs differ only in their offered rate; quantiles rise as the rate
    approaches the service's capacity (the queueing delay the open-loop
    driver charges against each request's *scheduled* arrival).
    """
    if not rates_rps:
        raise ValueError("rates_rps must contain at least one rate")
    for rate in rates_rps:
        if rate <= 0:
            raise ValueError(f"every swept rate must be > 0, got {rate}")
    return [run_open_loop(submit, requests, rate_rps=float(rate), seed=seed)
            for rate in rates_rps]
