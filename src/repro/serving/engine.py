"""Frozen-model inference engine.

:class:`InferenceEngine` takes a trained model plus an
:class:`~repro.execution.ExecutionConfig` (or an already-bound
:class:`~repro.execution.EngineRuntime`), switches the model to eval mode and
compiles its forward pass into a flat numpy program **once**:

* every layer's *effective* evaluation weight is interned at construction —
  in particular the non-inverted DropConnect sites
  (:class:`~repro.dropout.layers.ApproxDropConnectLinear` and an enabled
  :class:`~repro.dropout.layers.ApproxRecurrentDropConnect`) rescale their
  weight by the expected keep fraction on *every* eval call (per timestep for
  the LSTM), which the engine pays exactly once;
* the per-layer scratch buffers are drawn from one
  :class:`~repro.dropout.engine.CompactWorkspace` ring sized for
  ``serve_max_batch`` rows at construction, so steady-state inference
  allocates only its final output array;
* no autodiff tape is built: the program is raw ndarray arithmetic (and the
  structural fallback for model types the compiler does not know runs the
  module tree under :func:`~repro.tensor.tensor.no_grad`).

The program replicates the eval-mode forward arithmetic operation for
operation (same ufuncs applied in the same order), so engine outputs are
**bit-identical** to a plain eval-mode ``forward()`` on every execution
backend — evaluation GEMMs are dense, which all registered backends share
with the reference backend.  LM inference ends in the head's exact dense
``logits()`` path (the same one ``forward()`` uses in eval mode), so served
predictions are never approximated whichever loss head trained the model.

The engine is *frozen*: weights are interned at construction, so training the
model afterwards requires building a new engine.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.dropout.engine import CompactWorkspace
from repro.dropout.layers import (ApproxBlockDropout, ApproxDropConnectLinear,
                                  ApproxRandomDropout, ApproxRandomDropoutLinear)
from repro.execution import EngineRuntime, ExecutionConfig
from repro.models.lstm_lm import LSTMLanguageModel
from repro.models.mlp import MLPClassifier
from repro.nn.dropout import Dropout
from repro.nn.layers import Identity, Linear
from repro.tensor import Tensor
from repro.tensor.tensor import no_grad


def _eval_scale(module) -> float | None:
    """The scalar an activation-dropout module multiplies by in eval mode.

    ``None`` means the module is an identity at evaluation time: conventional
    (inverted) :class:`~repro.nn.dropout.Dropout`, :class:`Identity`, a
    pattern module with ``drop_rate == 0`` or one built with ``scale=False``.
    Unrecognised module types raise so the compiler falls back to the
    structural path instead of silently mis-serving.
    """
    if module is None or isinstance(module, (Identity, Dropout)):
        return None
    if isinstance(module, (ApproxRandomDropout, ApproxBlockDropout)):
        if module.drop_rate == 0.0 or not module.scale:
            return None
        return 1.0 - module.drop_rate
    if type(module).__name__ == "_NoDropout":
        return None
    raise NotImplementedError(f"unknown activation module {type(module).__name__}")


def _linear_program(linear) -> dict[str, Any]:
    """Compile one fully-connected layer's eval-mode execution.

    Returns ``{"weight", "bias", "bias_after", "out_scale"}`` replicating the
    layer's eval arithmetic: ``x @ weight.T (+ bias) (* out_scale)
    (+ bias_after)``.  The tile-pattern layer adds its (never-dropped) bias
    *after* the interned rescaled-weight GEMM; the row-pattern layer rescales
    the biased output.
    """
    weight = linear.weight.data
    bias = linear.bias.data if linear.bias is not None else None
    if isinstance(linear, ApproxDropConnectLinear):
        if linear.drop_rate > 0.0 and linear.scale:
            # Non-inverted DropConnect: intern the rescaled weight once
            # (the module recomputes weight * keep on every eval call).
            return {"weight": weight * (1.0 - linear.drop_rate), "bias": None,
                    "bias_after": bias, "out_scale": None}
        return {"weight": weight, "bias": bias, "bias_after": None,
                "out_scale": None}
    if isinstance(linear, ApproxRandomDropoutLinear):
        scale = (1.0 - linear.drop_rate
                 if linear.drop_rate > 0.0 and linear.scale else None)
        return {"weight": weight, "bias": bias, "bias_after": None,
                "out_scale": scale}
    if isinstance(linear, Linear):
        return {"weight": weight, "bias": bias, "bias_after": None,
                "out_scale": None}
    raise NotImplementedError(f"unknown linear module {type(linear).__name__}")


def _recurrent_weight(cell) -> np.ndarray:
    """The cell's effective eval-mode recurrent weight, interned once.

    Mirrors :meth:`ApproxRecurrentDropConnect.project` at eval time: dense
    unless the site is enabled (``drop_rate`` reads 0 while disabled) and
    rescaling, in which case the weight contribution shrinks by the expected
    keep fraction — recomputed per timestep by the module, paid once here.
    """
    site = cell.recurrent_dropout
    weight = cell.weight_h.data
    if site is None or site.drop_rate == 0.0 or not site.scale:
        return weight
    return weight * (1.0 - site.drop_rate)


class InferenceEngine:
    """Compile a trained model into a reusable frozen inference program.

    Parameters
    ----------
    model:
        A trained :class:`~repro.models.mlp.MLPClassifier` or
        :class:`~repro.models.lstm_lm.LSTMLanguageModel` (other module types
        are served through the structural eval-mode fallback).
    config:
        The :class:`ExecutionConfig` to build a fresh runtime from (the model
        is bound, which casts parameters to the configured dtype).  Ignored
        when ``runtime`` is given.
    runtime:
        An existing runtime the model is already bound to; the engine joins
        its serving statistics instead of creating a new runtime.
    """

    def __init__(self, model, config: ExecutionConfig | None = None, *,
                 runtime: EngineRuntime | None = None):
        if runtime is None:
            runtime = EngineRuntime(config or ExecutionConfig())
            runtime.bind(model)
        self.runtime = runtime
        self.config = runtime.config
        self.backend = runtime.backend
        self.model = model
        self.dtype = runtime.np_dtype
        model.eval()
        # One slot per buffer key: infer() calls are sequential (the batcher
        # serialises them), so each site can reuse a single physical array.
        self.workspace = CompactWorkspace(slots=1)
        self.max_rows = runtime.config.serve_max_batch
        self.infer_calls = 0
        self.rows_served = 0
        if isinstance(model, MLPClassifier):
            self._kind = "mlp"
            self._compile_mlp(model)
        elif isinstance(model, LSTMLanguageModel):
            self._kind = "lstm_lm"
            self._compile_lstm(model)
        else:
            self._kind = "generic"
        runtime.register_serving_source(self)

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def _buffer(self, key: str, rows: int, width: int) -> np.ndarray:
        """A ``(rows, width)`` scratch view of the interned workspace ring.

        Buffers are interned at full ``serve_max_batch`` capacity so every
        smaller micro-batch reuses the same physical array; a batch larger
        than the configured capacity widens the ring (the workspace replaces
        the slot) rather than failing.
        """
        if rows > self.max_rows:
            self.max_rows = rows
        return self.workspace.zeros(key, (self.max_rows, width),
                                    self.dtype)[:rows]

    def _compile_mlp(self, model: MLPClassifier) -> None:
        self._layers = []
        for linear, post in zip(model.hidden_linears, model.post_activations):
            program = _linear_program(linear)
            program["post_scale"] = _eval_scale(post)
            program["width"] = program["weight"].shape[0]
            self._layers.append(program)
        self._out_weight = model.output.weight.data
        self._out_bias = (model.output.bias.data
                          if model.output.bias is not None else None)
        # Intern the scratch ring at micro-batch capacity up front.
        for index, layer in enumerate(self._layers):
            self._buffer(f"mlp{index}", self.max_rows, layer["width"])

    def _compile_lstm(self, model: LSTMLanguageModel) -> None:
        self._emb_weight = model.embedding.weight.data
        self._input_scale = _eval_scale(model.input_dropout)
        self._output_scale = _eval_scale(model.output_dropout)
        self._cells = []
        for layer, cell in enumerate(model.lstm.cells):
            inter = (model.lstm.inter_layer_dropout[layer]
                     if layer < model.lstm.num_layers - 1 else None)
            self._cells.append({
                "weight_x": cell.weight_x.data,
                "weight_h": _recurrent_weight(cell),
                "bias": cell.bias.data,
                "inter_scale": _eval_scale(inter),
            })
        self._hidden = model.config.hidden_size
        self._proj_weight = model.projection.weight.data
        self._proj_bias = (model.projection.bias.data
                           if model.projection.bias is not None else None)
        for layer in range(len(self._cells)):
            self._buffer(f"gates{layer}", self.max_rows, 4 * self._hidden)
            self._buffer(f"rec{layer}", self.max_rows, 4 * self._hidden)

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def infer(self, batch, state=None):
        """Run one frozen forward pass.

        MLP: ``batch`` is ``(rows, features)``; returns ``(rows, classes)``
        logits.  LM: ``batch`` is an integer ``(seq_len, batch)`` token
        array; returns ``(logits, new_state)`` exactly like ``forward()``,
        with ``state`` optional carried numpy ``(h, c)`` pairs.  Outputs are
        bit-identical to the model's own eval-mode forward pass.
        """
        self.infer_calls += 1
        with no_grad():
            if self._kind == "mlp":
                batch = np.asarray(batch)
                self.rows_served += batch.shape[0]
                return self._infer_mlp(batch)
            if self._kind == "lstm_lm":
                batch = np.asarray(batch)
                self.rows_served += batch.shape[1]
                return self._infer_lstm(batch, state)
            return self._infer_generic(batch, state)

    def _infer_mlp(self, x: np.ndarray) -> np.ndarray:
        if x.dtype != self.dtype:
            x = x.astype(self.dtype)
        rows = x.shape[0]
        for index, layer in enumerate(self._layers):
            out = self._buffer(f"mlp{index}", rows, layer["width"])
            np.matmul(x, layer["weight"].T, out=out)
            self.backend.count("serve_gemm")
            if layer["bias"] is not None:
                np.add(out, layer["bias"], out=out)
            if layer["out_scale"] is not None:
                np.multiply(out, layer["out_scale"], out=out)
            if layer["bias_after"] is not None:
                np.add(out, layer["bias_after"], out=out)
            # ReLU exactly as Tensor.relu: multiply by the 0/1 cast mask.
            np.multiply(out, (out > 0).astype(out.dtype), out=out)
            if layer["post_scale"] is not None:
                np.multiply(out, layer["post_scale"], out=out)
            x = out
        logits = np.matmul(x, self._out_weight.T)
        self.backend.count("serve_gemm")
        if self._out_bias is not None:
            np.add(logits, self._out_bias, out=logits)
        return logits

    def _infer_lstm(self, tokens: np.ndarray, state):
        if tokens.ndim != 2:
            raise ValueError(
                f"tokens must be 2-D (seq_len, batch), got shape {tokens.shape}")
        if tokens.size and (tokens.min() < 0
                            or tokens.max() >= self._emb_weight.shape[0]):
            raise IndexError(
                f"token id out of range [0, {self._emb_weight.shape[0]}) "
                "in embedding lookup")
        seq_len, batch = tokens.shape
        hidden = self._hidden
        embedded = self._emb_weight[tokens]
        if self._input_scale is not None:
            np.multiply(embedded, self._input_scale, out=embedded)
        if state is None:
            state = [(np.zeros((batch, hidden), dtype=self.dtype),
                      np.zeros((batch, hidden), dtype=self.dtype))
                     for _ in self._cells]
        else:
            state = [(np.asarray(h), np.asarray(c)) for h, c in state]
        outputs = self.workspace.zeros("lstm_out", (seq_len, batch, hidden),
                                       self.dtype)
        for t in range(seq_len):
            layer_input = embedded[t]
            new_state = []
            for layer, cell in enumerate(self._cells):
                h, c = state[layer]
                gates = self._buffer(f"gates{layer}", batch, 4 * hidden)
                np.matmul(layer_input, cell["weight_x"].T, out=gates)
                self.backend.count("serve_gemm")
                np.add(gates, cell["bias"], out=gates)
                rec = self._buffer(f"rec{layer}", batch, 4 * hidden)
                np.matmul(h, cell["weight_h"].T, out=rec)
                self.backend.count("serve_gemm")
                np.add(gates, rec, out=gates)
                # F.lstm_gates forward math, expression for expression.
                i_s = 1.0 / (1.0 + np.exp(-gates[:, 0 * hidden:1 * hidden]))
                f_s = 1.0 / (1.0 + np.exp(-gates[:, 1 * hidden:2 * hidden]))
                g_t = np.tanh(gates[:, 2 * hidden:3 * hidden])
                o_s = 1.0 / (1.0 + np.exp(-gates[:, 3 * hidden:4 * hidden]))
                c_new = f_s * c + i_s * g_t
                h_new = o_s * np.tanh(c_new)
                new_state.append((h_new, c_new))
                if cell["inter_scale"] is not None:
                    h_new = h_new * cell["inter_scale"]
                layer_input = h_new
            state = new_state
            outputs[t] = layer_input
        if self._output_scale is not None:
            np.multiply(outputs, self._output_scale, out=outputs)
        flat = outputs.reshape(seq_len * batch, hidden)
        # Exact dense head logits (the eval path of every loss head).
        logits = np.matmul(flat, self._proj_weight.T)
        self.backend.count("serve_gemm")
        if self._proj_bias is not None:
            np.add(logits, self._proj_bias, out=logits)
        return logits, state

    def _infer_generic(self, batch, state):
        """Structural fallback: the module tree itself, eval mode, no tape."""
        result = self.model(batch) if state is None else self.model(batch, state)
        if isinstance(result, tuple):
            out, new_state = result
            out = out.data if isinstance(out, Tensor) else np.asarray(out)
            self.rows_served += out.shape[0]
            return out, new_state
        out = result.data if isinstance(result, Tensor) else np.asarray(result)
        self.rows_served += out.shape[0]
        return out

    # ------------------------------------------------------------------
    # request-level API (the micro-batcher's entry point)
    # ------------------------------------------------------------------
    def infer_requests(self, requests: list) -> list:
        """Serve a list of single requests as one pooled engine step.

        MLP requests are ``(features,)`` vectors (stacked into one GEMM
        batch, each answered with its logits row).  LM requests are 1-D
        token sequences, padded to the longest request and strided into one
        ``(seq_len, len(requests))`` unroll; each request gets back the
        ``(len(request), vocab)`` logits of its own (unpadded) positions —
        padding rides at the sequence tail, so a causal left-to-right unroll
        never lets it influence a request's real positions.
        """
        if not requests:
            return []
        if self._kind == "lstm_lm":
            lengths = [len(request) for request in requests]
            seq_len = max(lengths)
            tokens = np.zeros((seq_len, len(requests)), dtype=np.int64)
            for column, request in enumerate(requests):
                tokens[:lengths[column], column] = np.asarray(request)
            logits, _ = self.infer(tokens)
            shaped = logits.reshape(seq_len, len(requests), -1)
            return [shaped[:lengths[column], column].copy()
                    for column in range(len(requests))]
        stacked = np.stack([np.asarray(request) for request in requests])
        outputs = self.infer(stacked)
        return [outputs[row].copy() for row in range(len(requests))]

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def serving_stats(self) -> dict[str, int]:
        """Counters folded into ``runtime.stats()["serving"]``."""
        return {"engines": 1, "infer_calls": self.infer_calls,
                "rows": self.rows_served}

    def __repr__(self) -> str:
        return (f"InferenceEngine(kind={self._kind}, dtype={self.dtype}, "
                f"max_rows={self.max_rows}, calls={self.infer_calls})")
