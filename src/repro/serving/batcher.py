"""Async micro-batching front end for the frozen inference engine.

The serving idiom is the async unit-of-work queue: callers submit single
requests and immediately get a future; a background worker collects requests
for at most ``serve_max_wait_ms`` (or until ``serve_max_batch`` rows are
waiting), executes them as **one** pooled
:meth:`~repro.serving.engine.InferenceEngine.infer_requests` step, and fans
the per-request results back to their futures.  Batching converts many
GEMV-shaped single-request forwards into one GEMM-shaped batched forward —
the throughput and tail-latency win the ``serve`` benchmark family measures.

Two entry points share the same queue: the thread-safe :meth:`MicroBatcher.submit`
(returns a :class:`concurrent.futures.Future`; what the bench driver and any
synchronous caller use) and the ``asyncio``-native
:meth:`MicroBatcher.submit_async` coroutine.  Shutdown is loss-free:
:meth:`MicroBatcher.close` flushes every request accepted before the close
and only then stops the worker, so no future is ever dropped unresolved.
"""

from __future__ import annotations

import asyncio
import queue
import threading
import time
from concurrent.futures import Future, InvalidStateError

from repro.serving.engine import InferenceEngine

#: Queue sentinel marking the close() boundary; every request enqueued before
#: it is still served.
_SHUTDOWN = object()


class MicroBatcher:
    """Collect single requests into pooled engine steps.

    Parameters
    ----------
    engine:
        The frozen :class:`InferenceEngine` executing the batched steps.
    max_batch, max_wait_ms:
        Collection bounds; default to the engine config's
        ``serve_max_batch`` / ``serve_max_wait_ms`` knobs.  A batch executes
        as soon as ``max_batch`` requests are waiting, or when the oldest
        request has waited ``max_wait_ms``, whichever comes first.
    """

    def __init__(self, engine: InferenceEngine, max_batch: int | None = None,
                 max_wait_ms: float | None = None):
        self.engine = engine
        config = engine.config
        self.max_batch = int(max_batch if max_batch is not None
                             else config.serve_max_batch)
        self.max_wait_ms = float(max_wait_ms if max_wait_ms is not None
                                 else config.serve_max_wait_ms)
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ValueError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        self._queue: queue.Queue = queue.Queue()
        self._lock = threading.Lock()
        self._closed = False
        self.batches_formed = 0
        self.requests_served = 0
        self._worker = threading.Thread(target=self._serve_loop,
                                        name="repro-serving-batcher",
                                        daemon=True)
        engine.runtime.register_serving_source(self)
        self._worker.start()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, request) -> Future:
        """Enqueue one request; thread-safe.  Resolves to the engine output."""
        future: Future = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
            self._queue.put((request, future))
        return future

    async def submit_async(self, request):
        """``asyncio`` entry point: awaits the same queue as :meth:`submit`."""
        return await asyncio.wrap_future(self.submit(request))

    # ------------------------------------------------------------------
    # worker
    # ------------------------------------------------------------------
    def _collect(self) -> tuple[list, bool]:
        """Block for the next batch.

        Returns ``(batch, keep_running)``: up to ``max_batch`` requests, the
        first waited for indefinitely, the rest for whatever remains of the
        ``max_wait_ms`` window (a full queue drains without waiting).
        """
        item = self._queue.get()
        if item is _SHUTDOWN:
            return [], False
        batch = [item]
        deadline = time.monotonic() + self.max_wait_ms / 1000.0
        while len(batch) < self.max_batch:
            remaining = deadline - time.monotonic()
            try:
                if remaining > 0:
                    item = self._queue.get(timeout=remaining)
                else:
                    item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                # Serve what was accepted before the close, then stop: the
                # sentinel is enqueued after the closed flag flips, so
                # nothing can follow it.
                return batch, False
            batch.append(item)
        return batch, True

    def _serve_loop(self) -> None:
        running = True
        while running:
            batch, running = self._collect()
            if not batch:
                continue
            requests = [request for request, _ in batch]
            try:
                outputs = self.engine.infer_requests(requests)
            except BaseException as error:  # noqa: BLE001 - fan the error out
                for _, future in batch:
                    try:
                        future.set_exception(error)
                    except InvalidStateError:
                        pass  # request cancelled while queued
                continue
            self.batches_formed += 1
            self.requests_served += len(batch)
            for (_, future), output in zip(batch, outputs):
                try:
                    future.set_result(output)
                except InvalidStateError:
                    pass  # request cancelled while queued

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop accepting requests, flush the queue, join the worker.

        Every request accepted before the close is still executed and its
        future resolved; calling :meth:`submit` afterwards raises.
        Idempotent.
        """
        with self._lock:
            if self._closed:
                already = True
            else:
                already = False
                self._closed = True
                self._queue.put(_SHUTDOWN)
        if not already:
            self._worker.join()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests currently waiting to be collected into a batch."""
        return self._queue.qsize()

    def serving_stats(self) -> dict[str, int]:
        """Counters folded into ``runtime.stats()["serving"]``."""
        return {"batchers": 1, "batches": self.batches_formed,
                "requests": self.requests_served,
                "queue_depth": self.queue_depth}

    def __repr__(self) -> str:
        return (f"MicroBatcher(max_batch={self.max_batch}, "
                f"max_wait_ms={self.max_wait_ms}, "
                f"batches={self.batches_formed}, "
                f"requests={self.requests_served})")
