"""Frozen-model serving: compact inference engine, micro-batching, load gen.

Training reuses the module tree one call at a time; serving freezes it.
:class:`~repro.serving.engine.InferenceEngine` compiles an eval-mode model
into a flat numpy program once (interned effective weights, preallocated
workspace buffers, no autodiff tape) whose outputs are bit-identical to the
model's own ``forward()``.  :class:`~repro.serving.batcher.MicroBatcher`
turns single requests into pooled engine steps (collect up to
``serve_max_batch`` rows or for ``serve_max_wait_ms``, execute once, fan the
rows back to per-request futures).  :mod:`~repro.serving.loadgen` drives
either path with closed- or open-loop synthetic load and reports p50/p99
latency and steady-state throughput — the measurement half of the ``serve``
benchmark family.
"""

from repro.serving.batcher import MicroBatcher
from repro.serving.engine import InferenceEngine
from repro.serving.loadgen import (
    LoadReport,
    run_closed_loop,
    run_open_loop,
    run_rate_sweep,
)

__all__ = [
    "InferenceEngine",
    "MicroBatcher",
    "LoadReport",
    "run_closed_loop",
    "run_open_loop",
    "run_rate_sweep",
]
