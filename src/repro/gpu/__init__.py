"""Analytical GPGPU performance model.

The paper measures wall-clock training time on a GTX 1080Ti running Caffe.
This reproduction has no GPU, so the timing side of every experiment is driven
by an analytical cost model of the kernels a training iteration launches:

* tiled dense GEMM (the baseline fully-connected / LSTM-gate computation),
* compact GEMM under the Row-based Dropout Pattern (fewer rows/columns),
* block GEMM under the Tile-based Dropout Pattern (fewer 32x32 tiles, plus the
  pattern-bookkeeping overhead the paper observes),
* elementwise kernels (activations, conventional dropout mask generation and
  application, bias, optimizer update),
* a branch-divergence model showing why naively skipping dropped work with an
  ``if`` inside the kernel gives no speedup (Fig. 1(b)).

The model charges compute cycles, shared-memory traffic and global-memory
traffic per kernel, takes the max of the compute-bound and memory-bound times
(roofline style), adds launch overhead, and derates small GEMMs for SM
underutilisation.  Absolute times are not the point — the *ratios* between
the baseline and the approximate-dropout variants are what the experiments
compare, exactly as the paper reports "old time / new time".
"""

from repro.gpu.device import DeviceSpec, GTX_1080TI, SMALL_GPU
from repro.gpu.kernels import (
    KernelCost,
    elementwise_kernel_cost,
    rng_mask_kernel_cost,
    optimizer_update_cost,
    data_transfer_cost,
)
from repro.gpu.gemm import GemmCostModel, GemmShape
from repro.gpu.divergence import DivergenceModel, naive_branch_skip_speedup
from repro.gpu.profiler import KernelTrace, IterationTimer
from repro.gpu.training_time import (
    MLPTimingModel,
    LSTMTimingModel,
    DropoutTimingConfig,
    TrainingTimeEstimate,
)

__all__ = [
    "DeviceSpec",
    "GTX_1080TI",
    "SMALL_GPU",
    "KernelCost",
    "elementwise_kernel_cost",
    "rng_mask_kernel_cost",
    "optimizer_update_cost",
    "data_transfer_cost",
    "GemmCostModel",
    "GemmShape",
    "DivergenceModel",
    "naive_branch_skip_speedup",
    "KernelTrace",
    "IterationTimer",
    "MLPTimingModel",
    "LSTMTimingModel",
    "DropoutTimingConfig",
    "TrainingTimeEstimate",
]
