"""Branch-divergence model for the naive dropout-skipping strawman (Fig. 1(b)).

The paper motivates the regular dropout patterns by showing that the obvious
alternative — writing ``if (mask[i]) { compute } else { output = 0 }`` inside
the kernel — cannot save time on a SIMT machine: all threads of a warp execute
in lock-step, so as long as *any* thread of the warp has a kept neuron the
whole warp walks through the compute path, and the dropped threads simply idle
(the red crosses in Fig. 1(b)).

:class:`DivergenceModel` quantifies this: with an i.i.d. Bernoulli mask of
drop rate ``p`` and warps of ``w`` threads, the fraction of warps that can be
skipped entirely is ``p**w`` (≈ 0 for ``w = 32``), so the expected speedup is
``1 / (1 - p**w)`` ≈ 1, and with the predicate-evaluation overhead the kernel
is usually slightly *slower* than the dense baseline.  Under a *regular*
pattern (all kept neurons packed contiguously), entire warps become droppable
and the ideal ``1 / (1 - p)`` speedup is recovered — which is exactly the
compaction the RDP/TDP patterns implement without any branch at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.device import DeviceSpec


@dataclass
class DivergenceEstimate:
    """Result of a divergence analysis for a masked kernel."""

    drop_rate: float
    warp_size: int
    fully_dropped_warp_fraction: float
    active_warp_fraction: float
    expected_speedup: float
    ideal_speedup: float

    @property
    def efficiency(self) -> float:
        """Achieved fraction of the ideal (fully-exploited sparsity) speedup."""
        return self.expected_speedup / self.ideal_speedup if self.ideal_speedup else 0.0


class DivergenceModel:
    """Warp-level divergence analysis for masked (conditional) kernels."""

    def __init__(self, device: DeviceSpec, branch_overhead: float = 0.02):
        if branch_overhead < 0:
            raise ValueError("branch_overhead must be non-negative")
        self.device = device
        self.branch_overhead = branch_overhead

    def random_mask(self, drop_rate: float) -> DivergenceEstimate:
        """Expected behaviour with an i.i.d. Bernoulli mask (conventional dropout)."""
        self._validate_rate(drop_rate)
        w = self.device.warp_size
        fully_dropped = float(drop_rate ** w)
        active = 1.0 - fully_dropped
        # Active warps pay the full compute path plus the predicate check.
        time_fraction = active * (1.0 + self.branch_overhead)
        speedup = 1.0 / time_fraction if time_fraction > 0 else float("inf")
        return DivergenceEstimate(
            drop_rate=drop_rate,
            warp_size=w,
            fully_dropped_warp_fraction=fully_dropped,
            active_warp_fraction=active,
            expected_speedup=speedup,
            ideal_speedup=self._ideal(drop_rate),
        )

    def regular_mask(self, drop_rate: float) -> DivergenceEstimate:
        """Expected behaviour when dropped threads are packed into whole warps.

        This is what the regular patterns achieve implicitly: the dropped rows
        are contiguous in the compact layout, so whole warps (in fact whole
        thread blocks) disappear and the ideal speedup is reached.
        """
        self._validate_rate(drop_rate)
        w = self.device.warp_size
        fully_dropped = drop_rate
        active = 1.0 - fully_dropped
        speedup = 1.0 / active if active > 0 else float("inf")
        return DivergenceEstimate(
            drop_rate=drop_rate,
            warp_size=w,
            fully_dropped_warp_fraction=fully_dropped,
            active_warp_fraction=active,
            expected_speedup=speedup,
            ideal_speedup=self._ideal(drop_rate),
        )

    def empirical_random_mask(self, drop_rate: float, num_threads: int,
                              rng: np.random.Generator | None = None) -> DivergenceEstimate:
        """Monte-Carlo estimate: draw an actual mask and count fully-dropped warps."""
        self._validate_rate(drop_rate)
        if num_threads <= 0:
            raise ValueError("num_threads must be positive")
        rng = rng or np.random.default_rng(0)
        w = self.device.warp_size
        num_warps = int(np.ceil(num_threads / w))
        mask = rng.random(num_warps * w) < drop_rate  # True = dropped
        warps = mask.reshape(num_warps, w)
        fully_dropped = float(np.mean(warps.all(axis=1)))
        active = 1.0 - fully_dropped
        time_fraction = active * (1.0 + self.branch_overhead)
        speedup = 1.0 / time_fraction if time_fraction > 0 else float("inf")
        return DivergenceEstimate(
            drop_rate=drop_rate,
            warp_size=w,
            fully_dropped_warp_fraction=fully_dropped,
            active_warp_fraction=active,
            expected_speedup=speedup,
            ideal_speedup=self._ideal(drop_rate),
        )

    @staticmethod
    def _ideal(drop_rate: float) -> float:
        return 1.0 / (1.0 - drop_rate) if drop_rate < 1.0 else float("inf")

    @staticmethod
    def _validate_rate(drop_rate: float) -> None:
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError(f"drop_rate must be in [0, 1), got {drop_rate}")


def naive_branch_skip_speedup(device: DeviceSpec, drop_rate: float) -> float:
    """Convenience wrapper: expected speedup of the naive if-else skip."""
    return DivergenceModel(device).random_mask(drop_rate).expected_speedup
