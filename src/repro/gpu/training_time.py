"""Per-iteration training-time models for the paper's two workloads.

:class:`MLPTimingModel` models one SGD iteration of the 4-layer MLP
(Section IV-A/IV-B) and :class:`LSTMTimingModel` one truncated-BPTT iteration
of the word-level LSTM (Section IV-C).  Each model enumerates the kernels the
iteration launches — forward GEMMs, backward data-gradient and
weight-gradient GEMMs, activations, conventional-dropout mask kernels (only in
the baseline), optimizer updates and host transfers — and prices them with
:class:`~repro.gpu.gemm.GemmCostModel` and the elementwise kernel models.

Dropout is described by a :class:`DropoutTimingConfig`:

* ``mode="baseline"`` — conventional random dropout: dense GEMMs everywhere
  plus RNG-mask and mask-multiply kernels on every dropped activation in both
  the forward and the backward pass (Fig. 1(a)).
* ``mode="row"`` — Row-based Dropout Pattern: GEMM operands shrink by the
  expected keep fraction of each dropped layer (rows of the producing layer,
  inner dimension of the consuming layer); no mask kernels.
* ``mode="tile"`` — Tile-based Dropout Pattern: the weight matrices of the
  dropped layers shrink tile-wise; extra pattern-bookkeeping kernels are
  charged (the paper's observed TDP overhead).
* ``mode="naive_skip"`` — the Fig. 1(b) strawman: dense GEMMs with an if-else
  on the mask, priced through the divergence model (≈ no speedup).
* ``mode="none"`` — no dropout at all (for reference).

The expected keep fraction of a pattern stream with global dropout rate ``p``
is exactly ``1 - p`` (Section III-D), so the models accept plain rates; they
also accept concrete sampled patterns for trace-driven timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.device import DeviceSpec, GTX_1080TI
from repro.gpu.gemm import GemmCostModel, GemmShape
from repro.gpu.kernels import (
    KernelCost,
    data_transfer_cost,
    elementwise_kernel_cost,
    mask_apply_kernel_cost,
    optimizer_update_cost,
    pattern_bookkeeping_cost,
    rng_mask_kernel_cost,
)
from repro.gpu.profiler import IterationTimer, KernelTrace

_VALID_MODES = ("none", "baseline", "row", "tile", "naive_skip")


@dataclass
class DropoutTimingConfig:
    """How dropout is applied, for timing purposes.

    Attributes
    ----------
    mode:
        One of ``"none"``, ``"baseline"``, ``"row"``, ``"tile"``,
        ``"naive_skip"``.
    rates:
        Per-dropout-site global dropout rates (one per hidden layer for the
        MLP; one per LSTM layer output for the LSTM).
    tile:
        Tile edge for TDP bookkeeping.
    """

    mode: str = "baseline"
    rates: tuple[float, ...] = ()
    tile: int = 32

    def __post_init__(self):
        if self.mode not in _VALID_MODES:
            raise ValueError(f"mode must be one of {_VALID_MODES}, got {self.mode!r}")
        for rate in self.rates:
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"dropout rates must be in [0, 1), got {rate}")

    def keep(self, index: int) -> float:
        """Expected keep fraction of dropout site ``index`` (1 if not dropped)."""
        if self.mode == "none" or index < 0 or index >= len(self.rates):
            return 1.0
        return 1.0 - self.rates[index]

    def rate(self, index: int) -> float:
        if index < 0 or index >= len(self.rates):
            return 0.0
        return self.rates[index]


@dataclass
class TrainingTimeEstimate:
    """Modelled time of one training iteration plus the underlying trace."""

    config: DropoutTimingConfig
    trace: KernelTrace
    iteration_time_ms: float = field(init=False)

    def __post_init__(self):
        self.iteration_time_ms = self.trace.total_time_ms

    def speedup_over(self, baseline: "TrainingTimeEstimate") -> float:
        """"old time / new time" against a baseline estimate."""
        return baseline.iteration_time_ms / self.iteration_time_ms

    def epoch_time_ms(self, iterations_per_epoch: int) -> float:
        return self.iteration_time_ms * iterations_per_epoch


class MLPTimingModel:
    """Timing model for one SGD iteration of a fully-connected network.

    Parameters
    ----------
    layer_sizes:
        Neurons per layer including input and output, e.g. the paper's
        ``[784, 2048, 2048, 10]``.
    batch_size:
        Mini-batch size (128 in Section IV-A).
    device:
        GPU being modelled (defaults to the paper's GTX 1080Ti).
    momentum:
        Whether the optimizer update uses momentum (affects its traffic).
    """

    def __init__(self, layer_sizes: list[int], batch_size: int,
                 device: DeviceSpec = GTX_1080TI, momentum: bool = True,
                 gemm_tile: int = 32, gemm_traffic_tile: int = 64,
                 solver_passes: int = 2,
                 framework_overhead_ms: float = 0.05,
                 tile_gemm_inefficiency: float = 1.1):
        if len(layer_sizes) < 2:
            raise ValueError("layer_sizes must contain at least input and output sizes")
        if any(size <= 0 for size in layer_sizes):
            raise ValueError("all layer sizes must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if framework_overhead_ms < 0:
            raise ValueError("framework_overhead_ms must be non-negative")
        self.layer_sizes = list(layer_sizes)
        self.batch_size = batch_size
        self.device = device
        self.momentum = momentum
        self.solver_passes = solver_passes
        self.framework_overhead_ms = framework_overhead_ms
        if tile_gemm_inefficiency < 1.0:
            raise ValueError("tile_gemm_inefficiency must be >= 1")
        self.tile_gemm_inefficiency = tile_gemm_inefficiency
        self.gemm = GemmCostModel(device, tile=gemm_tile, traffic_tile=gemm_traffic_tile)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def iteration(self, config: DropoutTimingConfig) -> TrainingTimeEstimate:
        """Model one full iteration (forward + backward + update) under ``config``."""
        trace = KernelTrace(label=f"mlp_{config.mode}")
        trace.add(data_transfer_cost(self.device, self.layer_sizes[0] * self.batch_size))
        trace.extend(self._forward_kernels(config))
        trace.extend(self._backward_kernels(config))
        trace.add(optimizer_update_cost(self.device, self._num_parameters(),
                                        momentum=self.momentum,
                                        solver_passes=self.solver_passes))
        trace.add(KernelCost(name="solver_framework_overhead",
                             time_ms=self.framework_overhead_ms, category="overhead"))
        return TrainingTimeEstimate(config=config, trace=trace)

    def speedup(self, config: DropoutTimingConfig,
                baseline: DropoutTimingConfig | None = None) -> float:
        """Speedup of ``config`` over the conventional-dropout baseline."""
        baseline = baseline or DropoutTimingConfig(mode="baseline", rates=config.rates)
        timer = IterationTimer(self.iteration(baseline).trace, self.iteration(config).trace)
        return timer.speedup

    # ------------------------------------------------------------------
    # kernel enumeration
    # ------------------------------------------------------------------
    def _num_layers(self) -> int:
        return len(self.layer_sizes) - 1

    def _num_parameters(self) -> int:
        total = 0
        for layer in range(self._num_layers()):
            total += self.layer_sizes[layer] * self.layer_sizes[layer + 1]
            total += self.layer_sizes[layer + 1]
        return total

    def _dropout_site(self, layer: int, config: DropoutTimingConfig) -> int:
        """Dropout-site index for the *output* of ``layer`` (-1 if not dropped).

        Hidden layers 1..L-1 (i.e. every layer except the last) are dropout
        sites, matching the paper's MLP where both hidden layers are dropped.
        """
        if layer >= self._num_layers() - 1:
            return -1
        return layer if layer < len(config.rates) else -1

    def _forward_kernels(self, config: DropoutTimingConfig) -> list[KernelCost]:
        kernels: list[KernelCost] = []
        for layer in range(self._num_layers()):
            in_size = self.layer_sizes[layer]
            out_size = self.layer_sizes[layer + 1]
            shape = GemmShape(m=out_size, n=self.batch_size, k=in_size)
            out_site = self._dropout_site(layer, config)
            in_site = self._dropout_site(layer - 1, config)
            kernels.append(self._gemm_cost(shape, config, out_site, in_site,
                                           name=f"fwd_gemm_l{layer}"))
            activations = out_size * self.batch_size
            kernels.append(elementwise_kernel_cost(
                self.device, activations, name=f"fwd_act_l{layer}"))
            if out_site >= 0 and config.mode == "baseline" and config.rate(out_site) > 0:
                kernels.append(rng_mask_kernel_cost(self.device, activations,
                                                    name=f"fwd_rng_l{layer}"))
                kernels.append(mask_apply_kernel_cost(self.device, activations,
                                                      name=f"fwd_mask_l{layer}"))
        # softmax + loss over the output layer
        kernels.append(elementwise_kernel_cost(
            self.device, self.layer_sizes[-1] * self.batch_size,
            flops_per_element=4, name="softmax_loss"))
        return kernels

    def _backward_kernels(self, config: DropoutTimingConfig) -> list[KernelCost]:
        kernels: list[KernelCost] = []
        for layer in reversed(range(self._num_layers())):
            in_size = self.layer_sizes[layer]
            out_size = self.layer_sizes[layer + 1]
            out_site = self._dropout_site(layer, config)
            in_site = self._dropout_site(layer - 1, config)
            activations = out_size * self.batch_size
            if out_site >= 0 and config.mode == "baseline" and config.rate(out_site) > 0:
                # gradient through the dropout mask: one more elementwise pass
                kernels.append(mask_apply_kernel_cost(self.device, activations,
                                                      name=f"bwd_mask_l{layer}"))
            # activation-derivative multiply
            kernels.append(elementwise_kernel_cost(
                self.device, activations, name=f"bwd_act_l{layer}"))
            # data gradient dX = dY @ W: (in x batch) = (in x out) @ (out x batch)
            if layer > 0:
                dx_shape = GemmShape(m=in_size, n=self.batch_size, k=out_size)
                kernels.append(self._gemm_cost(dx_shape, config, in_site, out_site,
                                               name=f"bwd_dx_gemm_l{layer}"))
            # weight gradient dW = dY @ X^T: (out x in) = (out x batch) @ (batch x in)
            dw_shape = GemmShape(m=out_size, n=in_size, k=self.batch_size)
            kernels.append(self._dw_gemm_cost(dw_shape, config, out_site, in_site,
                                              name=f"bwd_dw_gemm_l{layer}"))
        return kernels

    # ------------------------------------------------------------------
    # GEMM pricing under the different dropout modes
    # ------------------------------------------------------------------
    def _gemm_cost(self, shape: GemmShape, config: DropoutTimingConfig,
                   row_site: int, inner_site: int, name: str) -> KernelCost:
        """Cost of a forward/data-gradient GEMM whose M rows belong to dropout
        site ``row_site`` and whose K inner dimension belongs to ``inner_site``.

        In the approximate-dropout modes, the expected keep fraction of a
        pattern stream with global rate ``p`` is exactly ``1 - p``
        (Section III-D), so the compact GEMM is priced with the corresponding
        continuously-scaled shape plus the pattern-bookkeeping overhead.
        """
        mode = config.mode
        if mode in ("none", "baseline") or (row_site < 0 and inner_site < 0):
            return self.gemm.dense(shape, name=name)
        if mode == "naive_skip":
            rate = config.rate(row_site) if row_site >= 0 else config.rate(inner_site)
            return self.gemm.naive_branch_skip(shape, rate, name=name)
        row_keep = config.keep(row_site)
        inner_keep = config.keep(inner_site)
        if mode == "row":
            compact = shape.scaled_rows(row_keep).scaled_inner(inner_keep)
            cost = self.gemm.dense(compact, name=name)
            setup = pattern_bookkeeping_cost(self.device, compact.m,
                                             name=f"{name}_rowsetup")
            return _combine(name, cost, [setup])
        if mode == "tile":
            # TDP drops (row_keep * inner_keep) of the weight (M x K) tiles; the
            # surviving tiles are scattered, so the output stays M wide and the
            # effective inner dimension shrinks.  The scattered block layout
            # multiplies at lower efficiency than a contiguous compact GEMM
            # (worse reuse, plus the nonzero-position computation the paper
            # identifies), modelled by ``tile_gemm_inefficiency``.
            keep = row_keep * inner_keep
            compact = shape.scaled_inner(keep)
            cost = self.gemm.dense(compact, name=name)
            cost.time_ms *= self.tile_gemm_inefficiency
            kept_tiles = max(1, int(round(
                (shape.m * shape.k * keep) / (config.tile * config.tile))))
            setup = pattern_bookkeeping_cost(self.device, kept_tiles * config.tile,
                                             name=f"{name}_tilesetup")
            scatter = pattern_bookkeeping_cost(
                self.device, max(shape.output_elements // max(config.tile, 1), 1),
                name=f"{name}_scatter_offsets")
            return _combine(name, cost, [setup, scatter])
        raise ValueError(f"unhandled mode {mode!r}")

    def _dw_gemm_cost(self, shape: GemmShape, config: DropoutTimingConfig,
                      row_site: int, col_site: int, name: str) -> KernelCost:
        """Cost of a weight-gradient GEMM (out x in), batch as inner dimension.

        Under RDP both output dimensions of dW shrink (only the kept rows and
        kept input columns receive non-zero gradients); under TDP only the
        kept tiles are computed.
        """
        mode = config.mode
        if mode in ("none", "baseline") or (row_site < 0 and col_site < 0):
            return self.gemm.dense(shape, name=name)
        if mode == "naive_skip":
            rate = config.rate(row_site) if row_site >= 0 else config.rate(col_site)
            return self.gemm.naive_branch_skip(shape, rate, name=name)
        row_keep = config.keep(row_site)
        col_keep = config.keep(col_site)
        if mode == "row":
            compact = GemmShape(m=max(1, int(round(shape.m * row_keep))),
                                n=max(1, int(round(shape.n * col_keep))),
                                k=shape.k)
            cost = self.gemm.dense(compact, name=name)
            setup = pattern_bookkeeping_cost(self.device, compact.m, name=f"{name}_rowsetup")
            return _combine(name, cost, [setup])
        if mode == "tile":
            keep = row_keep * col_keep
            compact = GemmShape(m=shape.m, n=max(1, int(round(shape.n * keep))), k=shape.k)
            cost = self.gemm.dense(compact, name=name)
            cost.time_ms *= self.tile_gemm_inefficiency
            kept_tiles = max(1, int(round(
                (shape.m * shape.n * keep) / (config.tile * config.tile))))
            setup = pattern_bookkeeping_cost(self.device, kept_tiles * config.tile,
                                             name=f"{name}_tilesetup")
            return _combine(name, cost, [setup])
        raise ValueError(f"unhandled mode {mode!r}")


class LSTMTimingModel:
    """Timing model for one truncated-BPTT iteration of a word-level LSTM LM.

    Dropout placement follows the standard regularised-LSTM recipe (Zaremba et
    al.) that the paper's PTB setup implies: only the *non-recurrent*
    connections are dropped — the embedding output feeding layer 0, the output
    of each LSTM layer feeding the next, and the last layer's output feeding
    the vocabulary projection.  ``rates[i]`` is the rate applied to the output
    of LSTM layer ``i``; the embedding output is dropped with ``rates[0]``.
    The recurrent hidden-to-hidden half of each gate GEMM is never dropped,
    which is why LSTM speedups are lower than MLP speedups at the same rate.

    Parameters
    ----------
    vocab_size, embed_size, hidden_size, num_layers:
        Language-model configuration (the paper: 8800-word dictionary or a
        PTB-style corpus, 1500 hidden units, 2 or 3 layers).
    batch_size, seq_len:
        Mini-batch and unroll length (20 and 35 in Section IV-C).
    """

    def __init__(self, vocab_size: int, embed_size: int, hidden_size: int,
                 num_layers: int, batch_size: int, seq_len: int,
                 device: DeviceSpec = GTX_1080TI, momentum: bool = False,
                 gemm_tile: int = 32, gemm_traffic_tile: int = 128,
                 solver_passes: int = 2,
                 framework_overhead_ms: float = 1.0,
                 tile_gemm_inefficiency: float = 1.05):
        for label, value in (("vocab_size", vocab_size), ("embed_size", embed_size),
                             ("hidden_size", hidden_size), ("num_layers", num_layers),
                             ("batch_size", batch_size), ("seq_len", seq_len)):
            if value <= 0:
                raise ValueError(f"{label} must be positive, got {value}")
        if framework_overhead_ms < 0:
            raise ValueError("framework_overhead_ms must be non-negative")
        self.vocab_size = vocab_size
        self.embed_size = embed_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.batch_size = batch_size
        self.seq_len = seq_len
        self.device = device
        self.momentum = momentum
        self.solver_passes = solver_passes
        self.framework_overhead_ms = framework_overhead_ms
        if tile_gemm_inefficiency < 1.0:
            raise ValueError("tile_gemm_inefficiency must be >= 1")
        self.tile_gemm_inefficiency = tile_gemm_inefficiency
        self.gemm = GemmCostModel(device, tile=gemm_tile, traffic_tile=gemm_traffic_tile)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def iteration(self, config: DropoutTimingConfig) -> TrainingTimeEstimate:
        """Model one BPTT iteration (all timesteps, forward + backward + update)."""
        trace = KernelTrace(label=f"lstm_{config.mode}")
        trace.add(data_transfer_cost(self.device, self.batch_size * self.seq_len))
        # Forward + backward are both dominated by the per-timestep gate GEMMs;
        # backward costs roughly 2x the forward GEMM work (dX and dW), matching
        # the MLP model's structure.
        for direction, gemm_multiplier in (("fwd", 1), ("bwd", 2)):
            trace.extend(self._timestep_kernels(config, direction, gemm_multiplier))
        trace.extend(self._projection_kernels(config))
        trace.add(optimizer_update_cost(self.device, self._num_parameters(),
                                        momentum=self.momentum,
                                        solver_passes=self.solver_passes))
        trace.add(KernelCost(name="solver_framework_overhead",
                             time_ms=self.framework_overhead_ms, category="overhead"))
        return TrainingTimeEstimate(config=config, trace=trace)

    def speedup(self, config: DropoutTimingConfig,
                baseline: DropoutTimingConfig | None = None) -> float:
        baseline = baseline or DropoutTimingConfig(mode="baseline", rates=config.rates)
        timer = IterationTimer(self.iteration(baseline).trace, self.iteration(config).trace)
        return timer.speedup

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _num_parameters(self) -> int:
        total = self.vocab_size * self.embed_size  # embedding
        input_size = self.embed_size
        for _ in range(self.num_layers):
            total += 4 * self.hidden_size * (input_size + self.hidden_size)
            total += 4 * self.hidden_size
            input_size = self.hidden_size
        total += self.vocab_size * self.hidden_size + self.vocab_size  # projection
        return total

    def _timestep_kernels(self, config: DropoutTimingConfig, direction: str,
                          gemm_multiplier: int) -> list[KernelCost]:
        kernels: list[KernelCost] = []
        input_size = self.embed_size
        for layer in range(self.num_layers):
            # The non-recurrent input of this layer is dropped: the embedding
            # output for layer 0 (tied to rates[0]) and the previous layer's
            # output for deeper layers (rates[layer-1]).  The recurrent hidden
            # part of the fused gate GEMM is never dropped.
            input_site = 0 if layer == 0 else layer - 1
            input_keep = config.keep(input_site)
            input_rate = config.rate(input_site)
            gate_shape = GemmShape(m=4 * self.hidden_size,
                                   n=self.batch_size,
                                   k=input_size + self.hidden_size)
            cost = self._gate_gemm_cost(gate_shape, config, input_keep, input_rate,
                                        input_size,
                                        name=f"{direction}_gate_gemm_l{layer}")
            for _ in range(gemm_multiplier):
                for _ in range(self.seq_len):
                    kernels.append(cost)
            # Elementwise gate math (sigmoid/tanh/pointwise) per timestep.
            gate_elements = 4 * self.hidden_size * self.batch_size
            elementwise = elementwise_kernel_cost(
                self.device, gate_elements, flops_per_element=6,
                name=f"{direction}_gate_elem_l{layer}")
            for _ in range(self.seq_len):
                kernels.append(elementwise)
            # Dropout kernels (baseline only) on the non-recurrent input of
            # this layer, once per timestep (Fig. 1(a) data flow).
            if config.mode == "baseline" and input_rate > 0:
                dropped_elements = input_size * self.batch_size
                for _ in range(self.seq_len):
                    kernels.append(rng_mask_kernel_cost(
                        self.device, dropped_elements, name=f"{direction}_rng_l{layer}"))
                    kernels.append(mask_apply_kernel_cost(
                        self.device, dropped_elements, name=f"{direction}_mask_l{layer}"))
            input_size = self.hidden_size
        return kernels

    def _gate_gemm_cost(self, shape: GemmShape, config: DropoutTimingConfig,
                        input_keep: float, input_rate: float,
                        input_size: int, name: str) -> KernelCost:
        mode = config.mode
        if mode in ("none", "baseline") or input_keep >= 1.0:
            return self.gemm.dense(shape, name=name)
        if mode == "naive_skip":
            return self.gemm.naive_branch_skip(shape, input_rate, name=name)
        # Only the input-size part of the K dimension shrinks.
        kept_k = max(1, int(round(input_size * input_keep))) + self.hidden_size
        compact = GemmShape(m=shape.m, n=shape.n, k=kept_k)
        cost = self.gemm.dense(compact, name=name)
        if mode == "tile":
            cost.time_ms *= self.tile_gemm_inefficiency
        setup_units = (max(1, int(round(input_size * input_keep)))
                       if mode == "row" else
                       max(1, int(round(input_size * input_keep))) * 2)
        setup = pattern_bookkeeping_cost(self.device, setup_units, name=f"{name}_setup")
        return KernelCost(name=name, flops=cost.flops + setup.flops,
                          global_bytes=cost.global_bytes + setup.global_bytes,
                          time_ms=cost.time_ms + setup.time_ms, category="gemm")

    def _projection_kernels(self, config: DropoutTimingConfig) -> list[KernelCost]:
        """Vocabulary projection (softmax layer) over all timesteps, fwd + bwd."""
        kernels: list[KernelCost] = []
        tokens = self.batch_size * self.seq_len
        last_site = self.num_layers - 1
        keep = config.keep(last_site)
        rate = config.rate(last_site)
        shape = GemmShape(m=self.vocab_size, n=tokens, k=self.hidden_size)
        if config.mode in ("none", "baseline") or keep >= 1.0:
            cost = self.gemm.dense(shape, name="proj_gemm")
        elif config.mode == "naive_skip":
            cost = self.gemm.naive_branch_skip(shape, rate, name="proj_gemm")
        else:
            compact = shape.scaled_inner(keep)
            base = self.gemm.dense(compact, name="proj_gemm")
            if config.mode == "tile":
                base.time_ms *= self.tile_gemm_inefficiency
            setup = pattern_bookkeeping_cost(
                self.device, max(1, int(round(self.hidden_size * keep))),
                name="proj_gemm_setup")
            cost = KernelCost(name="proj_gemm", flops=base.flops + setup.flops,
                              global_bytes=base.global_bytes + setup.global_bytes,
                              time_ms=base.time_ms + setup.time_ms, category="gemm")
        # forward + dX + dW
        kernels.extend([cost, cost, cost])
        if config.mode == "baseline" and rate > 0:
            hidden_elements = self.hidden_size * tokens
            kernels.append(rng_mask_kernel_cost(self.device, hidden_elements,
                                                name="proj_rng"))
            kernels.append(mask_apply_kernel_cost(self.device, hidden_elements,
                                                  name="proj_mask"))
        kernels.append(elementwise_kernel_cost(
            self.device, self.vocab_size * tokens, flops_per_element=4,
            name="softmax_loss"))
        return kernels


def _combine(name: str, gemm_cost: KernelCost, extras: list[KernelCost]) -> KernelCost:
    """Merge a GEMM cost with its pattern-bookkeeping extras into one record."""
    return KernelCost(
        name=name,
        flops=gemm_cost.flops + sum(extra.flops for extra in extras),
        global_bytes=gemm_cost.global_bytes + sum(extra.global_bytes for extra in extras),
        time_ms=gemm_cost.time_ms + sum(extra.time_ms for extra in extras),
        category="gemm",
    )
