"""Tiled-GEMM cost model: dense, row-compacted (RDP) and tile-compacted (TDP).

The model follows the classic shared-memory tiled GEMM that Caffe/cuBLAS use
(and that the paper's Fig. 3 sketches):

* the output ``M x N`` matrix is divided into ``tile x tile`` blocks, one per
  thread block;
* each block streams ``K / tile`` pairs of operand tiles from global memory
  through shared memory, so each element of A is read ``ceil(N / tile)`` times
  and each element of B ``ceil(M / tile)`` times from DRAM;
* execution time is the roofline maximum of the compute-bound and the
  memory-bound estimate, derated by SM occupancy when the grid of thread
  blocks is too small to fill the device, plus the kernel launch overhead.

The two compact variants re-run the same model on the reduced operand shapes
and add the small pattern-bookkeeping cost (gathering kept rows / computing
kept-tile offsets) that the paper identifies as TDP's slowdown source.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dropout.patterns import RowDropoutPattern, TileDropoutPattern
from repro.gpu.device import DeviceSpec
from repro.gpu.kernels import KernelCost, pattern_bookkeeping_cost


@dataclass(frozen=True)
class GemmShape:
    """Dimensions of a GEMM ``C[M, N] = A[M, K] @ B[K, N]``.

    In the fully-connected forward pass of the paper's layout, ``M`` is the
    number of output neurons (weight rows), ``K`` the number of input neurons
    and ``N`` the batch size.
    """

    m: int
    n: int
    k: int

    def __post_init__(self):
        if self.m <= 0 or self.n <= 0 or self.k <= 0:
            raise ValueError(f"GEMM dimensions must be positive, got {self}")

    @property
    def flops(self) -> float:
        """Multiply-accumulate count, 2 FLOPs each."""
        return 2.0 * self.m * self.n * self.k

    @property
    def output_elements(self) -> int:
        return self.m * self.n

    def scaled_rows(self, keep_fraction: float) -> "GemmShape":
        """Shape with only ``keep_fraction`` of the M rows retained."""
        return GemmShape(m=max(1, int(round(self.m * keep_fraction))), n=self.n, k=self.k)

    def scaled_inner(self, keep_fraction: float) -> "GemmShape":
        """Shape with only ``keep_fraction`` of the K inner dimension retained."""
        return GemmShape(m=self.m, n=self.n, k=max(1, int(round(self.k * keep_fraction))))


class GemmCostModel:
    """Roofline cost model for tiled GEMMs on a :class:`DeviceSpec`.

    Parameters
    ----------
    device:
        The GPU being modelled.
    tile:
        Thread-block output tile edge (32 to match the shared-memory banks,
        as the paper chooses); used for the occupancy estimate.
    traffic_tile:
        Effective blocking factor for DRAM traffic.  Production GEMM kernels
        block at a much coarser granularity than one warp-tile (register
        blocking plus L2 reuse), so operands are re-read far fewer times than
        the naive 32x32 shared-memory tiling would suggest.
    """

    def __init__(self, device: DeviceSpec, tile: int = 32, traffic_tile: int = 128):
        if tile <= 0:
            raise ValueError("tile must be positive")
        if traffic_tile <= 0:
            raise ValueError("traffic_tile must be positive")
        self.device = device
        self.tile = tile
        self.traffic_tile = traffic_tile

    # ------------------------------------------------------------------
    # dense GEMM
    # ------------------------------------------------------------------
    def dense(self, shape: GemmShape, name: str = "gemm_dense") -> KernelCost:
        """Cost of a dense GEMM of the given shape."""
        return self._tiled_cost(shape, name=name)

    # ------------------------------------------------------------------
    # compact GEMMs under the dropout patterns
    # ------------------------------------------------------------------
    def row_compact(self, shape: GemmShape, pattern: RowDropoutPattern,
                    input_pattern: RowDropoutPattern | None = None,
                    name: str = "gemm_row_compact") -> KernelCost:
        """Cost of the RDP compact GEMM.

        The output-row dimension shrinks to the pattern's keep fraction; when
        the previous layer's pattern is supplied the inner (K) dimension
        shrinks as well, because the dropped input neurons' columns are never
        fetched (Fig. 3(a), step 2).
        """
        compact = shape.scaled_rows(pattern.keep_fraction)
        if input_pattern is not None:
            compact = compact.scaled_inner(input_pattern.keep_fraction)
        cost = self._tiled_cost(compact, name=name)
        bookkeeping = pattern_bookkeeping_cost(self.device, pattern.num_kept,
                                               name=f"{name}_rowsetup")
        return _merge(name, [cost, bookkeeping], category="gemm")

    def tile_compact(self, shape: GemmShape, pattern: TileDropoutPattern,
                     name: str = "gemm_tile_compact") -> KernelCost:
        """Cost of the TDP block GEMM.

        Only the surviving weight tiles are fetched and multiplied.  Each
        surviving tile still needs the matching tile of the input matrix, and
        the scattered output positions must be computed first — the paper's
        observed TDP overhead ("calculation of the nonzero positions in the
        output matrix before matrix multiplication").
        """
        if (pattern.rows, pattern.cols) != (shape.m, shape.k):
            raise ValueError(
                f"pattern shape ({pattern.rows}, {pattern.cols}) does not match GEMM "
                f"weight dims (M={shape.m}, K={shape.k})")
        keep = pattern.keep_fraction
        # The surviving tiles are scattered over the weight matrix, so the
        # effective GEMM has the same N but only keep*M*K worth of
        # multiply-accumulates; model it as a GEMM with the inner dimension
        # scaled by keep (tile rows stay resident while columns shrink).
        compact = shape.scaled_inner(keep)
        cost = self._tiled_cost(compact, name=name)
        bookkeeping = pattern_bookkeeping_cost(
            self.device, pattern.num_kept_tiles * pattern.tile,
            name=f"{name}_tilesetup")
        # TDP additionally recomputes per-tile output offsets on the host/in a
        # prologue; charge one extra small kernel proportional to the output.
        scatter_setup = pattern_bookkeeping_cost(
            self.device, max(shape.output_elements // max(pattern.tile, 1), 1),
            name=f"{name}_scatter_offsets")
        return _merge(name, [cost, bookkeeping, scatter_setup], category="gemm")

    # ------------------------------------------------------------------
    # naive masked GEMM (the strawman of Fig. 1(b))
    # ------------------------------------------------------------------
    def naive_branch_skip(self, shape: GemmShape, drop_rate: float,
                          name: str = "gemm_naive_skip") -> KernelCost:
        """Cost of a dense GEMM whose threads branch on the dropout mask.

        Because all threads of a warp must execute both sides of a divergent
        branch, a warp only saves time when *all 32* of its threads are
        dropped; with an i.i.d. Bernoulli mask that probability is
        ``drop_rate**32`` — negligible — so the kernel costs the same as the
        dense GEMM plus the mask test.  This reproduces the Fig. 1(b)
        argument.
        """
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError("drop_rate must be in [0, 1)")
        dense_cost = self._tiled_cost(shape, name=name)
        warp_all_dropped_probability = drop_rate ** self.device.warp_size
        useful_fraction = 1.0 - warp_all_dropped_probability
        branch_overhead = 1.02  # predicate evaluation on every thread
        adjusted_time = dense_cost.time_ms * useful_fraction * branch_overhead
        return KernelCost(name=name, flops=dense_cost.flops * (1.0 - drop_rate),
                          global_bytes=dense_cost.global_bytes,
                          time_ms=adjusted_time + self.device.kernel_launch_overhead_ms,
                          category="gemm")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _tiled_cost(self, shape: GemmShape, name: str) -> KernelCost:
        device = self.device
        tile = self.tile
        grid_m = math.ceil(shape.m / tile)
        grid_n = math.ceil(shape.n / tile)
        thread_blocks = grid_m * grid_n

        flops = shape.flops
        # Global traffic of the blocked algorithm: A is streamed once per
        # column-block of C, B once per row-block of C (at the coarse
        # traffic-tile granularity), C written once.
        traffic_grid_m = math.ceil(shape.m / self.traffic_tile)
        traffic_grid_n = math.ceil(shape.n / self.traffic_tile)
        a_bytes = shape.m * shape.k * traffic_grid_n * device.dtype_bytes
        b_bytes = shape.k * shape.n * traffic_grid_m * device.dtype_bytes
        c_bytes = shape.m * shape.n * device.dtype_bytes
        global_bytes = float(a_bytes + b_bytes + c_bytes)

        occupancy = device.occupancy_derate(thread_blocks)
        compute_time_ms = flops / (device.effective_gemm_flops * occupancy) * 1e3
        memory_time_ms = global_bytes / device.effective_bandwidth_bytes * 1e3
        time_ms = max(compute_time_ms, memory_time_ms) + device.kernel_launch_overhead_ms
        return KernelCost(name=name, flops=flops, global_bytes=global_bytes,
                          time_ms=time_ms, category="gemm")


def _merge(name: str, costs: list[KernelCost], category: str) -> KernelCost:
    return KernelCost(
        name=name,
        flops=sum(c.flops for c in costs),
        global_bytes=sum(c.global_bytes for c in costs),
        time_ms=sum(c.time_ms for c in costs),
        category=category,
    )
