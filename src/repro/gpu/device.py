"""GPU device specifications for the analytical cost model.

Only the handful of architectural parameters that determine the paper's
speedup mechanism are modelled: peak arithmetic throughput, global-memory
bandwidth and latency ratio, shared-memory capacity and bank count, warp size
and the number of streaming multiprocessors (for the underutilisation derate
applied to small compact GEMMs).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural parameters of a GPGPU used by the cost model.

    Attributes
    ----------
    name:
        Human-readable device name.
    num_sms:
        Number of streaming multiprocessors.
    cores_per_sm:
        FP32 lanes per SM (each retiring one FMA = 2 FLOPs per cycle).
    clock_ghz:
        Core clock in GHz.
    warp_size:
        Threads per warp (32 for NVIDIA).
    shared_mem_per_block_kb:
        Shared-memory capacity available to one thread block, in KiB (48 on
        the 1080Ti, as quoted by the paper).
    shared_mem_banks:
        Number of shared-memory banks; the paper picks 32x32 tiles to match.
    global_mem_bandwidth_gbps:
        DRAM bandwidth in GB/s.
    global_mem_latency_ratio:
        Ratio of global-memory to shared-memory access latency (~100x per the
        paper); used for latency-bound small transfers.
    kernel_launch_overhead_us:
        Fixed host-side cost of launching one kernel, in microseconds.
    gemm_efficiency:
        Fraction of peak FLOPs a well-tuned large GEMM achieves.
    elementwise_efficiency:
        Fraction of peak DRAM bandwidth an elementwise kernel achieves.
    dtype_bytes:
        Bytes per element (4 for FP32 training).
    """

    name: str
    num_sms: int
    cores_per_sm: int
    clock_ghz: float
    warp_size: int = 32
    shared_mem_per_block_kb: int = 48
    shared_mem_banks: int = 32
    global_mem_bandwidth_gbps: float = 484.0
    global_mem_latency_ratio: float = 100.0
    kernel_launch_overhead_us: float = 5.0
    gemm_efficiency: float = 0.65
    elementwise_efficiency: float = 0.75
    dtype_bytes: int = 4

    def __post_init__(self):
        if self.num_sms <= 0 or self.cores_per_sm <= 0:
            raise ValueError("num_sms and cores_per_sm must be positive")
        if self.clock_ghz <= 0:
            raise ValueError("clock_ghz must be positive")
        if not 0 < self.gemm_efficiency <= 1:
            raise ValueError("gemm_efficiency must be in (0, 1]")
        if not 0 < self.elementwise_efficiency <= 1:
            raise ValueError("elementwise_efficiency must be in (0, 1]")

    # ------------------------------------------------------------------
    # derived throughputs
    # ------------------------------------------------------------------
    @property
    def peak_flops(self) -> float:
        """Peak FP32 throughput in FLOP/s (2 FLOPs per core per cycle, FMA)."""
        return self.num_sms * self.cores_per_sm * 2.0 * self.clock_ghz * 1e9

    @property
    def effective_gemm_flops(self) -> float:
        """Sustained GEMM throughput in FLOP/s."""
        return self.peak_flops * self.gemm_efficiency

    @property
    def global_bandwidth_bytes(self) -> float:
        """DRAM bandwidth in bytes/s."""
        return self.global_mem_bandwidth_gbps * 1e9

    @property
    def effective_bandwidth_bytes(self) -> float:
        """Sustained elementwise bandwidth in bytes/s."""
        return self.global_bandwidth_bytes * self.elementwise_efficiency

    @property
    def kernel_launch_overhead_ms(self) -> float:
        return self.kernel_launch_overhead_us * 1e-3

    @property
    def shared_mem_per_block_bytes(self) -> int:
        return self.shared_mem_per_block_kb * 1024

    def occupancy_derate(self, thread_blocks: int) -> float:
        """Throughput derate when a kernel has too few blocks to fill the GPU.

        A GEMM whose compact operands only produce a handful of thread blocks
        cannot occupy all SMs, so its sustained throughput drops roughly
        proportionally.  This is the effect that caps the achievable speedup
        for very small layers (Table I, 1024x64) and for very aggressive
        dropout on small matrices.
        """
        if thread_blocks <= 0:
            return 1.0 / (4.0 * self.num_sms)
        # Assume ~4 resident blocks per SM are needed to hide latency.
        blocks_for_full_occupancy = 4 * self.num_sms
        return min(1.0, thread_blocks / blocks_for_full_occupancy)


GTX_1080TI = DeviceSpec(
    name="NVIDIA GTX 1080 Ti",
    num_sms=28,
    cores_per_sm=128,
    clock_ghz=1.58,
    warp_size=32,
    shared_mem_per_block_kb=48,
    shared_mem_banks=32,
    global_mem_bandwidth_gbps=484.0,
    global_mem_latency_ratio=100.0,
    kernel_launch_overhead_us=5.0,
    gemm_efficiency=0.65,
    elementwise_efficiency=0.75,
)
"""The device the paper evaluates on (Section II-B / IV)."""


SMALL_GPU = DeviceSpec(
    name="Small embedded GPU",
    num_sms=4,
    cores_per_sm=128,
    clock_ghz=1.0,
    warp_size=32,
    shared_mem_per_block_kb=48,
    shared_mem_banks=32,
    global_mem_bandwidth_gbps=60.0,
    global_mem_latency_ratio=100.0,
    kernel_launch_overhead_us=10.0,
    gemm_efficiency=0.55,
    elementwise_efficiency=0.6,
)
"""A much smaller device, used by tests/ablations to check model trends."""
