"""Kernel traces and iteration timers.

:class:`KernelTrace` accumulates :class:`~repro.gpu.kernels.KernelCost`
records for one training iteration (or any other unit of work) and produces
totals and per-category breakdowns.  :class:`IterationTimer` pairs a baseline
trace with an alternative trace and reports the "old time / new time" speedup
the paper's figures plot.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.gpu.kernels import KernelCost


@dataclass
class KernelTrace:
    """An ordered list of kernel launches with aggregate statistics."""

    label: str = "trace"
    kernels: list[KernelCost] = field(default_factory=list)

    def add(self, cost: KernelCost) -> "KernelTrace":
        self.kernels.append(cost)
        return self

    def extend(self, costs: list[KernelCost]) -> "KernelTrace":
        self.kernels.extend(costs)
        return self

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    @property
    def total_time_ms(self) -> float:
        return float(sum(k.time_ms for k in self.kernels))

    @property
    def total_flops(self) -> float:
        return float(sum(k.flops for k in self.kernels))

    @property
    def total_global_bytes(self) -> float:
        return float(sum(k.global_bytes for k in self.kernels))

    @property
    def num_kernels(self) -> int:
        return len(self.kernels)

    def time_by_category(self) -> dict[str, float]:
        """Total time per kernel category (gemm / dropout / optimizer / ...)."""
        breakdown: dict[str, float] = defaultdict(float)
        for kernel in self.kernels:
            breakdown[kernel.category] += kernel.time_ms
        return dict(breakdown)

    def time_by_name(self) -> dict[str, float]:
        breakdown: dict[str, float] = defaultdict(float)
        for kernel in self.kernels:
            breakdown[kernel.name] += kernel.time_ms
        return dict(breakdown)

    def scaled(self, factor: float, label: str | None = None) -> "KernelTrace":
        """A trace with every kernel's magnitudes multiplied by ``factor``.

        Used to extrapolate one modelled iteration to a full epoch or training
        run (``factor`` = number of iterations).
        """
        out = KernelTrace(label=label or self.label)
        out.kernels = [k.scaled(factor) for k in self.kernels]
        return out

    def summary(self) -> str:
        """Human-readable one-line summary."""
        cats = ", ".join(f"{name}={time:.3f}ms"
                         for name, time in sorted(self.time_by_category().items()))
        return (f"{self.label}: {self.total_time_ms:.3f} ms over "
                f"{self.num_kernels} kernels ({cats})")


@dataclass
class IterationTimer:
    """Pairs a baseline and an accelerated trace and computes the speedup."""

    baseline: KernelTrace
    accelerated: KernelTrace

    @property
    def baseline_time_ms(self) -> float:
        return self.baseline.total_time_ms

    @property
    def accelerated_time_ms(self) -> float:
        return self.accelerated.total_time_ms

    @property
    def speedup(self) -> float:
        """"old time / new time" as plotted in the paper's figures."""
        new_time = self.accelerated.total_time_ms
        if new_time <= 0:
            raise ZeroDivisionError("accelerated trace has zero total time")
        return self.baseline.total_time_ms / new_time

    @property
    def time_saved_fraction(self) -> float:
        """Fraction of the baseline time eliminated (the paper's 20%-77%)."""
        if self.baseline_time_ms <= 0:
            return 0.0
        return 1.0 - self.accelerated_time_ms / self.baseline_time_ms

    def report(self) -> str:
        return (f"baseline {self.baseline_time_ms:.3f} ms -> "
                f"accelerated {self.accelerated_time_ms:.3f} ms "
                f"(speedup {self.speedup:.2f}x, "
                f"time saved {100 * self.time_saved_fraction:.1f}%)")
