"""Cost records and non-GEMM kernel models.

Every modelled kernel produces a :class:`KernelCost` record with its FLOP
count, global-memory traffic and estimated execution time.  The helpers here
cover the kernels a training iteration launches besides the GEMMs:

* elementwise kernels (activation functions, bias add, elementwise dropout
  mask application),
* the random-number-generation kernel that produces the Bernoulli mask for
  conventional dropout (this kernel disappears entirely under approximate
  random dropout — "skip the dropout layer computing"),
* the optimizer update kernel (reads weight/gradient/velocity, writes
  weight/velocity — *not* reduced by dropout, which is one reason measured
  speedups are far below the raw GEMM reduction),
* host-to-device data transfer of the input batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.device import DeviceSpec


@dataclass
class KernelCost:
    """Cost of one kernel launch.

    Attributes
    ----------
    name:
        Kernel identifier (used by the profiler breakdowns).
    flops:
        Floating-point operations executed.
    global_bytes:
        Bytes moved to/from global memory (DRAM).
    time_ms:
        Modelled execution time in milliseconds, including launch overhead.
    category:
        Coarse grouping used for reports: ``"gemm"``, ``"elementwise"``,
        ``"dropout"``, ``"optimizer"``, ``"transfer"`` or ``"overhead"``.
    """

    name: str
    flops: float = 0.0
    global_bytes: float = 0.0
    time_ms: float = 0.0
    category: str = "elementwise"

    def scaled(self, factor: float, name: str | None = None) -> "KernelCost":
        """A copy with all magnitudes multiplied by ``factor``."""
        return KernelCost(
            name=name or self.name,
            flops=self.flops * factor,
            global_bytes=self.global_bytes * factor,
            time_ms=self.time_ms * factor,
            category=self.category,
        )


def elementwise_kernel_cost(device: DeviceSpec, num_elements: int,
                            reads_per_element: int = 1,
                            writes_per_element: int = 1,
                            flops_per_element: int = 1,
                            name: str = "elementwise") -> KernelCost:
    """Bandwidth-bound elementwise kernel (activation, mask multiply, bias add)."""
    if num_elements < 0:
        raise ValueError("num_elements must be non-negative")
    bytes_moved = num_elements * (reads_per_element + writes_per_element) * device.dtype_bytes
    flops = float(num_elements * flops_per_element)
    bandwidth_time = bytes_moved / device.effective_bandwidth_bytes * 1e3
    compute_time = flops / device.peak_flops * 1e3
    time_ms = max(bandwidth_time, compute_time) + device.kernel_launch_overhead_ms
    return KernelCost(name=name, flops=flops, global_bytes=bytes_moved,
                      time_ms=time_ms, category="elementwise")


def rng_mask_kernel_cost(device: DeviceSpec, num_elements: int,
                         name: str = "dropout_rng_mask") -> KernelCost:
    """Bernoulli mask generation for conventional dropout.

    Generating one pseudo-random number per element costs roughly 20 simple
    ops (Philox/XORWOW state update plus comparison), and the mask is written
    out to global memory so the separate mask-multiply kernel can consume it —
    the Fig. 1(a) data flow.
    """
    cost = elementwise_kernel_cost(
        device, num_elements, reads_per_element=0, writes_per_element=1,
        flops_per_element=20, name=name)
    cost.category = "dropout"
    return cost


def mask_apply_kernel_cost(device: DeviceSpec, num_elements: int,
                           name: str = "dropout_mask_apply") -> KernelCost:
    """Elementwise multiply of the output matrix by the 0/1 mask (Fig. 1(a))."""
    cost = elementwise_kernel_cost(
        device, num_elements, reads_per_element=2, writes_per_element=1,
        flops_per_element=1, name=name)
    cost.category = "dropout"
    return cost


def optimizer_update_cost(device: DeviceSpec, num_parameters: int,
                          momentum: bool = True, solver_passes: int = 1,
                          name: str = "sgd_update") -> KernelCost:
    """SGD (+momentum) parameter update.

    Reads weight, gradient and (optionally) velocity; writes weight and
    velocity.  Dropout does not shrink this kernel: every weight is updated
    every iteration regardless of the sampled pattern, which is part of the
    fixed per-iteration cost limiting the end-to-end speedup.

    ``solver_passes`` models solvers (like Caffe's) that touch the full
    parameter set several times per iteration — separate kernels for gradient
    scaling, weight-decay regularisation, momentum update and the weight
    write-back — rather than one fused update.
    """
    if solver_passes < 1:
        raise ValueError("solver_passes must be >= 1")
    reads = 3 if momentum else 2
    writes = 2 if momentum else 1
    cost = elementwise_kernel_cost(
        device, num_parameters, reads_per_element=reads * solver_passes,
        writes_per_element=writes * solver_passes,
        flops_per_element=(4 if momentum else 2) * solver_passes, name=name)
    cost.category = "optimizer"
    return cost


def data_transfer_cost(device: DeviceSpec, num_elements: int,
                       pcie_bandwidth_gbps: float = 12.0,
                       name: str = "h2d_transfer") -> KernelCost:
    """Host-to-device copy of the input batch over PCIe."""
    if num_elements < 0:
        raise ValueError("num_elements must be non-negative")
    bytes_moved = num_elements * device.dtype_bytes
    time_ms = bytes_moved / (pcie_bandwidth_gbps * 1e9) * 1e3 + device.kernel_launch_overhead_ms
    return KernelCost(name=name, flops=0.0, global_bytes=bytes_moved,
                      time_ms=time_ms, category="transfer")


def pattern_bookkeeping_cost(device: DeviceSpec, num_kept_units: int,
                             name: str = "pattern_index_setup") -> KernelCost:
    """Index computation for the compact layout of approximate dropout.

    The paper notes a "little slowdown ... induced by the calculation of the
    nonzero positions in the output matrix before matrix multiplication" for
    TDP; RDP has the same bookkeeping at row granularity (much cheaper).  The
    cost is a tiny kernel computing the scatter offsets of the kept rows/tiles.
    """
    cost = elementwise_kernel_cost(
        device, max(num_kept_units, 1), reads_per_element=1, writes_per_element=1,
        flops_per_element=4, name=name)
    cost.category = "dropout"
    return cost
