"""Synthetic 28x28 digit-like classification data (MNIST stand-in).

Each of the 10 classes is defined by a small set of prototype images built
from random smooth stroke fields; samples are prototypes plus elastic-ish
jitter (random shift), multiplicative contrast variation and additive pixel
noise.  The task is deliberately *not* trivially separable — nearest-prototype
classification sits well below 100% — so that over-fitting and therefore
dropout regularisation matter, which is what the paper's accuracy comparison
needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

IMAGE_SIZE = 28
NUM_CLASSES = 10


@dataclass
class SyntheticMNIST:
    """A train/test split of the synthetic digit task.

    Attributes
    ----------
    train_images, test_images:
        Float arrays of shape ``(n, 784)`` scaled to ``[0, 1]``.
    train_labels, test_labels:
        Integer class labels in ``[0, 10)``.
    """

    train_images: np.ndarray
    train_labels: np.ndarray
    test_images: np.ndarray
    test_labels: np.ndarray

    @property
    def num_features(self) -> int:
        return self.train_images.shape[1]

    @property
    def num_classes(self) -> int:
        return NUM_CLASSES

    def __post_init__(self):
        if self.train_images.shape[0] != self.train_labels.shape[0]:
            raise ValueError("train images/labels length mismatch")
        if self.test_images.shape[0] != self.test_labels.shape[0]:
            raise ValueError("test images/labels length mismatch")


def _smooth_field(rng: np.random.Generator, size: int, smoothness: int = 3) -> np.ndarray:
    """A smooth random 2-D field in [0, 1] built by box-blurring white noise."""
    field = rng.random((size, size))
    for _ in range(smoothness):
        padded = np.pad(field, 1, mode="edge")
        field = (
            padded[:-2, :-2] + padded[:-2, 1:-1] + padded[:-2, 2:]
            + padded[1:-1, :-2] + padded[1:-1, 1:-1] + padded[1:-1, 2:]
            + padded[2:, :-2] + padded[2:, 1:-1] + padded[2:, 2:]
        ) / 9.0
    field -= field.min()
    peak = field.max()
    return field / peak if peak > 0 else field


def _class_prototypes(rng: np.random.Generator, prototypes_per_class: int) -> np.ndarray:
    """Build ``(10, prototypes_per_class, 28, 28)`` class-conditional templates."""
    prototypes = np.zeros((NUM_CLASSES, prototypes_per_class, IMAGE_SIZE, IMAGE_SIZE))
    for digit in range(NUM_CLASSES):
        base = _smooth_field(rng, IMAGE_SIZE)
        threshold = np.quantile(base, 0.72)
        stroke = (base > threshold).astype(np.float64)
        for proto in range(prototypes_per_class):
            variation = _smooth_field(rng, IMAGE_SIZE)
            prototypes[digit, proto] = np.clip(stroke * (0.6 + 0.4 * variation), 0.0, 1.0)
    return prototypes


def _render_samples(rng: np.random.Generator, prototypes: np.ndarray,
                    labels: np.ndarray, noise: float) -> np.ndarray:
    """Render one image per label by jittering a random prototype of its class."""
    count = labels.shape[0]
    prototypes_per_class = prototypes.shape[1]
    images = np.empty((count, IMAGE_SIZE, IMAGE_SIZE))
    proto_choice = rng.integers(0, prototypes_per_class, size=count)
    shifts = rng.integers(-2, 3, size=(count, 2))
    contrasts = rng.uniform(0.7, 1.3, size=count)
    for i in range(count):
        image = prototypes[labels[i], proto_choice[i]]
        image = np.roll(image, shift=tuple(shifts[i]), axis=(0, 1))
        images[i] = image * contrasts[i]
    images += rng.normal(0.0, noise, size=images.shape)
    return np.clip(images, 0.0, 1.0).reshape(count, IMAGE_SIZE * IMAGE_SIZE)


def make_synthetic_mnist(num_train: int = 4000, num_test: int = 1000,
                         noise: float = 0.45, prototypes_per_class: int = 6,
                         label_noise: float = 0.05,
                         seed: int = 0) -> SyntheticMNIST:
    """Generate a deterministic synthetic digit-classification dataset.

    Parameters
    ----------
    num_train, num_test:
        Number of training and test samples.
    noise:
        Standard deviation of the additive pixel noise; larger values make the
        task harder and increase the benefit of regularisation.
    prototypes_per_class:
        How many distinct templates each class has (intra-class variation).
    label_noise:
        Fraction of *training* labels replaced with a random class.  The test
        labels stay clean.  Label noise gives an over-parameterised MLP
        something to over-fit to, which is what makes the dropout-vs-no-dropout
        and approximate-vs-conventional comparisons informative.
    seed:
        Seed controlling both the class templates and the sample noise, so two
        calls with the same arguments return identical data.
    """
    if num_train <= 0 or num_test <= 0:
        raise ValueError("num_train and num_test must be positive")
    if noise < 0:
        raise ValueError("noise must be non-negative")
    if not 0.0 <= label_noise < 1.0:
        raise ValueError("label_noise must be in [0, 1)")
    rng = np.random.default_rng(seed)
    prototypes = _class_prototypes(rng, prototypes_per_class)
    train_labels = rng.integers(0, NUM_CLASSES, size=num_train)
    test_labels = rng.integers(0, NUM_CLASSES, size=num_test)
    train_images = _render_samples(rng, prototypes, train_labels, noise)
    test_images = _render_samples(rng, prototypes, test_labels, noise)
    if label_noise > 0:
        flip = rng.random(num_train) < label_noise
        train_labels = train_labels.copy()
        train_labels[flip] = rng.integers(0, NUM_CLASSES, size=int(flip.sum()))
    return SyntheticMNIST(
        train_images=train_images,
        train_labels=train_labels,
        test_images=test_images,
        test_labels=test_labels,
    )
