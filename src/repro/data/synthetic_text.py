"""Synthetic word-level corpora (stand-ins for the 8800-word dictionary corpus
and the Penn Treebank).

The generator produces a token stream with the two statistical properties a
language model can exploit:

* a Zipfian unigram distribution (a few very frequent words, a long tail), and
* first-order Markov structure: each word has a small set of likely successor
  words, so a model that learns the bigram transitions beats the unigram
  baseline and perplexity comparisons between dropout variants are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class SyntheticCorpus:
    """A train/validation/test token-id stream plus its generator metadata.

    Attributes
    ----------
    train, valid, test:
        1-D integer arrays of token ids in ``[0, vocab_size)``.
    vocab_size:
        Number of distinct words.
    """

    train: np.ndarray
    valid: np.ndarray
    test: np.ndarray
    vocab_size: int

    def __post_init__(self):
        for split_name, split in (("train", self.train), ("valid", self.valid),
                                  ("test", self.test)):
            split = np.asarray(split)
            if split.ndim != 1:
                raise ValueError(f"{split_name} split must be a 1-D token stream")
            if split.size and (split.min() < 0 or split.max() >= self.vocab_size):
                raise ValueError(f"{split_name} split contains out-of-vocabulary ids")

    @property
    def num_train_tokens(self) -> int:
        return int(self.train.size)


def _zipf_weights(vocab_size: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def _inverse_cdf_draw(cdf: np.ndarray, uniforms: np.ndarray) -> np.ndarray:
    """Vectorized categorical sampling: one ``searchsorted`` per batch of
    draws against a precomputed cumulative distribution (clipped so floating
    round-off in ``cdf[-1]`` can never index past the support)."""
    return np.minimum(np.searchsorted(cdf, uniforms), len(cdf) - 1)


def _build_transition_structure(rng: np.random.Generator, vocab_size: int,
                                successors_per_word: int, exponent: float,
                                ) -> tuple[np.ndarray, np.ndarray]:
    """For each word, a small successor set and its cumulative probabilities.

    Successors are drawn from the Zipfian unigram distribution so frequent
    words remain frequent as targets, then each word's successor probabilities
    are themselves skewed so that the corpus has learnable bigram structure.
    The draw is one vectorized inverse-CDF lookup — ``vocab * successors``
    binary searches — so a 500k-word structure builds in well under a second
    where a per-word full-vocabulary draw would take minutes.

    Returns ``(successors, successor_cdf)``: the per-word successor ids and
    the *cumulative* per-row probabilities (what the stream walk's per-token
    inverse-CDF lookup consumes directly).
    """
    unigram_cdf = np.cumsum(_zipf_weights(vocab_size, exponent))
    successors = _inverse_cdf_draw(
        unigram_cdf, rng.random((vocab_size, successors_per_word)))
    raw = rng.random((vocab_size, successors_per_word)) ** 2 + 1e-3
    probabilities = raw / raw.sum(axis=1, keepdims=True)
    return successors, np.cumsum(probabilities, axis=1)


def _generate_stream(rng: np.random.Generator, length: int, vocab_size: int,
                     successors: np.ndarray, successor_cdf: np.ndarray,
                     unigram_cdf: np.ndarray,
                     reset_probability: float) -> np.ndarray:
    """Walk the bigram graph, occasionally resetting from the unigram prior.

    Every unigram restart (the initial token plus one per reset) is drawn in
    a single vectorized inverse-CDF batch up front, and the per-token Markov
    step searches only its word's precomputed ``successors_per_word``-entry
    cumulative row — no per-token work scales with the vocabulary, which is
    what lets a 500k-vocab corpus build in seconds.
    """
    stream = np.empty(length, dtype=np.int64)
    resets = rng.random(length) < reset_probability
    successor_draws = rng.random(length)
    restarts = _inverse_cdf_draw(unigram_cdf,
                                 rng.random(int(resets.sum()) + 1))
    current = int(restarts[0])
    restart_cursor = 1
    num_successors = successor_cdf.shape[1]
    for position in range(length):
        stream[position] = current
        if resets[position]:
            current = int(restarts[restart_cursor])
            restart_cursor += 1
            continue
        choice = int(np.searchsorted(successor_cdf[current],
                                     successor_draws[position]))
        choice = min(choice, num_successors - 1)
        current = int(successors[current, choice])
    return stream


def make_synthetic_corpus(vocab_size: int = 8800, num_train_tokens: int = 60000,
                          num_valid_tokens: int = 6000, num_test_tokens: int = 6000,
                          successors_per_word: int = 8, zipf_exponent: float = 1.05,
                          reset_probability: float = 0.08,
                          seed: int = 0) -> SyntheticCorpus:
    """Generate a deterministic synthetic language-modelling corpus.

    Parameters
    ----------
    vocab_size:
        Number of distinct words (8800 mirrors the paper's dictionary task,
        10 000 the PTB vocabulary).
    num_train_tokens, num_valid_tokens, num_test_tokens:
        Lengths of the three splits.
    successors_per_word:
        Size of each word's likely-successor set; smaller values make the
        corpus more predictable (lower achievable perplexity).
    zipf_exponent:
        Skew of the unigram distribution.
    reset_probability:
        Probability of restarting the Markov walk from the unigram prior at
        each step (keeps the chain mixing over the whole vocabulary).
    seed:
        Controls the transition structure and all three splits.
    """
    if vocab_size < 2:
        raise ValueError("vocab_size must be at least 2")
    for label, value in (("num_train_tokens", num_train_tokens),
                         ("num_valid_tokens", num_valid_tokens),
                         ("num_test_tokens", num_test_tokens)):
        if value <= 0:
            raise ValueError(f"{label} must be positive")
    if successors_per_word < 1:
        raise ValueError("successors_per_word must be at least 1")
    if not 0.0 <= reset_probability <= 1.0:
        raise ValueError("reset_probability must be in [0, 1]")

    rng = np.random.default_rng(seed)
    unigram_cdf = np.cumsum(_zipf_weights(vocab_size, zipf_exponent))
    successors, successor_cdf = _build_transition_structure(
        rng, vocab_size, successors_per_word, zipf_exponent)
    train = _generate_stream(rng, num_train_tokens, vocab_size, successors,
                             successor_cdf, unigram_cdf, reset_probability)
    valid = _generate_stream(rng, num_valid_tokens, vocab_size, successors,
                             successor_cdf, unigram_cdf, reset_probability)
    test = _generate_stream(rng, num_test_tokens, vocab_size, successors,
                            successor_cdf, unigram_cdf, reset_probability)
    return SyntheticCorpus(train=train, valid=valid, test=test, vocab_size=vocab_size)
