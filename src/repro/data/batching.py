"""Mini-batch iterators for classification and truncated-BPTT language modelling."""

from __future__ import annotations

from typing import Iterator

import numpy as np


def _validate_sharding(shard_index: int, shard_count: int,
                       batch_size: int) -> None:
    """Common shard-argument validation for both iterators."""
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count}")
    if not 0 <= shard_index < shard_count:
        raise ValueError(
            f"shard_index must be in [0, {shard_count}), got {shard_index}")
    if batch_size < shard_count:
        raise ValueError(
            f"batch_size ({batch_size}) is smaller than shard_count "
            f"({shard_count}): shard {shard_index}'s strided slice of every "
            f"batch would be empty — every shard needs at least one sample "
            f"per batch")


class BatchIterator:
    """Shuffled mini-batches over a classification dataset.

    Parameters
    ----------
    images:
        Feature matrix of shape ``(n, features)``.
    labels:
        Integer labels of shape ``(n,)``.
    batch_size:
        Mini-batch size.  With sharding this stays the *global* batch size;
        each yielded shard-local batch holds roughly ``batch_size //
        shard_count`` samples.
    shuffle:
        Reshuffle the sample order at the start of every epoch.
    drop_last:
        When ``True`` (the default) the final partial batch is dropped —
        constant-shape batches keep the GPU-timing comparison per iteration
        meaningful and match Caffe's fixed-batch behaviour.  When ``False``
        the final partial batch is yielded, and a dataset smaller than one
        batch yields a single batch containing the whole dataset.
    rng:
        Generator used for shuffling.  Seeded generators make the shuffle
        order fully deterministic: epoch ``k`` of two iterators built with
        identically-seeded generators is identical, and successive epochs of
        one iterator differ (the generator state advances per epoch).
    seed:
        Convenience alternative to ``rng``: build a seeded default generator.
        Ignored when ``rng`` is given.
    shard_index, shard_count:
        Data-parallel sharding.  The *global* batch schedule (shuffle order,
        batch boundaries, epoch count) is computed exactly as in the
        unsharded case — same seed ⇒ same global batch order regardless of
        shard count — and each yielded batch is shard ``shard_index``'s
        strided rows ``batch[shard_index::shard_count]`` of the global batch.
        ``len()`` still reports *global* batches per epoch, so every shard
        agrees on the step count.
    """

    def __init__(self, images: np.ndarray, labels: np.ndarray, batch_size: int,
                 shuffle: bool = True, rng: np.random.Generator | None = None,
                 drop_last: bool = True, seed: int | None = None,
                 shard_index: int = 0, shard_count: int = 1):
        images = np.asarray(images)
        labels = np.asarray(labels)
        if images.shape[0] != labels.shape[0]:
            raise ValueError("images and labels must have the same length")
        if images.shape[0] == 0:
            raise ValueError("dataset is empty")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        _validate_sharding(shard_index, shard_count, batch_size)
        if drop_last and images.shape[0] < batch_size:
            if shard_count > 1:
                raise ValueError(
                    f"dataset ({images.shape[0]} samples) is smaller than one "
                    f"global batch ({batch_size}): shard {shard_index}/"
                    f"{shard_count} would never receive a batch — shrink "
                    f"batch_size (or pass drop_last=False) so each shard "
                    f"gets its slice of at least one full batch")
            raise ValueError(
                "dataset smaller than one batch; pass drop_last=False to "
                "iterate a single partial batch")
        self.images = images
        self.labels = labels
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.shard_index = shard_index
        self.shard_count = shard_count
        if rng is None:
            rng = np.random.default_rng(seed)
        self.rng = rng

    @property
    def num_samples(self) -> int:
        return self.images.shape[0]

    @property
    def batches_per_epoch(self) -> int:
        if self.drop_last:
            return self.num_samples // self.batch_size
        return -(-self.num_samples // self.batch_size)  # ceil division

    def __len__(self) -> int:
        return self.batches_per_epoch

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        order = np.arange(self.num_samples)
        if self.shuffle:
            self.rng.shuffle(order)
        stop = (self.batches_per_epoch * self.batch_size if self.drop_last
                else self.num_samples)
        for start in range(0, stop, self.batch_size):
            index = order[start:start + self.batch_size]
            if self.shard_count > 1:
                index = index[self.shard_index::self.shard_count]
            yield self.images[index], self.labels[index]


class BPTTBatcher:
    """Truncated back-propagation-through-time batching of a token stream.

    The stream is folded into ``batch_size`` parallel columns (the standard
    contiguous-batching layout), then cut into windows of ``seq_len`` steps.
    Each yielded item is ``(inputs, targets)`` with shapes
    ``(seq_len, batch_size)``; targets are the inputs shifted by one token.

    ``shard_index``/``shard_count`` shard the *columns* (the batch axis): the
    global fold is computed exactly as in the unsharded case, and each
    yielded window keeps columns ``[shard_index::shard_count]``.  ``len()``
    still reports global windows per epoch, so every shard agrees on the
    step count, and the union of all shards' columns is the global batch.
    """

    def __init__(self, stream: np.ndarray, batch_size: int, seq_len: int,
                 shard_index: int = 0, shard_count: int = 1):
        stream = np.asarray(stream)
        if stream.ndim != 1:
            raise ValueError("token stream must be 1-D")
        if batch_size <= 0 or seq_len <= 0:
            raise ValueError("batch_size and seq_len must be positive")
        _validate_sharding(shard_index, shard_count, batch_size)
        usable = (stream.size - 1) // batch_size * batch_size
        if usable < batch_size:
            if shard_count > 1:
                raise ValueError(
                    f"token stream ({stream.size} tokens) too short for "
                    f"global batch size {batch_size}: shard {shard_index}/"
                    f"{shard_count} would receive no columns — use a longer "
                    f"stream or a smaller batch size")
            raise ValueError("token stream too short for the requested batch size")
        columns = stream[:usable].reshape(batch_size, -1).T  # (steps, batch)
        targets = stream[1:usable + 1].reshape(batch_size, -1).T
        if shard_count > 1:
            columns = columns[:, shard_index::shard_count]
            targets = targets[:, shard_index::shard_count]
        self.inputs = columns
        self.targets = targets
        self.batch_size = batch_size
        self.seq_len = seq_len
        self.shard_index = shard_index
        self.shard_count = shard_count

    @property
    def shard_batch_size(self) -> int:
        """Columns this shard actually yields per window."""
        return self.inputs.shape[1]

    @property
    def steps_per_column(self) -> int:
        return self.inputs.shape[0]

    @property
    def batches_per_epoch(self) -> int:
        return max(self.steps_per_column // self.seq_len, 0)

    def __len__(self) -> int:
        return self.batches_per_epoch

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        for start in range(0, self.batches_per_epoch * self.seq_len, self.seq_len):
            stop = start + self.seq_len
            yield self.inputs[start:stop], self.targets[start:stop]
