"""Mini-batch iterators for classification and truncated-BPTT language modelling."""

from __future__ import annotations

from typing import Iterator

import numpy as np


class BatchIterator:
    """Shuffled mini-batches over a classification dataset.

    Parameters
    ----------
    images:
        Feature matrix of shape ``(n, features)``.
    labels:
        Integer labels of shape ``(n,)``.
    batch_size:
        Mini-batch size.
    shuffle:
        Reshuffle the sample order at the start of every epoch.
    drop_last:
        When ``True`` (the default) the final partial batch is dropped —
        constant-shape batches keep the GPU-timing comparison per iteration
        meaningful and match Caffe's fixed-batch behaviour.  When ``False``
        the final partial batch is yielded, and a dataset smaller than one
        batch yields a single batch containing the whole dataset.
    rng:
        Generator used for shuffling.  Seeded generators make the shuffle
        order fully deterministic: epoch ``k`` of two iterators built with
        identically-seeded generators is identical, and successive epochs of
        one iterator differ (the generator state advances per epoch).
    seed:
        Convenience alternative to ``rng``: build a seeded default generator.
        Ignored when ``rng`` is given.
    """

    def __init__(self, images: np.ndarray, labels: np.ndarray, batch_size: int,
                 shuffle: bool = True, rng: np.random.Generator | None = None,
                 drop_last: bool = True, seed: int | None = None):
        images = np.asarray(images)
        labels = np.asarray(labels)
        if images.shape[0] != labels.shape[0]:
            raise ValueError("images and labels must have the same length")
        if images.shape[0] == 0:
            raise ValueError("dataset is empty")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if drop_last and images.shape[0] < batch_size:
            raise ValueError(
                "dataset smaller than one batch; pass drop_last=False to "
                "iterate a single partial batch")
        self.images = images
        self.labels = labels
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        if rng is None:
            rng = np.random.default_rng(seed)
        self.rng = rng

    @property
    def num_samples(self) -> int:
        return self.images.shape[0]

    @property
    def batches_per_epoch(self) -> int:
        if self.drop_last:
            return self.num_samples // self.batch_size
        return -(-self.num_samples // self.batch_size)  # ceil division

    def __len__(self) -> int:
        return self.batches_per_epoch

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        order = np.arange(self.num_samples)
        if self.shuffle:
            self.rng.shuffle(order)
        stop = (self.batches_per_epoch * self.batch_size if self.drop_last
                else self.num_samples)
        for start in range(0, stop, self.batch_size):
            index = order[start:start + self.batch_size]
            yield self.images[index], self.labels[index]


class BPTTBatcher:
    """Truncated back-propagation-through-time batching of a token stream.

    The stream is folded into ``batch_size`` parallel columns (the standard
    contiguous-batching layout), then cut into windows of ``seq_len`` steps.
    Each yielded item is ``(inputs, targets)`` with shapes
    ``(seq_len, batch_size)``; targets are the inputs shifted by one token.
    """

    def __init__(self, stream: np.ndarray, batch_size: int, seq_len: int):
        stream = np.asarray(stream)
        if stream.ndim != 1:
            raise ValueError("token stream must be 1-D")
        if batch_size <= 0 or seq_len <= 0:
            raise ValueError("batch_size and seq_len must be positive")
        usable = (stream.size - 1) // batch_size * batch_size
        if usable < batch_size:
            raise ValueError("token stream too short for the requested batch size")
        columns = stream[:usable].reshape(batch_size, -1).T  # (steps, batch)
        targets = stream[1:usable + 1].reshape(batch_size, -1).T
        self.inputs = columns
        self.targets = targets
        self.batch_size = batch_size
        self.seq_len = seq_len

    @property
    def steps_per_column(self) -> int:
        return self.inputs.shape[0]

    @property
    def batches_per_epoch(self) -> int:
        return max(self.steps_per_column // self.seq_len, 0)

    def __len__(self) -> int:
        return self.batches_per_epoch

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        for start in range(0, self.batches_per_epoch * self.seq_len, self.seq_len):
            stop = start + self.seq_len
            yield self.inputs[start:stop], self.targets[start:stop]
