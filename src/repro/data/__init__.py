"""Synthetic datasets standing in for MNIST and the paper's text corpora.

The execution environment has no network access, so the reproduction cannot
download MNIST, the 8800-word dictionary corpus or the Penn Treebank.  The
generators here produce deterministic synthetic equivalents that exercise the
same code paths and keep the *relative* comparisons between dropout variants
meaningful (see DESIGN.md, "Substitutions"):

* :func:`~repro.data.synthetic_mnist.make_synthetic_mnist` — a 28x28, 10-class
  digit-like classification task built from class-conditional stroke
  templates plus per-sample noise and distortion, difficult enough that
  regularisation matters.
* :func:`~repro.data.synthetic_text.make_synthetic_corpus` — a Zipf-distributed
  word stream with Markov (bigram) structure so a language model has something
  to learn; configurable vocabulary size (8800 for the dictionary task,
  10 000 for the PTB-like task).
* Batch iterators for classification (:class:`~repro.data.batching.BatchIterator`)
  and truncated-BPTT language modelling
  (:class:`~repro.data.batching.BPTTBatcher`).
"""

from repro.data.synthetic_mnist import SyntheticMNIST, make_synthetic_mnist
from repro.data.synthetic_text import SyntheticCorpus, make_synthetic_corpus
from repro.data.batching import BatchIterator, BPTTBatcher

__all__ = [
    "SyntheticMNIST",
    "make_synthetic_mnist",
    "SyntheticCorpus",
    "make_synthetic_corpus",
    "BatchIterator",
    "BPTTBatcher",
]
