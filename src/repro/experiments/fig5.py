"""Fig. 5 — accuracy-vs-time convergence of RDP vs. conventional dropout.

The paper fixes the dropout rate at 0.5, trains the dictionary-corpus LSTM
with conventional dropout and with the Row-based pattern, and plots accuracy
against wall-clock time.  The headline observations: the RDP curve reaches a
given accuracy earlier (because each iteration is cheaper) and converges to a
similar accuracy.

This driver trains both variants at reduced scale for the same number of
updates and places every evaluation point on a *modelled-GPU-time* x-axis
(iterations x modelled per-iteration time for that variant), which is exactly
how the speedup manifests as a left-shifted curve.
"""

from __future__ import annotations

from repro.execution import ExecutionConfig
from repro.experiments.common import ReducedScale, driver_runtime, train_reduced_lstm
from repro.experiments.records import ExperimentTable

RATE = 0.5


def run_fig5(scale: ReducedScale | None = None, epochs: int | None = None,
             execution: ExecutionConfig | None = None,
             ) -> ExperimentTable:
    """Reproduce the Fig. 5 convergence comparison (baseline vs. ROW at rate 0.5).

    Each row of the returned table is one evaluation point of one curve, with
    the modelled cumulative GPU time and the next-word accuracy at that point.
    ``execution`` selects the engine mode/dtype of both training runs.
    """
    scale = scale or ReducedScale()
    runtime = driver_runtime(execution)
    table = ExperimentTable(
        name="Fig. 5 (convergence: conventional dropout vs. RDP, rate 0.5)",
        description=("Accuracy vs. modelled GPU time; the ROW curve should reach a given "
                     "accuracy no later than the baseline curve and converge similarly."),
        columns=["curve", "simulated_time_ms", "accuracy"],
    )
    for strategy, label in (("original", "baseline"), ("row", "row_dropout_pattern")):
        result = train_reduced_lstm(strategy, (RATE, RATE), scale, epochs=epochs,
                                    eval_metric="accuracy", return_history=True,
                                    runtime=runtime)
        history = result.history
        for index in range(len(history)):
            table.add_row(
                f"{label}@iter{history.iterations[index]}",
                {
                    "curve": label,
                    "simulated_time_ms": history.simulated_time_ms[index],
                    "accuracy": history.eval_metric[index],
                },
                engine=result.engine_stats if index == len(history) - 1 else None,
            )
    table.engine = runtime.stats()
    return table


def curves(table: ExperimentTable) -> dict[str, list[tuple[float, float]]]:
    """Group a :func:`run_fig5` table into per-curve (time, accuracy) series."""
    series: dict[str, list[tuple[float, float]]] = {}
    for row in table.rows:
        series.setdefault(row.values["curve"], []).append(
            (row.values["simulated_time_ms"], row.values["accuracy"]))
    return series
