"""Algorithm 1 behaviour — the SGD-based search for the pattern distribution.

Not a numbered figure in the paper, but Section III-C/III-D make three
verifiable claims about the search and the resulting distribution:

1. the search converges (the loss stops changing);
2. the expected global dropout rate of the result matches the target rate
   (Eq. 3);
3. the per-neuron drop probability realised by sampling patterns from the
   result (with uniform bias) matches the target Bernoulli rate (Eq. 2), i.e.
   approximate random dropout is statistically equivalent to conventional
   dropout.

This driver quantifies all three for a sweep of target rates.
"""

from __future__ import annotations

import numpy as np

from repro.dropout.sampler import PatternSampler
from repro.dropout.search import PatternDistributionSearch
from repro.dropout.statistics import empirical_unit_drop_rate
from repro.execution import ExecutionConfig
from repro.experiments.common import driver_runtime
from repro.experiments.records import ExperimentTable

RATES: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9)


def run_algorithm1(max_period: int = 16, num_units: int = 256,
                   monte_carlo_iterations: int = 1500,
                   rates: tuple[float, ...] = RATES,
                   seed: int = 0,
                   execution: ExecutionConfig | None = None) -> ExperimentTable:
    """Verify the statistical-equivalence claims of Algorithm 1.

    Parameters
    ----------
    max_period:
        ``dp_max`` used by the search.
    num_units:
        Width of the layer used for the Monte-Carlo per-neuron estimate.
    monte_carlo_iterations:
        Number of sampled patterns in the empirical estimate.
    execution:
        Stamps the engine record of the table (no training happens here; the
        Monte-Carlo sampler seed stays the explicit ``seed`` argument).
    """
    runtime = driver_runtime(execution)
    table = ExperimentTable(
        name="Algorithm 1 (SGD-based pattern-distribution search)",
        description=("Convergence, achieved global dropout rate and empirical per-neuron "
                     "drop rate for a sweep of target rates."),
        columns=["converged", "achieved_rate", "rate_error", "entropy",
                 "effective_sub_models", "empirical_unit_rate", "unit_rate_error"],
    )
    for rate in rates:
        search = PatternDistributionSearch(max_period=max_period)
        result = search.search(rate)
        sampler = PatternSampler(rate, max_period,
                                 rng=np.random.default_rng(seed), search=search)
        empirical = empirical_unit_drop_rate(sampler, num_units,
                                             iterations=monte_carlo_iterations)
        empirical_mean = float(empirical.mean())
        table.add_row(
            f"p={rate}",
            {
                "converged": result.converged,
                "achieved_rate": result.achieved_rate,
                "rate_error": result.rate_error(),
                "entropy": result.entropy,
                "effective_sub_models": result.effective_sub_models(),
                "empirical_unit_rate": empirical_mean,
                "unit_rate_error": abs(empirical_mean - rate),
            },
            paper={"achieved_rate": rate, "empirical_unit_rate": rate},
        )
    table.engine = runtime.stats()
    return table
