"""Table II — LSTM next-word accuracy and speedup on the dictionary corpus.

The paper trains a 2-layer, 1500-unit LSTM language model on an 8800-word
dictionary corpus (batch 20, sequence length 35) at dropout rates (0.3, 0.3),
(0.5, 0.5) and (0.7, 0.7), and reports next-word prediction accuracy plus the
speedup of both pattern families over conventional dropout.

Paper shape: accuracy degrades by at most ≈1.5 points; ROW speedups are
1.18x / 1.47x / 1.53x and TILE 1.18x / 1.43x / 1.49x for rates 0.3 / 0.5 / 0.7.
"""

from __future__ import annotations

from repro.execution import ExecutionConfig
from repro.experiments.common import (
    ReducedScale,
    driver_runtime,
    lstm_speedup,
    timing_mode_for,
    train_reduced_lstm,
)
from repro.experiments.records import ExperimentTable

#: The paper's LSTM for Table II.
PAPER_VOCAB = 8800
PAPER_HIDDEN = 1500
PAPER_LAYERS = 2
PAPER_BATCH = 20
PAPER_SEQ_LEN = 35

RATES: tuple[float, ...] = (0.3, 0.5, 0.7)

PAPER_ACCURACY = {
    ("original", 0.3): 0.479, ("ROW", 0.3): 0.469, ("TILE", 0.3): 0.472,
    ("original", 0.5): 0.473, ("ROW", 0.5): 0.460, ("TILE", 0.5): 0.465,
    ("original", 0.7): 0.459, ("ROW", 0.7): 0.445, ("TILE", 0.7): 0.444,
}

PAPER_SPEEDUP = {
    ("ROW", 0.3): 1.18, ("TILE", 0.3): 1.18,
    ("ROW", 0.5): 1.47, ("TILE", 0.5): 1.43,
    ("ROW", 0.7): 1.53, ("TILE", 0.7): 1.49,
}


def run_table2(scale: ReducedScale | None = None, train_accuracy: bool = True,
               rates: tuple[float, ...] = RATES,
               patterns: tuple[str, ...] = ("ROW", "TILE"),
               execution: ExecutionConfig | None = None) -> ExperimentTable:
    """Reproduce Table II.

    Speedups use the paper's LSTM dimensions through the timing model; the
    accuracy columns train a reduced LSTM on the synthetic dictionary corpus
    and report next-word top-1 accuracy for the baseline and each pattern.
    ``execution`` selects the engine mode/dtype of the training runs.
    """
    scale = scale or ReducedScale()
    runtime = driver_runtime(execution)
    columns = ["speedup"]
    if train_accuracy:
        columns += ["baseline_accuracy", "pattern_accuracy", "accuracy_change"]
    table = ExperimentTable(
        name="Table II (LSTM, 8800-word dictionary)",
        description=("Speedup at the paper's LSTM dimensions (2x1500, batch 20, seq 35); "
                     "next-word accuracy from reduced-scale training on the synthetic corpus."),
        columns=columns,
    )
    baseline_accuracy_cache: dict[float, float] = {}
    for rate in rates:
        rate_pair = (rate,) * PAPER_LAYERS
        for pattern in patterns:
            mode = timing_mode_for(pattern)
            speedup = lstm_speedup(PAPER_VOCAB, PAPER_HIDDEN, PAPER_LAYERS, rate_pair,
                                   mode, batch_size=PAPER_BATCH, seq_len=PAPER_SEQ_LEN)
            values: dict = {"speedup": speedup}
            paper = {"speedup": PAPER_SPEEDUP.get((pattern, rate))}
            engine: dict = {}
            if train_accuracy:
                if rate not in baseline_accuracy_cache:
                    baseline_accuracy_cache[rate] = train_reduced_lstm(
                        "original", rate_pair, scale, eval_metric="accuracy",
                        runtime=runtime)
                baseline_accuracy = baseline_accuracy_cache[rate]
                pattern_result = train_reduced_lstm(
                    pattern.lower(), rate_pair, scale, eval_metric="accuracy",
                    runtime=runtime, return_history=True)
                pattern_accuracy = pattern_result.final_metric
                engine = pattern_result.engine_stats
                values.update({
                    "baseline_accuracy": baseline_accuracy,
                    "pattern_accuracy": pattern_accuracy,
                    "accuracy_change": pattern_accuracy - baseline_accuracy,
                })
                paper.update({
                    "baseline_accuracy": PAPER_ACCURACY.get(("original", rate)),
                    "pattern_accuracy": PAPER_ACCURACY.get((pattern, rate)),
                })
            table.add_row(f"rate={rate} {pattern}", values, paper, engine=engine)
    table.engine = runtime.stats()
    return table
