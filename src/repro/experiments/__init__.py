"""Experiment drivers — one per table / figure in the paper's evaluation.

Every driver follows the same contract:

* it accepts a *scale* knob so the expensive accuracy-training part can run at
  a reduced synthetic scale (the default, suitable for CI and the benchmark
  harness) or closer to the paper's scale;
* the *speedup* columns are always computed with the analytical GPU timing
  model at the **paper's** network dimensions and batch sizes, so they are
  directly comparable to the numbers printed in the paper regardless of the
  accuracy-training scale;
* it returns an :class:`~repro.experiments.records.ExperimentTable` whose rows
  mirror the paper's artefact, and whose ``format()`` output is what the
  benchmark harness prints;
* it accepts an ``execution`` knob (an
  :class:`repro.execution.ExecutionConfig`) selecting the engine mode
  (masked/compact/pooled), dtype (float64/float32) and pool-wide pattern seed
  of its training runs, and stamps the runtime's cache/pool/workspace counters
  into the table's ``engine`` record.

| Driver | Paper artefact |
|---------------------------------------|----------------------------------|
| :func:`repro.experiments.fig4.run_fig4`             | Fig. 4 (rate sweep, RDP & TDP)   |
| :func:`repro.experiments.table1.run_table1`         | Table I (network-size sweep)     |
| :func:`repro.experiments.table2.run_table2`         | Table II (LSTM dictionary)       |
| :func:`repro.experiments.fig5.run_fig5`             | Fig. 5 (convergence curves)      |
| :func:`repro.experiments.fig6.run_fig6a`            | Fig. 6(a) (PTB rate sweep)       |
| :func:`repro.experiments.fig6.run_fig6b`            | Fig. 6(b) (batch-size sweep)     |
| :func:`repro.experiments.motivation.run_fig1b`      | Fig. 1(b) (divergence strawman)  |
| :func:`repro.experiments.algorithm1.run_algorithm1` | Algorithm 1 behaviour            |
"""

from repro.experiments.records import ExperimentRow, ExperimentTable
from repro.experiments.fig4 import run_fig4
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6a, run_fig6b
from repro.experiments.motivation import run_fig1b
from repro.experiments.algorithm1 import run_algorithm1

__all__ = [
    "ExperimentRow",
    "ExperimentTable",
    "run_fig4",
    "run_table1",
    "run_table2",
    "run_fig5",
    "run_fig6a",
    "run_fig6b",
    "run_fig1b",
    "run_algorithm1",
]
