"""Structured result records returned by the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ExperimentRow:
    """One row of a reproduced table/figure.

    ``values`` maps column name to value; ``paper`` optionally maps the same
    column names to the values the paper reports, so the formatted output can
    show paper-vs-measured side by side (the EXPERIMENTS.md requirement).
    """

    label: str
    values: dict[str, Any] = field(default_factory=dict)
    paper: dict[str, Any] = field(default_factory=dict)

    def get(self, column: str, default=None):
        return self.values.get(column, default)


@dataclass
class ExperimentTable:
    """A reproduced table/figure: a list of rows plus formatting helpers."""

    name: str
    description: str
    columns: list[str]
    rows: list[ExperimentRow] = field(default_factory=list)

    def add_row(self, label: str, values: dict[str, Any],
                paper: dict[str, Any] | None = None) -> ExperimentRow:
        row = ExperimentRow(label=label, values=dict(values), paper=dict(paper or {}))
        self.rows.append(row)
        return row

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        return [row.values.get(name) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    # ------------------------------------------------------------------
    # formatting
    # ------------------------------------------------------------------
    def format(self, float_digits: int = 3) -> str:
        """Render the table as aligned plain text (paper values in parentheses)."""
        header = ["case"] + list(self.columns)
        body: list[list[str]] = []
        for row in self.rows:
            cells = [row.label]
            for column in self.columns:
                value = row.values.get(column)
                cell = _format_value(value, float_digits)
                if column in row.paper:
                    cell += f" (paper {_format_value(row.paper[column], float_digits)})"
                cells.append(cell)
            body.append(cells)
        widths = [max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
                  for i in range(len(header))]
        lines = [self.name, self.description,
                 "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
                 "  ".join("-" * widths[i] for i in range(len(header)))]
        for cells in body:
            lines.append("  ".join(cells[i].ljust(widths[i]) for i in range(len(cells))))
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation (used by tests and by EXPERIMENTS.md tooling)."""
        return {
            "name": self.name,
            "description": self.description,
            "columns": list(self.columns),
            "rows": [
                {"label": row.label, "values": row.values, "paper": row.paper}
                for row in self.rows
            ],
        }


def _format_value(value, float_digits: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)
