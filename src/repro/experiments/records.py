"""Structured result records returned by the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ExperimentRow:
    """One row of a reproduced table/figure.

    ``values`` maps column name to value; ``paper`` optionally maps the same
    column names to the values the paper reports, so the formatted output can
    show paper-vs-measured side by side (the EXPERIMENTS.md requirement).
    ``engine`` optionally carries the execution-engine counters of the
    training run that produced this row — pool/workspace/step counts are
    restricted to that run's model; the tile-plan/pattern cache entries are
    process-global deltas for the driver's runtime, and ``backend`` /
    ``backend_calls`` identify the execution backend the run selected and its
    per-operation call counts (see
    :meth:`repro.execution.EngineRuntime.stats` and
    ``docs/architecture.md``).
    """

    label: str
    values: dict[str, Any] = field(default_factory=dict)
    paper: dict[str, Any] = field(default_factory=dict)
    engine: dict[str, Any] = field(default_factory=dict)

    def get(self, column: str, default=None):
        return self.values.get(column, default)


@dataclass
class ExperimentTable:
    """A reproduced table/figure: a list of rows plus formatting helpers.

    ``engine`` holds the table-level execution-engine record — which
    :class:`~repro.execution.ExecutionConfig` the driver ran under plus the
    aggregated cache/pool/workspace counters — and is printed as a trailing
    summary by :meth:`format`.
    """

    name: str
    description: str
    columns: list[str]
    rows: list[ExperimentRow] = field(default_factory=list)
    engine: dict[str, Any] = field(default_factory=dict)

    def add_row(self, label: str, values: dict[str, Any],
                paper: dict[str, Any] | None = None,
                engine: dict[str, Any] | None = None) -> ExperimentRow:
        row = ExperimentRow(label=label, values=dict(values),
                            paper=dict(paper or {}), engine=dict(engine or {}))
        self.rows.append(row)
        return row

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        return [row.values.get(name) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    # ------------------------------------------------------------------
    # formatting
    # ------------------------------------------------------------------
    def format(self, float_digits: int = 3) -> str:
        """Render the table as aligned plain text (paper values in parentheses)."""
        header = ["case"] + list(self.columns)
        body: list[list[str]] = []
        for row in self.rows:
            cells = [row.label]
            for column in self.columns:
                value = row.values.get(column)
                cell = _format_value(value, float_digits)
                if column in row.paper:
                    cell += f" (paper {_format_value(row.paper[column], float_digits)})"
                cells.append(cell)
            body.append(cells)
        widths = [max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
                  for i in range(len(header))]
        lines = [self.name, self.description,
                 "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
                 "  ".join("-" * widths[i] for i in range(len(header)))]
        for cells in body:
            lines.append("  ".join(cells[i].ljust(widths[i]) for i in range(len(cells))))
        if self.engine:
            lines.append(format_engine_stats(self.engine))
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation (used by tests and by EXPERIMENTS.md tooling)."""
        record: dict[str, Any] = {
            "name": self.name,
            "description": self.description,
            "columns": list(self.columns),
            "rows": [
                {"label": row.label, "values": row.values, "paper": row.paper,
                 **({"engine": row.engine} if row.engine else {})}
                for row in self.rows
            ],
        }
        if self.engine:
            record["engine"] = self.engine
        return record


def format_engine_stats(engine: dict[str, Any]) -> str:
    """One-line rendering of an engine-stats record for formatted tables."""
    parts = []
    mode = engine.get("mode")
    if mode is not None:
        seed = engine.get("seed")
        shards = engine.get("shards", 1)
        parts.append(f"mode={mode} dtype={engine.get('dtype')} "
                     f"backend={engine.get('backend', 'numpy')} "
                     f"recurrent={engine.get('recurrent', 'dense')} "
                     f"seed={'-' if seed is None else seed}"
                     + (f" shards={shards}" if shards != 1 else ""))
    head = engine.get("loss_head")
    if head and (head.get("kind", "dense") != "dense" or head.get("draws")):
        parts.append(f"loss-head {head.get('kind')} draws={head.get('draws', 0)} "
                     f"kept-classes={head.get('kept_classes', 0)}")
    backend_calls = engine.get("backend_calls")
    if backend_calls:
        total = sum(backend_calls.values())
        parts.append(f"backend calls={total}")
    plan = engine.get("tile_plan_cache")
    if plan:
        parts.append(f"tile-plan cache hits={plan.get('hits', 0)} "
                     f"misses={plan.get('misses', 0)}")
    pools = engine.get("pools")
    if pools:
        parts.append(f"pools sites={pools.get('sites', 0)} "
                     f"refills={pools.get('refills', 0)} "
                     f"consumed={pools.get('consumed', 0)}")
    workspace = engine.get("workspace")
    if workspace:
        parts.append(f"workspace buffers={workspace.get('num_buffers', 0)} "
                     f"hits={workspace.get('hits', 0)} "
                     f"misses={workspace.get('misses', 0)}")
    if not parts:
        parts.append(str(engine))
    return "engine: " + " | ".join(parts)


def _format_value(value, float_digits: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)
