"""Fig. 6 — PTB-style 3-layer LSTM: rate sweep (a) and batch-size sweep (b).

Fig. 6(a): with a 3-layer LSTM on the Penn Treebank, the paper sweeps the
dropout rate from 0.3 to 0.7 (RDP) and reports test perplexity (which rises
only marginally, +0.04 at rate 0.7 relative to conventional dropout) and the
speedup, which grows from ≈1.24x to ≈1.85x.

Fig. 6(b): with the rate fixed, increasing the batch size from 20 to 40 raises
the speedup (the accelerable GEMM work grows relative to fixed overheads) but
also raises perplexity slightly, because one pattern is shared by the whole
batch so fewer distinct sub-models are sampled per epoch.
"""

from __future__ import annotations

import dataclasses

from repro.execution import ExecutionConfig
from repro.experiments.common import (
    ReducedScale,
    driver_runtime,
    lstm_speedup,
    train_reduced_lstm,
)
from repro.experiments.records import ExperimentTable

PAPER_VOCAB = 10000
PAPER_HIDDEN = 1500
PAPER_LAYERS = 3
PAPER_SEQ_LEN = 35

FIG6A_RATES: tuple[float, ...] = (0.3, 0.4, 0.5, 0.6, 0.7)
PAPER_FIG6A_SPEEDUP = {0.3: 1.24, 0.4: 1.40, 0.5: 1.55, 0.6: 1.70, 0.7: 1.85}

FIG6B_BATCH_SIZES: tuple[int, ...] = (20, 25, 30, 35, 40)
FIG6B_RATE = 0.7


def run_fig6a(scale: ReducedScale | None = None, train_perplexity: bool = True,
              rates: tuple[float, ...] = FIG6A_RATES,
              execution: ExecutionConfig | None = None) -> ExperimentTable:
    """Reproduce Fig. 6(a): perplexity and speedup vs. dropout rate (RDP, 3-layer LSTM)."""
    scale = scale or ReducedScale()
    runtime = driver_runtime(execution)
    columns = ["speedup"]
    if train_perplexity:
        columns += ["baseline_perplexity", "row_perplexity", "perplexity_increase"]
    table = ExperimentTable(
        name="Fig. 6(a) (PTB-style 3-layer LSTM, RDP rate sweep)",
        description=("Speedup at the paper's dimensions (3x1500, vocab 10k, batch 20); "
                     "perplexity from reduced-scale training on the synthetic corpus."),
        columns=columns,
    )
    for rate in rates:
        rate_tuple = (rate,) * PAPER_LAYERS
        speedup = lstm_speedup(PAPER_VOCAB, PAPER_HIDDEN, PAPER_LAYERS, rate_tuple,
                               "row", batch_size=20, seq_len=PAPER_SEQ_LEN)
        values: dict = {"speedup": speedup}
        paper = {"speedup": PAPER_FIG6A_SPEEDUP.get(rate)}
        engine: dict = {}
        if train_perplexity:
            baseline_perplexity = train_reduced_lstm(
                "original", rate_tuple, scale, num_layers=PAPER_LAYERS,
                eval_metric="perplexity", runtime=runtime)
            row_result = train_reduced_lstm(
                "row", rate_tuple, scale, num_layers=PAPER_LAYERS,
                eval_metric="perplexity", runtime=runtime, return_history=True)
            row_perplexity = row_result.final_metric
            engine = row_result.engine_stats
            values.update({
                "baseline_perplexity": baseline_perplexity,
                "row_perplexity": row_perplexity,
                "perplexity_increase": row_perplexity - baseline_perplexity,
            })
        table.add_row(f"rate={rate}", values, paper, engine=engine)
    table.engine = runtime.stats()
    return table


def run_fig6b(scale: ReducedScale | None = None, train_perplexity: bool = True,
              batch_sizes: tuple[int, ...] = FIG6B_BATCH_SIZES,
              rate: float = FIG6B_RATE,
              execution: ExecutionConfig | None = None) -> ExperimentTable:
    """Reproduce Fig. 6(b): speedup and perplexity vs. batch size (RDP, fixed rate)."""
    scale = scale or ReducedScale()
    runtime = driver_runtime(execution)
    columns = ["speedup"]
    if train_perplexity:
        columns += ["row_perplexity"]
    table = ExperimentTable(
        name=f"Fig. 6(b) (batch-size sweep at rate {rate})",
        description=("Speedup at the paper's LSTM dimensions as the batch grows 20->40; "
                     "perplexity from reduced-scale training with the batch scaled "
                     "proportionally."),
        columns=columns,
    )
    rate_tuple = (rate,) * PAPER_LAYERS
    for batch_size in batch_sizes:
        speedup = lstm_speedup(PAPER_VOCAB, PAPER_HIDDEN, PAPER_LAYERS, rate_tuple,
                               "row", batch_size=batch_size, seq_len=PAPER_SEQ_LEN)
        values: dict = {"speedup": speedup}
        engine: dict = {}
        if train_perplexity:
            # Scale the reduced batch proportionally to the paper batch (20 -> base).
            reduced_batch = max(2, round(scale.lstm_batch_size * batch_size / 20))
            scaled = dataclasses.replace(scale, lstm_batch_size=reduced_batch)
            row_result = train_reduced_lstm(
                "row", rate_tuple, scaled, num_layers=PAPER_LAYERS,
                eval_metric="perplexity", runtime=runtime, return_history=True)
            values["row_perplexity"] = row_result.final_metric
            engine = row_result.engine_stats
        table.add_row(f"batch={batch_size}", values, engine=engine)
    table.engine = runtime.stats()
    return table
