"""Fig. 1(b) — why naive branch-skipping of dropped neurons does not help.

The paper motivates the regular dropout patterns by arguing that the obvious
alternative — an ``if (mask) {...} else {output = 0}`` inside the kernel —
cannot speed anything up on a SIMT machine because of warp divergence.  This
driver quantifies that argument with the divergence model and with the GEMM
cost model's ``naive_skip`` mode, and contrasts it with the regular pattern's
compaction at the same dropout rate.
"""

from __future__ import annotations

from repro.execution import ExecutionConfig
from repro.experiments.common import driver_runtime
from repro.experiments.records import ExperimentTable
from repro.gpu.device import GTX_1080TI, DeviceSpec
from repro.gpu.divergence import DivergenceModel
from repro.gpu.training_time import DropoutTimingConfig, MLPTimingModel

RATES: tuple[float, ...] = (0.3, 0.5, 0.7, 0.9)


def run_fig1b(device: DeviceSpec = GTX_1080TI,
              hidden_sizes: tuple[int, int] = (2048, 2048),
              batch_size: int = 128,
              rates: tuple[float, ...] = RATES,
              execution: ExecutionConfig | None = None) -> ExperimentTable:
    """Compare naive branch-skipping against regular-pattern compaction.

    For each dropout rate the table reports the expected warp-level speedup of
    the naive conditional kernel (≈1.0 or below), the end-to-end iteration
    speedup the naive approach would give on the paper's MLP (≈1.0), the
    end-to-end speedup of the Row-based pattern, and the ideal speedup if all
    dropped work could be skipped.  This driver never trains, so ``execution``
    only stamps the engine record of the table.
    """
    runtime = driver_runtime(execution)
    divergence = DivergenceModel(device)
    timing = MLPTimingModel([784, *hidden_sizes, 10], batch_size, device=device)
    table = ExperimentTable(
        name="Fig. 1(b) (naive branch-skipping vs. regular patterns)",
        description=("Warp-divergence analysis: the naive if-else skip saves nothing "
                     "because a warp only idles when all 32 of its threads are dropped."),
        columns=["naive_warp_speedup", "naive_iteration_speedup",
                 "row_iteration_speedup", "ideal_speedup"],
    )
    for rate in rates:
        estimate = divergence.random_mask(rate)
        pair = (rate, rate)
        baseline = timing.iteration(DropoutTimingConfig(mode="baseline", rates=pair))
        naive = timing.iteration(DropoutTimingConfig(mode="naive_skip", rates=pair))
        row = timing.iteration(DropoutTimingConfig(mode="row", rates=pair))
        table.add_row(
            f"rate={rate}",
            {
                "naive_warp_speedup": estimate.expected_speedup,
                "naive_iteration_speedup": naive.speedup_over(baseline),
                "row_iteration_speedup": row.speedup_over(baseline),
                "ideal_speedup": estimate.ideal_speedup,
            },
            paper={"naive_iteration_speedup": 1.0},
        )
    table.engine = runtime.stats()
    return table
