"""Table I — accuracy and speedup across network sizes at dropout rate 0.7.

The paper fixes the dropout rate at (0.7, 0.7) and varies the two hidden-layer
widths over 1024x64, 1024x1024, 2048x2048 and 4096x4096, reporting accuracy
(and its loss vs. conventional dropout) plus the speedup for both pattern
families.  The headline shape: the speedup grows with the network size,
reaching ≈2x for the 4096x4096 network, while the accuracy change stays within
±0.5%.
"""

from __future__ import annotations

from repro.execution import ExecutionConfig
from repro.experiments.common import (
    ReducedScale,
    driver_runtime,
    mlp_speedup,
    timing_mode_for,
    train_reduced_mlp,
)
from repro.experiments.records import ExperimentTable

#: The hidden-layer size pairs of Table I.
NETWORK_SIZES: tuple[tuple[int, int], ...] = (
    (1024, 64), (1024, 1024), (2048, 2048), (4096, 4096),
)

#: Speedups reported in Table I of the paper.
PAPER_SPEEDUPS = {
    ("ROW", (1024, 64)): 1.27, ("TILE", (1024, 64)): 1.19,
    ("ROW", (1024, 1024)): 1.45, ("TILE", (1024, 1024)): 1.41,
    ("ROW", (2048, 2048)): 1.77, ("TILE", (2048, 2048)): 1.60,
    ("ROW", (4096, 4096)): 2.16, ("TILE", (4096, 4096)): 1.95,
}

#: Accuracy losses reported in Table I (negative = loss vs. conventional).
PAPER_ACCURACY_LOSS = {
    ("ROW", (1024, 64)): -0.0042, ("TILE", (1024, 64)): -0.0038,
    ("ROW", (1024, 1024)): -0.0035, ("TILE", (1024, 1024)): -0.0021,
    ("ROW", (2048, 2048)): 0.0037, ("TILE", (2048, 2048)): -0.0031,
    ("ROW", (4096, 4096)): -0.0047, ("TILE", (4096, 4096)): -0.0031,
}

RATES = (0.7, 0.7)


def run_table1(scale: ReducedScale | None = None, train_accuracy: bool = True,
               network_sizes: tuple[tuple[int, int], ...] = NETWORK_SIZES,
               patterns: tuple[str, ...] = ("ROW", "TILE"),
               execution: ExecutionConfig | None = None) -> ExperimentTable:
    """Reproduce Table I.

    The speedup column uses the paper's exact layer widths; the accuracy
    columns train a reduced-width proxy network (width scaled down but the
    same 2-hidden-layer topology and rate), because training a 4096x4096 MLP
    on a CPU is not feasible.  ``execution`` selects the engine mode/dtype of
    the accuracy training runs (pooled float64 by default).
    """
    scale = scale or ReducedScale()
    runtime = driver_runtime(execution)
    columns = ["speedup"]
    if train_accuracy:
        columns += ["baseline_accuracy", "pattern_accuracy", "accuracy_change"]
    table = ExperimentTable(
        name="Table I (network-size sweep, dropout rate 0.7)",
        description=("Speedup at the paper's layer widths (timing model); accuracy from "
                     "reduced-scale proxy training on synthetic MNIST."),
        columns=columns,
    )
    accuracy_cache: dict[str, tuple[float, dict]] = {}

    def trained(strategy: str) -> tuple[float, dict]:
        if strategy not in accuracy_cache:
            result = train_reduced_mlp(strategy, RATES, scale, runtime=runtime,
                                       return_result=True)
            accuracy_cache[strategy] = (result.final_metric, result.engine_stats)
        return accuracy_cache[strategy]

    for hidden_sizes in network_sizes:
        for pattern in patterns:
            mode = timing_mode_for(pattern)
            speedup = mlp_speedup(hidden_sizes, RATES, mode)
            values: dict = {"speedup": speedup}
            paper = {"speedup": PAPER_SPEEDUPS.get((pattern, tuple(hidden_sizes)))}
            engine: dict = {}
            if train_accuracy:
                baseline_accuracy, _ = trained("original")
                pattern_accuracy, engine = trained(pattern.lower())
                values.update({
                    "baseline_accuracy": baseline_accuracy,
                    "pattern_accuracy": pattern_accuracy,
                    "accuracy_change": pattern_accuracy - baseline_accuracy,
                })
                paper["accuracy_change"] = PAPER_ACCURACY_LOSS.get(
                    (pattern, tuple(hidden_sizes)))
            table.add_row(f"{hidden_sizes[0]}x{hidden_sizes[1]} {pattern}", values,
                          paper, engine=engine)
    table.engine = runtime.stats()
    return table
