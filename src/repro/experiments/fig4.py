"""Fig. 4 — accuracy and speedup across dropout-rate combinations.

The paper varies the dropout-rate pair of the two hidden layers of a
784-2048-2048-10 MLP over {0.3, 0.5, 0.7}^2 (nine combinations) and plots, for
both the Row-based and the Tile-based pattern, the speedup over conventional
dropout and the accuracies of both methods.

Paper-reported shape: RDP speedup grows from ≈1.2x at (0.3, 0.3) to ≈1.8x at
(0.7, 0.7); TDP speedup spans ≈1.18x–1.6x; accuracy loss stays under ≈0.5%.
"""

from __future__ import annotations

from repro.execution import ExecutionConfig
from repro.experiments.common import (
    ReducedScale,
    driver_runtime,
    mlp_speedup,
    timing_mode_for,
    train_reduced_mlp,
)
from repro.experiments.records import ExperimentTable

#: The rate pairs of Fig. 4, in the paper's x-axis order.
RATE_PAIRS: tuple[tuple[float, float], ...] = (
    (0.3, 0.3), (0.5, 0.3), (0.7, 0.3),
    (0.3, 0.5), (0.5, 0.5), (0.7, 0.5),
    (0.3, 0.7), (0.5, 0.7), (0.7, 0.7),
)

#: Approximate speedups read off the paper's Fig. 4 curves (used only for the
#: paper-vs-measured column, not by any computation).
PAPER_SPEEDUP_ROW = {
    (0.3, 0.3): 1.20, (0.5, 0.3): 1.36, (0.7, 0.3): 1.53,
    (0.3, 0.5): 1.36, (0.5, 0.5): 1.50, (0.7, 0.5): 1.65,
    (0.3, 0.7): 1.53, (0.5, 0.7): 1.65, (0.7, 0.7): 1.77,
}
PAPER_SPEEDUP_TILE = {
    (0.3, 0.3): 1.18, (0.5, 0.3): 1.28, (0.7, 0.3): 1.40,
    (0.3, 0.5): 1.28, (0.5, 0.5): 1.40, (0.7, 0.5): 1.50,
    (0.3, 0.7): 1.40, (0.5, 0.7): 1.50, (0.7, 0.7): 1.60,
}

#: The paper's MLP for this figure.
PAPER_HIDDEN = (2048, 2048)


def run_fig4(pattern: str = "ROW", scale: ReducedScale | None = None,
             train_accuracy: bool = True,
             rate_pairs: tuple[tuple[float, float], ...] = RATE_PAIRS,
             execution: ExecutionConfig | None = None,
             ) -> ExperimentTable:
    """Reproduce Fig. 4 for one pattern family ("ROW" or "TILE").

    Parameters
    ----------
    pattern:
        "ROW" for the Row-based Dropout Pattern panel, "TILE" for the
        Tile-based panel.
    scale:
        Reduced-scale training configuration for the accuracy columns.
    train_accuracy:
        Set to ``False`` to skip the (slow) accuracy training and only produce
        the speedup column — useful for the speedup-focused benchmarks.
    rate_pairs:
        Subset of rate pairs to evaluate (defaults to all nine).
    execution:
        Engine mode/dtype of the accuracy training runs.
    """
    pattern = pattern.upper()
    if pattern not in ("ROW", "TILE"):
        raise ValueError(f"pattern must be 'ROW' or 'TILE', got {pattern!r}")
    scale = scale or ReducedScale()
    runtime = driver_runtime(execution)
    paper_speedups = PAPER_SPEEDUP_ROW if pattern == "ROW" else PAPER_SPEEDUP_TILE
    mode = timing_mode_for(pattern)

    columns = ["speedup"]
    if train_accuracy:
        columns += ["baseline_accuracy", "pattern_accuracy", "accuracy_drop"]
    table = ExperimentTable(
        name=f"Fig. 4 ({pattern} dropout pattern)",
        description=("Speedup (paper-scale timing model, 784-2048-2048-10, batch 128) "
                     "and accuracy (reduced-scale synthetic MNIST) per dropout-rate pair."),
        columns=columns,
    )
    for rates in rate_pairs:
        speedup = mlp_speedup(PAPER_HIDDEN, rates, mode)
        values: dict = {"speedup": speedup}
        paper = {"speedup": paper_speedups.get(tuple(rates))}
        engine: dict = {}
        if train_accuracy:
            baseline_accuracy = train_reduced_mlp("original", rates, scale,
                                                  runtime=runtime)
            pattern_result = train_reduced_mlp(pattern.lower(), rates, scale,
                                               runtime=runtime, return_result=True)
            pattern_accuracy = pattern_result.final_metric
            engine = pattern_result.engine_stats
            values.update({
                "baseline_accuracy": baseline_accuracy,
                "pattern_accuracy": pattern_accuracy,
                "accuracy_drop": baseline_accuracy - pattern_accuracy,
            })
            paper["accuracy_drop"] = 0.005
        table.add_row(f"rates={rates}", values, paper, engine=engine)
    table.engine = runtime.stats()
    return table
