"""Shared helpers for the experiment drivers.

The drivers separate two concerns:

* **Speedups** are computed with the analytical GPU timing model at the
  *paper's* network dimensions (2048-unit MLPs, 1500-unit LSTMs, batch 128/20)
  — this is cheap, so it is always done at full scale.
* **Accuracy / perplexity** requires actually training networks, which at the
  paper's scale would take days on a CPU.  The helpers therefore train at a
  configurable *reduced scale* on the synthetic datasets; the comparisons are
  still like-for-like because every dropout variant trains the same reduced
  network on the same data for the same number of updates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synthetic_mnist import SyntheticMNIST, make_synthetic_mnist
from repro.data.synthetic_text import SyntheticCorpus, make_synthetic_corpus
from repro.execution import EngineRuntime, ExecutionConfig
from repro.gpu.device import DeviceSpec, GTX_1080TI
from repro.gpu.training_time import DropoutTimingConfig, LSTMTimingModel, MLPTimingModel
from repro.models.lstm_lm import LSTMConfig, LSTMLanguageModel
from repro.models.mlp import MLPClassifier, MLPConfig
from repro.training.lm_trainer import LanguageModelTrainer, LanguageModelTrainingConfig
from repro.training.trainer import ClassifierTrainer, ClassifierTrainingConfig


# ----------------------------------------------------------------------
# reduced-scale configuration
# ----------------------------------------------------------------------
@dataclass
class ReducedScale:
    """Knobs controlling how much actual training the accuracy columns use.

    The defaults are sized so that a full table reproduces in tens of seconds
    on a laptop CPU; pass larger values for a closer-to-paper run.
    """

    mlp_hidden: int = 256
    mlp_train_samples: int = 2000
    mlp_test_samples: int = 800
    mlp_epochs: int = 12
    mlp_batch_size: int = 64
    lstm_vocab: int = 300
    lstm_hidden: int = 64
    lstm_train_tokens: int = 8000
    lstm_eval_tokens: int = 1500
    lstm_epochs: int = 2
    lstm_batch_size: int = 10
    lstm_seq_len: int = 20
    seed: int = 0

    @staticmethod
    def smoke() -> "ReducedScale":
        """A very small configuration for unit tests and CI smoke runs."""
        return ReducedScale(
            mlp_hidden=64, mlp_train_samples=512, mlp_test_samples=256, mlp_epochs=2,
            mlp_batch_size=64, lstm_vocab=80, lstm_hidden=24, lstm_train_tokens=1500,
            lstm_eval_tokens=600, lstm_epochs=1, lstm_batch_size=5, lstm_seq_len=10)


_MNIST_CACHE: dict[tuple, SyntheticMNIST] = {}
_CORPUS_CACHE: dict[tuple, SyntheticCorpus] = {}


def mnist_for(scale: ReducedScale) -> SyntheticMNIST:
    """The synthetic digit dataset for a reduced-scale configuration (cached)."""
    key = (scale.mlp_train_samples, scale.mlp_test_samples, scale.seed)
    if key not in _MNIST_CACHE:
        _MNIST_CACHE[key] = make_synthetic_mnist(
            num_train=scale.mlp_train_samples, num_test=scale.mlp_test_samples,
            noise=0.6, prototypes_per_class=8, label_noise=0.1, seed=scale.seed + 1)
    return _MNIST_CACHE[key]


def corpus_for(scale: ReducedScale) -> SyntheticCorpus:
    """The synthetic language-model corpus for a reduced-scale configuration (cached)."""
    key = (scale.lstm_vocab, scale.lstm_train_tokens, scale.lstm_eval_tokens, scale.seed)
    if key not in _CORPUS_CACHE:
        _CORPUS_CACHE[key] = make_synthetic_corpus(
            vocab_size=scale.lstm_vocab, num_train_tokens=scale.lstm_train_tokens,
            num_valid_tokens=scale.lstm_eval_tokens, num_test_tokens=scale.lstm_eval_tokens,
            seed=scale.seed + 1)
    return _CORPUS_CACHE[key]


# ----------------------------------------------------------------------
# paper-scale speedups from the timing model
# ----------------------------------------------------------------------
def mlp_speedup(hidden_sizes: tuple[int, ...], rates: tuple[float, ...], mode: str,
                batch_size: int = 128, input_size: int = 784, num_classes: int = 10,
                device: DeviceSpec = GTX_1080TI) -> float:
    """Modelled "old time / new time" for an MLP at the paper's scale."""
    model = MLPTimingModel([input_size, *hidden_sizes, num_classes], batch_size,
                           device=device)
    baseline = model.iteration(DropoutTimingConfig(mode="baseline", rates=rates))
    accelerated = model.iteration(DropoutTimingConfig(mode=mode, rates=rates))
    return accelerated.speedup_over(baseline)


def lstm_speedup(vocab_size: int, hidden_size: int, num_layers: int,
                 rates: tuple[float, ...], mode: str, batch_size: int = 20,
                 seq_len: int = 35, embed_size: int | None = None,
                 device: DeviceSpec = GTX_1080TI) -> float:
    """Modelled "old time / new time" for an LSTM LM at the paper's scale."""
    model = LSTMTimingModel(vocab_size, embed_size or hidden_size, hidden_size,
                            num_layers, batch_size, seq_len, device=device)
    baseline = model.iteration(DropoutTimingConfig(mode="baseline", rates=rates))
    accelerated = model.iteration(DropoutTimingConfig(mode=mode, rates=rates))
    return accelerated.speedup_over(baseline)


_TIMING_MODE = {"none": "none", "original": "baseline", "ROW": "row", "TILE": "tile"}


def timing_mode_for(strategy_name: str) -> str:
    """Map an experiment strategy label to the timing-model mode string."""
    try:
        return _TIMING_MODE[strategy_name]
    except KeyError as exc:
        raise KeyError(f"unknown strategy label {strategy_name!r}") from exc


# ----------------------------------------------------------------------
# execution runtimes for the drivers
# ----------------------------------------------------------------------
def driver_runtime(execution: ExecutionConfig | None = None) -> EngineRuntime:
    """The :class:`EngineRuntime` a driver shares across its training runs.

    One runtime per driver invocation means the table-level engine record
    aggregates the cache/pool/workspace counters over every run that built the
    table, and a single ``execution.seed`` fixes all of their pattern streams.
    """
    return EngineRuntime(execution or ExecutionConfig())


# ----------------------------------------------------------------------
# reduced-scale accuracy training
# ----------------------------------------------------------------------
def train_reduced_mlp(strategy: str, rates: tuple[float, ...], scale: ReducedScale,
                      hidden: int | None = None, epochs: int | None = None,
                      seed: int | None = None,
                      runtime: EngineRuntime | None = None,
                      return_result: bool = False):
    """Train the reduced MLP with a given dropout strategy; return test accuracy.

    ``runtime`` selects the execution engine (mode/dtype/pool seed) the run
    uses; ``return_result`` returns the full :class:`TrainingResult` (with its
    ``engine_stats``) instead of just the final metric.
    """
    data = mnist_for(scale)
    hidden = hidden or scale.mlp_hidden
    config = MLPConfig(
        input_size=data.num_features,
        hidden_sizes=(hidden,) * len(rates),
        num_classes=data.num_classes,
        drop_rates=rates,
        strategy=strategy,
        seed=scale.seed if seed is None else seed,
    )
    model = MLPClassifier(config)
    trainer = ClassifierTrainer(model, data, ClassifierTrainingConfig(
        batch_size=scale.mlp_batch_size,
        learning_rate=0.01,
        momentum=0.9,
        epochs=epochs or scale.mlp_epochs,
        seed=scale.seed if seed is None else seed,
    ), runtime=runtime)
    result = trainer.train()
    return result if return_result else result.final_metric


def train_reduced_lstm(strategy: str, rates: tuple[float, ...], scale: ReducedScale,
                       num_layers: int | None = None, epochs: int | None = None,
                       eval_metric: str = "accuracy", seed: int | None = None,
                       return_history: bool = False,
                       runtime: EngineRuntime | None = None):
    """Train the reduced LSTM LM; return the final metric (and optionally the run).

    ``runtime`` selects the execution engine the run uses (see
    :func:`train_reduced_mlp`).
    """
    corpus = corpus_for(scale)
    num_layers = num_layers or len(rates)
    config = LSTMConfig(
        vocab_size=corpus.vocab_size,
        embed_size=scale.lstm_hidden,
        hidden_size=scale.lstm_hidden,
        num_layers=num_layers,
        drop_rates=rates,
        strategy=strategy,
        seed=scale.seed if seed is None else seed,
    )
    model = LSTMLanguageModel(config)
    trainer = LanguageModelTrainer(model, corpus, LanguageModelTrainingConfig(
        batch_size=scale.lstm_batch_size,
        seq_len=scale.lstm_seq_len,
        learning_rate=1.0,
        epochs=epochs or scale.lstm_epochs,
        eval_metric=eval_metric,
        seed=scale.seed if seed is None else seed,
    ), runtime=runtime)
    result = trainer.train()
    if return_history:
        return result
    return result.final_metric
