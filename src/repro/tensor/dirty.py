"""Dirty-region tracking behind the pattern-aware sparse optimizer.

The compact ops already know exactly which rows/columns of each gradient
buffer they write — every full-size gradient starts as a zero-filled scatter
buffer and receives one (or a few) compact scatters.  This module records
that knowledge as a *dirty region* per array, so the optimizer
(:class:`repro.optim_sparse.SparseSGD`) can restrict its update arithmetic to
the touched rows/columns and still produce **bit-identical** results to the
dense update path.

A region is one of four tuples:

* ``("empty",)`` — the array was allocated zero-filled and nothing has been
  written to it yet;
* ``("rows", idx)`` — only the first-axis indices ``idx`` may be non-zero;
* ``("cols", idx)`` — only the last-axis indices ``idx`` may be non-zero;
* ``("full",)`` — anything may be non-zero (dense fallback).

Two invariants make the optimizer's skipping sound:

1. **Overapproximation** — a recorded region is a *superset* of the written
   elements.  Elements inside the region that were never written hold exactly
   ``+0.0`` (the buffer was zero-filled), and applying the full update math to
   a zero gradient reproduces the dense result bit for bit, so growing the
   region never changes the answer.
2. **Complement-is-zero** — every element *outside* the region is exactly
   ``+0.0``.  This is what lets the clip-norm accumulation skip whole chunks
   and the update skip whole rows.

Arrays with no recorded region are *unknown* — the optimizer falls back to
the dense update for them, which is always correct.

The tracker holds a strong reference to every array it has keyed, so a keyed
``id()`` can never be recycled by a new allocation while the record is alive;
:meth:`DirtyTracker.clear` (called from ``SparseSGD.zero_grad``) releases
them once per step.

Recording is routed through the module-level helpers (``record_rows`` and
friends), which are no-ops unless a tracker has been :func:`activate`-d —
dense-optimizer runs pay one ``is None`` check per scatter and nothing else.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

_EMPTY: tuple = ("empty",)
_FULL: tuple = ("full",)


def _merge(a: tuple, b: tuple) -> tuple:
    """Union of two regions (promotes to ``("full",)`` on kind mismatch)."""
    if a is _EMPTY or a[0] == "empty":
        return b
    if b is _EMPTY or b[0] == "empty":
        return a
    if a[0] == "full" or b[0] == "full" or a[0] != b[0]:
        return _FULL
    if a[1] is b[1]:
        return a
    return (a[0], np.union1d(a[1], b[1]))


class DirtyTracker:
    """Per-step map from gradient-array identity to its dirty region.

    One tracker belongs to one :class:`~repro.execution.EngineRuntime` /
    :class:`~repro.optim_sparse.SparseSGD` pair.  The optimizer activates it
    for the ``zero_grad -> backward -> step`` window of each iteration; the
    scatter hooks in :mod:`repro.backends.base`, the op-level records in
    :mod:`repro.tensor.functional` / :mod:`repro.dropout.compact_ops` and the
    accumulation hooks in :meth:`repro.tensor.Tensor.backward` feed it.

    The tracker also carries the update-observer registry the recurrent
    window-context cache hangs off: after each parameter update the sparse
    optimizer calls :meth:`notify_update` with the touched region, so caches
    of gathered weight tiles can refresh only the dirtied rows.
    """

    def __init__(self):
        self._regions: dict[int, tuple] = {}
        self._refs: dict[int, np.ndarray] = {}
        self._transferable: set[int] = set()
        self._observers: dict[object, Callable[[np.ndarray, str, Any], None]] = {}
        #: Cumulative counters (never cleared by :meth:`clear`).
        self.records = 0
        self.resets = 0

    # ------------------------------------------------------------------
    # per-step lifecycle
    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every region record and array reference (start of a step)."""
        self._regions.clear()
        self._refs.clear()
        self._transferable.clear()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _set(self, array: np.ndarray, region: tuple) -> None:
        key = id(array)
        self._regions[key] = region
        self._refs[key] = array

    def record_reset(self, array: np.ndarray) -> None:
        """``array`` was just (re)filled with zeros."""
        self.resets += 1
        self._set(array, _EMPTY)

    def record_rows(self, array: np.ndarray, rows: np.ndarray) -> None:
        """First-axis indices ``rows`` of ``array`` may now be non-zero."""
        self.records += 1
        existing = self._regions.get(id(array))
        region = ("rows", np.asarray(rows))
        self._set(array, region if existing is None else _merge(existing, region))

    def record_cols(self, array: np.ndarray, cols: np.ndarray) -> None:
        """Last-axis indices ``cols`` of ``array`` may now be non-zero."""
        self.records += 1
        existing = self._regions.get(id(array))
        region = ("cols", np.asarray(cols))
        self._set(array, region if existing is None else _merge(existing, region))

    def record_full(self, array: np.ndarray) -> None:
        """Anything in ``array`` may be non-zero."""
        self.records += 1
        self._set(array, _FULL)

    # ------------------------------------------------------------------
    # propagation (autodiff accumulation hooks)
    # ------------------------------------------------------------------
    def propagate_alias(self, dst: np.ndarray, src: np.ndarray) -> None:
        """``dst`` is an elementwise copy of ``src`` — same region."""
        region = self._regions.get(id(src))
        if region is not None:
            self._set(dst, region)

    def propagate_sum(self, dst: np.ndarray, a: np.ndarray, b: np.ndarray) -> None:
        """``dst = a + b`` — region is the union, unknown if either is."""
        ra = self._regions.get(id(a))
        if ra is None:
            return
        rb = self._regions.get(id(b))
        if rb is None:
            return
        self._set(dst, _merge(ra, rb))

    def mark_transferable(self, array: np.ndarray) -> None:
        """``array`` is a freshly allocated scatter buffer nothing else reuses.

        Ring-backed workspace buffers are *never* marked: they are refilled by
        a later request of the same key, so an autodiff leaf that aliased one
        could be overwritten while a third party still reads it.  A fresh
        allocation has no such second writer — the backward pass may adopt it
        as ``.grad`` without the defensive copy.  Only meaningful for arrays
        the tracker holds a reference to (the mark is keyed by ``id``).
        """
        self._transferable.add(id(array))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def region_of(self, array: np.ndarray) -> tuple | None:
        """The recorded region of ``array``, or ``None`` when unknown."""
        return self._regions.get(id(array))

    def is_transferable(self, array: np.ndarray) -> bool:
        """Whether ``array`` was marked as an adoptable fresh buffer."""
        return id(array) in self._transferable

    # ------------------------------------------------------------------
    # update observers (weight-tile context caches)
    # ------------------------------------------------------------------
    def set_observer(self, key: object,
                     observer: Callable[[np.ndarray, str, Any], None]) -> None:
        """Register ``observer(param_array, kind, indices)`` under ``key``.

        Re-registering the same key replaces the previous observer, so a
        site re-bound to the runtime never accumulates stale callbacks.
        """
        self._observers[key] = observer

    def clear_observers(self) -> None:
        self._observers.clear()

    def notify_update(self, array: np.ndarray, kind: str, indices) -> None:
        """Tell observers ``array`` was updated on region ``(kind, indices)``.

        ``kind`` is ``"rows"`` / ``"cols"`` / ``"full"``; ``indices`` is the
        touched index array (``None`` for ``"full"``).
        """
        for observer in self._observers.values():
            observer(array, kind, indices)

    def stats(self) -> dict[str, int]:
        return {"records": self.records, "resets": self.resets}


# ----------------------------------------------------------------------
# module-global activation window
# ----------------------------------------------------------------------

_ACTIVE: DirtyTracker | None = None


def activate(tracker: DirtyTracker) -> None:
    """Route subsequent records to ``tracker`` (one active tracker at a time)."""
    global _ACTIVE
    _ACTIVE = tracker


def deactivate(tracker: DirtyTracker | None = None) -> None:
    """Stop recording (only if ``tracker`` is the active one, when given)."""
    global _ACTIVE
    if tracker is None or _ACTIVE is tracker:
        _ACTIVE = None


def active_tracker() -> DirtyTracker | None:
    return _ACTIVE


# Cheap hook entry points: one attribute load + ``is None`` test when no
# tracker is active, so the dense paths stay unaffected.

def record_reset(array: np.ndarray) -> None:
    tracker = _ACTIVE
    if tracker is not None:
        tracker.record_reset(array)


def record_rows(array: np.ndarray, rows) -> None:
    tracker = _ACTIVE
    if tracker is not None:
        tracker.record_rows(array, rows)


def record_cols(array: np.ndarray, cols) -> None:
    tracker = _ACTIVE
    if tracker is not None:
        tracker.record_cols(array, cols)


def record_full(array: np.ndarray) -> None:
    tracker = _ACTIVE
    if tracker is not None:
        tracker.record_full(array)


def propagate_alias(dst: np.ndarray, src: np.ndarray) -> None:
    tracker = _ACTIVE
    if tracker is not None:
        tracker.propagate_alias(dst, src)


def propagate_sum(dst: np.ndarray, a: np.ndarray, b: np.ndarray) -> None:
    tracker = _ACTIVE
    if tracker is not None:
        tracker.propagate_sum(dst, a, b)


def mark_transferable(array: np.ndarray) -> None:
    tracker = _ACTIVE
    if tracker is not None:
        tracker.mark_transferable(array)


def is_transferable(array: np.ndarray) -> bool:
    tracker = _ACTIVE
    return tracker is not None and tracker.is_transferable(array)


def region_of(array: np.ndarray) -> tuple | None:
    tracker = _ACTIVE
    return None if tracker is None else tracker.region_of(array)
