"""Numerical gradient checking for the autodiff engine.

Used by the test suite to validate every differentiable operation and layer
against central finite differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor


def numerical_gradient(fn: Callable[[], Tensor], parameter: Tensor,
                       epsilon: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``parameter``.

    ``fn`` must be a zero-argument callable that recomputes the scalar loss
    from the *current* contents of ``parameter.data``; this function perturbs
    the data in place and restores it afterwards.
    """
    grad = np.zeros_like(parameter.data)
    flat = parameter.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        loss_plus = float(fn().data)
        flat[i] = original - epsilon
        loss_minus = float(fn().data)
        flat[i] = original
        grad_flat[i] = (loss_plus - loss_minus) / (2.0 * epsilon)
    return grad


def check_gradients(fn: Callable[[], Tensor], parameters: Sequence[Tensor],
                    epsilon: float = 1e-6, rtol: float = 1e-4,
                    atol: float = 1e-6) -> dict[int, float]:
    """Compare analytic and numerical gradients for each parameter.

    Returns a mapping from parameter index to the maximum absolute error, and
    raises ``AssertionError`` if any parameter's gradients disagree beyond the
    given tolerances.
    """
    for p in parameters:
        p.zero_grad()
    loss = fn()
    loss.backward()
    errors: dict[int, float] = {}
    for idx, p in enumerate(parameters):
        analytic = p.grad if p.grad is not None else np.zeros_like(p.data)
        numeric = numerical_gradient(fn, p, epsilon=epsilon)
        if not np.allclose(analytic, numeric, rtol=rtol, atol=atol):
            max_err = float(np.max(np.abs(analytic - numeric)))
            raise AssertionError(
                f"gradient mismatch for parameter {idx}: max abs error {max_err:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}")
        errors[idx] = float(np.max(np.abs(analytic - numeric)))
    return errors
