"""Core reverse-mode autodiff tensor.

The :class:`Tensor` class wraps a numpy array and records the operations
applied to it so that gradients can later be propagated with
:meth:`Tensor.backward`.  The implementation deliberately stays small and
explicit: each differentiable operation builds a list of
``(parent, backward_fn)`` pairs, where ``backward_fn`` maps the gradient of
the operation's output to the gradient contribution for that parent.

Broadcasting is supported for elementwise arithmetic; gradients flowing into a
broadcast operand are reduced back to the operand's shape by
:func:`_unbroadcast`.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.tensor import dirty as _dirty

ArrayLike = "np.ndarray | float | int | Sequence | Tensor"

# Per-thread, not global: the serving path runs eval-mode forwards under
# no_grad() from batcher worker threads and concurrent load-generator
# threads.  With one shared flag, two overlapping no_grad() blocks race on
# the save/restore (the later entrant saves False and restores it last,
# disabling the tape permanently), and a worker's no_grad() would silently
# eat the tape of a training step on another thread.
_GRAD_STATE = threading.local()


def is_grad_enabled() -> bool:
    """Return whether gradient recording is active on this thread."""
    return getattr(_GRAD_STATE, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient tape recording (per thread).

    Used by evaluation loops, the frozen inference engine and the GPU
    cost-model probes, where building the tape would only waste memory.
    """
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _adopt_or_copy(grad: np.ndarray, walk_owned: bool) -> np.ndarray:
    """The array to store as a leaf's ``.grad`` for accumulated ``grad``.

    A defensive copy protects against gradient buffers that are refilled
    later (the compact workspace rings).  It can be skipped when the array
    is private: either the backward walk allocated it itself
    (``walk_owned``), or the allocating op marked it as a one-shot fresh
    buffer (:func:`repro.tensor.dirty.mark_transferable`).  Otherwise, a
    known dirty-row region turns the full copy into a copy of just the
    possibly-non-zero rows (the complement is exactly zero, so ``zeros`` +
    row copy is elementwise identical).
    """
    if walk_owned or _dirty.is_transferable(grad):
        return grad
    region = _dirty.region_of(grad)
    if (region is not None and region[0] == "rows" and grad.ndim >= 1
            and 2 * len(region[1]) <= grad.shape[0]):
        rows = region[1]
        # np.zeros over zeros_like: calloc'd pages skip the memset.
        out = np.zeros(grad.shape, dtype=grad.dtype)
        out[rows] = grad[rows]
        return out
    return grad.copy()


def _as_array(value, dtype=np.float64) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


class Tensor:
    """A numpy-backed tensor with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Anything ``np.asarray`` accepts.  Stored as ``float64`` by default so
        gradient checks are reliable; callers that care about memory can pass
        ``dtype=np.float32``.
    requires_grad:
        If ``True`` the tensor participates in the autodiff tape and receives
        a ``.grad`` array after ``backward``.
    """

    __slots__ = ("data", "requires_grad", "grad", "_parents", "_op_name")
    __array_priority__ = 100  # make numpy defer to Tensor's reflected ops

    def __init__(self, data, requires_grad: bool = False, dtype=np.float64):
        self.data = np.asarray(data, dtype=dtype)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: np.ndarray | None = None
        self._parents: list[tuple["Tensor", Callable[[np.ndarray], np.ndarray]]] = []
        self._op_name: str = "leaf"

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape, rng: np.random.Generator | None = None,
              scale: float = 1.0, requires_grad: bool = False) -> "Tensor":
        rng = rng or np.random.default_rng()
        return Tensor(rng.standard_normal(shape) * scale, requires_grad=requires_grad)

    @staticmethod
    def from_op(data: np.ndarray,
                parents: Iterable[tuple["Tensor", Callable[[np.ndarray], np.ndarray]]],
                op_name: str) -> "Tensor":
        """Build a non-leaf tensor produced by a differentiable operation.

        The computed dtype is preserved (no silent upcast to float64), so a
        float32 execution path stays float32 through every op.
        """
        data = np.asarray(data)
        parents = [(p, fn) for p, fn in parents if p.requires_grad]
        requires_grad = bool(parents) and is_grad_enabled()
        out = Tensor(data, requires_grad=requires_grad, dtype=data.dtype)
        if requires_grad:
            out._parents = parents
            out._op_name = op_name
        return out

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False, dtype=self.data.dtype)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, op={self._op_name}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # autodiff
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | float | None = None) -> None:
        """Backpropagate from this tensor through the recorded tape.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.  For
            scalar outputs it defaults to 1.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient requires a scalar output")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).copy()

        topo: list[Tensor] = []
        visited: set[int] = set()

        # Iterative topological sort to avoid recursion limits on deep graphs
        # (BPTT over long sequences can create thousands of nodes).
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent, _ in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        # Keys whose accumulated array this walk allocated itself (via
        # ``previous + contribution``): those are private to the walk, so
        # later contributions may be added in place and a leaf may adopt
        # the array as ``.grad`` without a defensive copy.
        owned: set[int] = set()
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if not node._parents:
                # leaf: accumulate into .grad.  The dirty-region propagation
                # mirrors the data flow exactly (copy = alias, add = union)
                # so the sparse optimizer sees the region of the final
                # ``.grad`` array, not of the scatter buffer it came from.
                if node.grad is None:
                    node.grad = _adopt_or_copy(node_grad,
                                               id(node) in owned)
                    _dirty.propagate_alias(node.grad, node_grad)
                else:
                    previous = node.grad
                    node.grad = node.grad + node_grad
                    _dirty.propagate_sum(node.grad, previous, node_grad)
                continue
            for parent, backward_fn in node._parents:
                contribution = backward_fn(node_grad)
                if contribution is None:
                    continue
                contribution = np.asarray(contribution)
                key = id(parent)
                if key in grads:
                    previous = grads[key]
                    if (key in owned
                            and previous.shape == contribution.shape
                            and previous.dtype == contribution.dtype):
                        # In-place accumulate into the walk-private array
                        # (bitwise the same ufunc as ``previous +
                        # contribution``, minus the allocation).
                        previous += contribution
                        _dirty.propagate_sum(previous, previous, contribution)
                    else:
                        grads[key] = previous + contribution
                        owned.add(key)
                        _dirty.propagate_sum(grads[key], previous, contribution)
                else:
                    grads[key] = contribution

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def _binary(self, other, forward, backward_self, backward_other, name: str) -> "Tensor":
        # Non-tensor operands (python scalars, lists, arrays) adopt this
        # tensor's dtype so constants never upcast a float32 graph to float64.
        other_t = other if isinstance(other, Tensor) else Tensor(other, dtype=self.data.dtype)
        out_data = forward(self.data, other_t.data)
        parents = [
            (self, lambda g, s=self: _unbroadcast(backward_self(g, self.data, other_t.data), s.shape)),
            (other_t, lambda g, o=other_t: _unbroadcast(backward_other(g, self.data, other_t.data), o.shape)),
        ]
        return Tensor.from_op(out_data, parents, name)

    def __add__(self, other) -> "Tensor":
        return self._binary(other, lambda a, b: a + b,
                            lambda g, a, b: g, lambda g, a, b: g, "add")

    def __radd__(self, other) -> "Tensor":
        return self.__add__(other)

    def __sub__(self, other) -> "Tensor":
        return self._binary(other, lambda a, b: a - b,
                            lambda g, a, b: g, lambda g, a, b: -g, "sub")

    def __rsub__(self, other) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other, dtype=self.data.dtype)
        return other_t.__sub__(self)

    def __mul__(self, other) -> "Tensor":
        return self._binary(other, lambda a, b: a * b,
                            lambda g, a, b: g * b, lambda g, a, b: g * a, "mul")

    def __rmul__(self, other) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other) -> "Tensor":
        return self._binary(other, lambda a, b: a / b,
                            lambda g, a, b: g / b,
                            lambda g, a, b: -g * a / (b * b), "div")

    def __rtruediv__(self, other) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other, dtype=self.data.dtype)
        return other_t.__truediv__(self)

    def __neg__(self) -> "Tensor":
        return Tensor.from_op(-self.data, [(self, lambda g: -g)], "neg")

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log explicitly")
        exponent = float(exponent)
        out_data = self.data ** exponent
        return Tensor.from_op(
            out_data,
            [(self, lambda g: g * exponent * self.data ** (exponent - 1))],
            "pow",
        )

    # comparison operators return plain boolean arrays (no gradient)
    def __gt__(self, other):
        return self.data > _as_array(other)

    def __ge__(self, other):
        return self.data >= _as_array(other)

    def __lt__(self, other):
        return self.data < _as_array(other)

    def __le__(self, other):
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------
    # linear algebra / shaping
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other, dtype=self.data.dtype)
        a, b = self.data, other_t.data
        out = a @ b
        parents = [
            (self, lambda g: _matmul_backward_a(g, a, b)),
            (other_t, lambda g: _matmul_backward_b(g, a, b)),
        ]
        return Tensor.from_op(out, parents, "matmul")

    def __matmul__(self, other) -> "Tensor":
        return self.matmul(other)

    def transpose(self, axes: tuple[int, ...] | None = None) -> "Tensor":
        out = np.transpose(self.data, axes)
        if axes is None:
            inverse = None
        else:
            inverse = tuple(np.argsort(axes))
        return Tensor.from_op(
            out, [(self, lambda g: np.transpose(g, inverse))], "transpose")

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        out = self.data.reshape(shape)
        return Tensor.from_op(out, [(self, lambda g: g.reshape(original))], "reshape")

    def __getitem__(self, index) -> "Tensor":
        out = self.data[index]
        # Basic indices (ints, slices, ellipsis) select each element at most
        # once, so the gradient scatter can use a buffered `+=` instead of
        # np.add.at — the unbuffered ufunc loop is an order of magnitude
        # slower and only needed when integer-array indices may repeat.
        parts = index if isinstance(index, tuple) else (index,)
        duplicate_free = all(
            isinstance(part, (int, np.integer, slice)) or part is Ellipsis
            or part is None for part in parts)

        def backward(g, index=index):
            full = np.zeros(self.data.shape, dtype=self.data.dtype)
            if duplicate_free:
                # Plain assignment: the buffer is fresh zeros and each
                # element is selected at most once, so ``=`` equals ``+=``
                # without the read-modify-write pass.
                full[index] = g
            else:
                np.add.at(full, index, g)
            return full

        return Tensor.from_op(out, [(self, backward)], "getitem")

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g, axis=axis, keepdims=keepdims):
            if axis is None:
                return np.broadcast_to(g, self.data.shape).copy()
            g_expanded = g if keepdims else np.expand_dims(g, axis)
            return np.broadcast_to(g_expanded, self.data.shape).copy()

        return Tensor.from_op(out, [(self, backward)], "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = 1
            for ax in axes:
                count *= self.data.shape[ax]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g, axis=axis, keepdims=keepdims):
            out_expanded = out if (keepdims or axis is None) else np.expand_dims(out, axis)
            mask = (self.data == out_expanded).astype(self.data.dtype)
            # Split gradient equally among ties (matches numerical gradient).
            counts = mask.sum(axis=axis, keepdims=True)
            g_expanded = g if (keepdims or axis is None) else np.expand_dims(g, axis)
            return mask * g_expanded / counts

        return Tensor.from_op(out, [(self, backward)], "max")

    # ------------------------------------------------------------------
    # elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out = np.exp(self.data)
        return Tensor.from_op(out, [(self, lambda g: g * out)], "exp")

    def log(self) -> "Tensor":
        out = np.log(self.data)
        return Tensor.from_op(out, [(self, lambda g: g / self.data)], "log")

    def sqrt(self) -> "Tensor":
        out = np.sqrt(self.data)
        return Tensor.from_op(out, [(self, lambda g: g * 0.5 / out)], "sqrt")

    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(self.data.dtype)
        out = self.data * mask
        return Tensor.from_op(out, [(self, lambda g: g * mask)], "relu")

    def sigmoid(self) -> "Tensor":
        out = 1.0 / (1.0 + np.exp(-self.data))
        return Tensor.from_op(out, [(self, lambda g: g * out * (1.0 - out))], "sigmoid")

    def tanh(self) -> "Tensor":
        out = np.tanh(self.data)
        return Tensor.from_op(out, [(self, lambda g: g * (1.0 - out * out))], "tanh")

    def clip(self, low: float, high: float) -> "Tensor":
        out = np.clip(self.data, low, high)
        mask = ((self.data >= low) & (self.data <= high)).astype(self.data.dtype)
        return Tensor.from_op(out, [(self, lambda g: g * mask)], "clip")


def _matmul_backward_a(grad: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if b.ndim == 1:
        # (..., n) = (..., n?) — outer-product style
        return np.outer(grad, b) if a.ndim == 2 else grad[..., None] * b
    out = grad @ np.swapaxes(b, -1, -2)
    return _unbroadcast(out, a.shape)


def _matmul_backward_b(grad: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if a.ndim == 1:
        return np.outer(a, grad) if b.ndim == 2 else a[..., None] * grad
    out = np.swapaxes(a, -1, -2) @ grad
    return _unbroadcast(out, b.shape)
