"""Reverse-mode automatic differentiation engine backed by numpy.

This package is the numerical substrate for the whole reproduction: the
neural-network layers in :mod:`repro.nn`, the approximate-dropout layers in
:mod:`repro.dropout` and the training loops in :mod:`repro.training` are all
built on :class:`~repro.tensor.tensor.Tensor`.

The design follows the usual define-by-run tape model: every operation on a
``Tensor`` records a backward closure; calling :meth:`Tensor.backward` walks
the tape in reverse topological order and accumulates gradients into
``Tensor.grad``.
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor import functional
from repro.tensor.gradcheck import check_gradients, numerical_gradient

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "check_gradients",
    "numerical_gradient",
]
