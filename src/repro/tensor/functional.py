"""Functional operations built on :class:`repro.tensor.Tensor`.

These are composite differentiable operations (softmax, log-softmax,
cross-entropy, concatenation, stacking, embedding lookup, masking) used by the
layer library in :mod:`repro.nn` and the approximate-dropout layers in
:mod:`repro.dropout`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tensor import dirty as _dirty
from repro.tensor.tensor import Tensor


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    max_vals = x.data.max(axis=axis, keepdims=True)
    shifted = x - Tensor(max_vals, dtype=max_vals.dtype)
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    max_data = x.data.max(axis=axis, keepdims=True)
    shifted = x - Tensor(max_data, dtype=max_data.dtype)
    log_sum = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - log_sum


def cross_entropy(logits: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Cross-entropy loss from raw logits and integer class targets.

    Parameters
    ----------
    logits:
        Tensor of shape ``(batch, classes)``.
    targets:
        Integer array of shape ``(batch,)``.
    reduction:
        ``"mean"``, ``"sum"`` or ``"none"``.
    """
    targets = np.asarray(targets)
    if targets.ndim != 1:
        raise ValueError(f"targets must be 1-D class indices, got shape {targets.shape}")
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D (batch, classes), got shape {logits.shape}")
    if targets.shape[0] != logits.shape[0]:
        raise ValueError("batch size mismatch between logits and targets")

    log_probs = log_softmax(logits, axis=-1)
    batch = logits.shape[0]
    picked = log_probs[np.arange(batch), targets]
    losses = -picked
    if reduction == "mean":
        return losses.mean()
    if reduction == "sum":
        return losses.sum()
    if reduction == "none":
        return losses
    raise ValueError(f"unknown reduction {reduction!r}")


def nll_loss(log_probs: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood from precomputed log-probabilities."""
    targets = np.asarray(targets)
    batch = log_probs.shape[0]
    picked = log_probs[np.arange(batch), targets]
    losses = -picked
    if reduction == "mean":
        return losses.mean()
    if reduction == "sum":
        return losses.sum()
    return losses


def mse_loss(prediction: Tensor, target: Tensor | np.ndarray, reduction: str = "mean") -> Tensor:
    """Mean-squared-error loss."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target_t
    squared = diff * diff
    if reduction == "mean":
        return squared.mean()
    if reduction == "sum":
        return squared.sum()
    return squared


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing back to each."""
    arrays = [t.data for t in tensors]
    out = np.concatenate(arrays, axis=axis)
    sizes = [a.shape[axis] for a in arrays]
    offsets = np.cumsum([0] + sizes)

    parents = []
    for i, t in enumerate(tensors):
        start, stop = offsets[i], offsets[i + 1]

        def backward(g, start=start, stop=stop, axis=axis):
            slicer = [slice(None)] * g.ndim
            slicer[axis] = slice(start, stop)
            return g[tuple(slicer)]

        parents.append((t, backward))
    return Tensor.from_op(out, parents, "concat")


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    arrays = [t.data for t in tensors]
    out = np.stack(arrays, axis=axis)
    parents = []
    for i, t in enumerate(tensors):
        def backward(g, i=i, axis=axis):
            return np.take(g, i, axis=axis)

        parents.append((t, backward))
    return Tensor.from_op(out, parents, "stack")


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``weight`` at ``indices`` (an integer array of any shape).

    The result has shape ``indices.shape + (embedding_dim,)``; gradients are
    scatter-added back into the embedding matrix.
    """
    indices = np.asarray(indices)
    out = weight.data[indices]

    def backward(g, indices=indices):
        # Sort the flat lookups and segment-sum with np.add.reduceat: same
        # result as np.add.at (which is unbuffered and an order of magnitude
        # slower for embedding-sized scatters), one contiguous reduction per
        # distinct row instead of one scalar add per gathered element.
        grad_weight = np.zeros(weight.data.shape, dtype=weight.data.dtype)
        _dirty.record_reset(grad_weight)
        _dirty.mark_transferable(grad_weight)
        # Normalize negative indices so aliases of one row (-n+k and k) land
        # in the same segment — fancy assignment below is last-write-wins.
        flat_indices = indices.reshape(-1) % weight.data.shape[0]
        if flat_indices.size == 0:
            return grad_weight  # reduceat rejects the empty segment list
        flat_grad = g.reshape(-1, weight.data.shape[1])
        order = np.argsort(flat_indices, kind="stable")
        sorted_indices = flat_indices[order]
        starts = np.flatnonzero(
            np.r_[True, sorted_indices[1:] != sorted_indices[:-1]])
        touched = sorted_indices[starts]
        grad_weight[touched] = np.add.reduceat(flat_grad[order], starts, axis=0)
        _dirty.record_rows(grad_weight, touched)
        return grad_weight

    return Tensor.from_op(out, [(weight, backward)], "embedding")


def lstm_gates(gates: Tensor, c_prev: Tensor) -> tuple[Tensor, Tensor]:
    """Fused LSTM gate activations and state update.

    ``gates`` holds the four pre-activation blocks ``[i | f | g | o]`` fused
    along the last axis (shape ``(batch, 4 * hidden)``); returns
    ``(h_new, c_new)``.  The forward math is bit-identical to the unfused
    slice/sigmoid/tanh composition (same formulas applied in the same order);
    fusing replaces the dozen per-timestep autodiff nodes — four zero-padded
    slice scatters among them — with two nodes whose backward writes the four
    gate-gradient blocks directly into one buffer.
    """
    z = gates.data
    hs = z.shape[-1] // 4
    c_data = c_prev.data
    i_s = 1.0 / (1.0 + np.exp(-z[:, 0 * hs:1 * hs]))
    f_s = 1.0 / (1.0 + np.exp(-z[:, 1 * hs:2 * hs]))
    g_t = np.tanh(z[:, 2 * hs:3 * hs])
    o_s = 1.0 / (1.0 + np.exp(-z[:, 3 * hs:4 * hs]))
    c_new = f_s * c_data + i_s * g_t
    tanh_c = np.tanh(c_new)
    h_new = o_s * tanh_c

    # d loss / d c_new as seen through h_new, shared by the two h edges below.
    # The one-entry cache holds a reference to the upstream grad array, so a
    # recycled id can never alias a different array.  Never mutated after
    # caching.
    dc_cache: list[tuple[np.ndarray, np.ndarray]] = []

    def _dcell_h(g):
        if dc_cache and dc_cache[0][0] is g:
            return dc_cache[0][1]
        dc = np.multiply(tanh_c, tanh_c)
        np.subtract(1.0, dc, out=dc)
        dc *= o_s
        dc *= g
        dc_cache[:] = [(g, dc)]
        return dc

    def h_backward_gates(g):
        # Each gate block is built in place inside the one output buffer:
        # derivative factor first, then the chain terms.
        dc = _dcell_h(g)
        dz = np.empty_like(z)
        bi = dz[:, 0 * hs:1 * hs]
        np.subtract(1.0, i_s, out=bi)
        bi *= i_s
        bi *= g_t
        bi *= dc
        bf = dz[:, 1 * hs:2 * hs]
        np.subtract(1.0, f_s, out=bf)
        bf *= f_s
        bf *= c_data
        bf *= dc
        bg = dz[:, 2 * hs:3 * hs]
        np.multiply(g_t, g_t, out=bg)
        np.subtract(1.0, bg, out=bg)
        bg *= i_s
        bg *= dc
        bo = dz[:, 3 * hs:4 * hs]
        np.subtract(1.0, o_s, out=bo)
        bo *= o_s
        bo *= tanh_c
        bo *= g
        return dz

    def h_backward_c(g):
        return _dcell_h(g) * f_s

    def c_backward_gates(g):
        dz = np.zeros(z.shape, dtype=z.dtype)  # o block stays zero
        bi = dz[:, 0 * hs:1 * hs]
        np.subtract(1.0, i_s, out=bi)
        bi *= i_s
        bi *= g_t
        bi *= g
        bf = dz[:, 1 * hs:2 * hs]
        np.subtract(1.0, f_s, out=bf)
        bf *= f_s
        bf *= c_data
        bf *= g
        bg = dz[:, 2 * hs:3 * hs]
        np.multiply(g_t, g_t, out=bg)
        np.subtract(1.0, bg, out=bg)
        bg *= i_s
        bg *= g
        return dz

    def c_backward_c(g):
        return g * f_s

    h_t = Tensor.from_op(h_new, [(gates, h_backward_gates),
                                 (c_prev, h_backward_c)], "lstm_gates_h")
    c_t = Tensor.from_op(c_new, [(gates, c_backward_gates),
                                 (c_prev, c_backward_c)], "lstm_gates_c")
    return h_t, c_t


def apply_mask(x: Tensor, mask: np.ndarray) -> Tensor:
    """Elementwise multiply by a constant 0/1 mask (the conventional dropout op).

    The mask is a plain numpy array: it is data, not a differentiable input.
    """
    mask = np.asarray(mask, dtype=x.data.dtype)
    out = x.data * mask
    return Tensor.from_op(out, [(x, lambda g: g * mask)], "mask")


def scale(x: Tensor, factor: float) -> Tensor:
    """Multiply by a python scalar (used for inverted-dropout rescaling)."""
    return x * float(factor)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with ``weight`` of shape (out, in).

    The (out, in) layout matches the paper's discussion: dropping output
    neuron ``i`` corresponds to dropping *row* ``i`` of the weight matrix.
    """
    out = x.matmul(weight.transpose())
    if bias is not None:
        out = out + bias
    return out


def rows_select(x: Tensor, row_indices: np.ndarray) -> Tensor:
    """Differentiable row gather: returns ``x[row_indices, :]``."""
    return x[np.asarray(row_indices)]


def rows_scatter(compact: Tensor, row_indices: np.ndarray, total_rows: int) -> Tensor:
    """Scatter compact rows back into a zero matrix of ``total_rows`` rows.

    This is the inverse of :func:`rows_select`: the output has shape
    ``(total_rows, compact.shape[1])`` with ``out[row_indices] = compact`` and
    zeros elsewhere — exactly the expansion step of the row-based dropout
    pattern in the paper (the "rest of the output matrix is set to zero by
    default").
    """
    row_indices = np.asarray(row_indices)
    out = np.zeros((total_rows,) + compact.data.shape[1:], dtype=compact.data.dtype)
    out[row_indices] = compact.data

    def backward(g, row_indices=row_indices):
        return g[row_indices]

    return Tensor.from_op(out, [(compact, backward)], "rows_scatter")


def cols_scatter(compact: Tensor, col_indices: np.ndarray, total_cols: int) -> Tensor:
    """Scatter compact columns back into a zero matrix with ``total_cols`` columns."""
    col_indices = np.asarray(col_indices)
    out_shape = compact.data.shape[:-1] + (total_cols,)
    out = np.zeros(out_shape, dtype=compact.data.dtype)
    out[..., col_indices] = compact.data

    def backward(g, col_indices=col_indices):
        return g[..., col_indices]

    return Tensor.from_op(out, [(compact, backward)], "cols_scatter")


def cols_select(x: Tensor, col_indices: np.ndarray) -> Tensor:
    """Differentiable column gather: returns ``x[..., col_indices]``."""
    col_indices = np.asarray(col_indices)
    out = x.data[..., col_indices]

    def backward(g, col_indices=col_indices):
        full = np.zeros(x.data.shape, dtype=x.data.dtype)
        full[..., col_indices] = g
        _dirty.record_cols(full, col_indices)
        _dirty.mark_transferable(full)
        return full

    return Tensor.from_op(out, [(x, backward)], "cols_select")
