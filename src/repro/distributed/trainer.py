"""The data-parallel coordinator: shard batches out, all-reduce grads, step once.

:class:`DistributedTrainer` wraps the two single-process trainers
(:class:`~repro.training.trainer.ClassifierTrainer` and
:class:`~repro.training.lm_trainer.LanguageModelTrainer`) behind the same
``train() -> TrainingResult`` surface and splits every global batch across
``ExecutionConfig.shards`` spawn-context worker processes:

* ``shards=1`` **delegates in-process** to the wrapped trainer — bit-exact
  with single-process training by construction;
* ``shards=N`` runs the coordinator loop: per step, publish the flat
  parameters to the :class:`~repro.distributed.shm.SharedArena`, release the
  workers (params-ready barrier), wait for their shard gradients
  (grads-ready barrier), tree-reduce the flat blocks in fixed order, union
  the shards' dirty regions into the runtime's tracker (so
  ``optimizer="sparse"`` still skips untouched tiles), apply **one**
  optimizer step on the coordinator's model, and record the size-weighted
  global loss.  Evaluation, history recording, LR scheduling and the result
  record all reuse the wrapped trainer, so the distributed path cannot
  drift from the single-process semantics.

Determinism: the global batch order comes from the training seed (identical
in every process), each shard's pattern pools come from its own
``SeedSequence`` spawn of the execution seed
(:func:`repro.distributed.shard_seed`), the reduce order is a fixed pairwise
tree, and the single optimizer step runs on the coordinator — so *same seed
+ same shard count* replays bit-identical training histories.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import replace
from typing import Any, Iterator

import numpy as np

from repro.data.batching import BatchIterator, BPTTBatcher
from repro.distributed.procs import pinned_blas_env, spawn_context
from repro.distributed.reduce import tree_reduce
from repro.distributed.shm import ParameterLayout, SharedArena, merge_regions
from repro.distributed.worker import (
    BARRIER_TIMEOUT_S,
    WorkerSpec,
    worker_main,
)
from repro.execution import EngineRuntime, ExecutionConfig
from repro.gpu.device import DeviceSpec, GTX_1080TI
from repro.training.history import TrainingHistory, TrainingResult


class DistributedTrainer:
    """Sharded data-parallel training behind the single-trainer interface.

    Parameters
    ----------
    model:
        An :class:`~repro.models.mlp.MLPClassifier` or
        :class:`~repro.models.lstm_lm.LSTMLanguageModel`.  Workers rebuild
        their replica as ``type(model)(model.config)``, so the model must be
        reconstructible from its config (custom strategy *instances* are
        not; use a registered strategy name).
    data:
        The matching dataset (:class:`SyntheticMNIST`) or corpus
        (:class:`SyntheticCorpus`).
    config:
        The wrapped trainer's training config (defaults like the wrapped
        trainer's).
    runtime:
        The execution runtime; ``runtime.config.shards`` selects the worker
        count.  Defaults to a single-process pooled runtime seeded from the
        training config, exactly like the wrapped trainers.
    """

    def __init__(self, model, data, config=None, device: DeviceSpec = GTX_1080TI,
                 runtime: EngineRuntime | None = None):
        kind = _workload_kind(model)
        if kind == "classifier":
            from repro.training.trainer import (
                ClassifierTrainer,
                ClassifierTrainingConfig,
            )
            config = config or ClassifierTrainingConfig()
            inner_type: Any = ClassifierTrainer
        else:
            from repro.training.lm_trainer import (
                LanguageModelTrainer,
                LanguageModelTrainingConfig,
            )
            config = config or LanguageModelTrainingConfig()
            inner_type = LanguageModelTrainer
        self.kind = kind
        self.runtime = runtime or EngineRuntime(ExecutionConfig(
            seed=config.seed, pool_size=config.pattern_pool_size))
        self.shards = self.runtime.config.shards
        self.inner = inner_type(model, data, config, device=device,
                                runtime=self.runtime)
        self.model = model
        self.data = data
        self.config = config
        self._fail_at_step: int | None = None  # test hook, forwarded to workers
        if self.shards > 1:
            if self.runtime.config.seed is None:
                raise ValueError(
                    "distributed training with shards > 1 requires an "
                    "ExecutionConfig.seed: the per-shard pattern streams are "
                    "SeedSequence spawns of it (seed=None cannot be "
                    "replicated deterministically across processes)")
            if config.batch_size < self.shards:
                raise ValueError(
                    f"batch_size ({config.batch_size}) must be >= shards "
                    f"({self.shards}): every shard takes a strided slice of "
                    f"each global batch")
            if getattr(model, "config", None) is None:
                raise ValueError(
                    "distributed training needs a model reconstructible from "
                    "model.config (workers rebuild their own replica)")

    # ------------------------------------------------------------------
    # the step cluster
    # ------------------------------------------------------------------
    @contextmanager
    def session(self) -> Iterator["_Cluster"]:
        """Spawn the worker cluster and yield its per-step interface.

        The benchmark harness drives :meth:`_Cluster.step` directly for
        per-step timing; :meth:`train` runs its epoch loop through the same
        object.  The shared segment is unlinked and the workers stopped on
        exit — including on error.
        """
        if self.shards < 2:
            raise ValueError("session() needs shards >= 2; shards=1 training "
                             "delegates to the wrapped single-process trainer")
        cluster = _Cluster(self)
        try:
            cluster.start()
            yield cluster
        finally:
            cluster.close()

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def train(self) -> TrainingResult:
        """Run the configured epochs and return the wrapped-trainer result."""
        if self.shards == 1:
            return self.inner.train()
        with self.session() as cluster:
            if self.kind == "classifier":
                result = self._train_classifier(cluster)
            else:
                result = self._train_lm(cluster)
        stats = result.engine_stats or {}
        stats["distributed"] = {"shards": self.shards,
                                "steps": cluster.steps,
                                "reduce_ms": round(cluster.reduce_ms, 3)}
        return result

    def _train_classifier(self, cluster: "_Cluster") -> TrainingResult:
        inner, config = self.inner, self.config
        steps_per_epoch = len(BatchIterator(
            self.data.train_images, self.data.train_labels, config.batch_size,
            rng=inner.rng))
        history = TrainingHistory()
        start = time.perf_counter()
        iteration = 0
        last_loss = float("nan")
        for _ in range(config.epochs):
            for _ in range(steps_per_epoch):
                if config.max_iterations is not None and iteration >= config.max_iterations:
                    break
                last_loss = cluster.step()
                iteration += 1
                if config.eval_every and iteration % config.eval_every == 0:
                    inner._record(history, iteration, last_loss, start)
            if config.max_iterations is not None and iteration >= config.max_iterations:
                break
            if not config.eval_every:
                inner._record(history, iteration, last_loss, start)
        if not history.iterations or history.iterations[-1] != iteration:
            inner._record(history, iteration, last_loss, start)
        return self._result(history, iteration, start, higher_is_better=True)

    def _train_lm(self, cluster: "_Cluster") -> TrainingResult:
        inner, config = self.inner, self.config
        steps_per_epoch = len(BPTTBatcher(self.data.train, config.batch_size,
                                          config.seq_len))
        history = TrainingHistory()
        start = time.perf_counter()
        iteration = 0
        last_loss = float("nan")
        for _ in range(config.epochs):
            for _ in range(steps_per_epoch):
                if config.max_iterations is not None and iteration >= config.max_iterations:
                    break
                last_loss = cluster.step()
                iteration += 1
            if config.max_iterations is not None and iteration >= config.max_iterations:
                break
            inner.schedule.step()
            inner._record(history, iteration, last_loss, start)
        if not history.iterations or history.iterations[-1] != iteration:
            inner._record(history, iteration, last_loss, start)
        return self._result(history, iteration, start,
                            higher_is_better=config.eval_metric == "accuracy")

    def _result(self, history: TrainingHistory, iteration: int, start: float,
                higher_is_better: bool) -> TrainingResult:
        inner = self.inner
        return TrainingResult(
            strategy=self.model.strategy.name,
            final_metric=history.eval_metric[-1],
            best_metric=history.best_metric(higher_is_better=higher_is_better),
            iterations=iteration,
            simulated_time_ms=iteration * inner.iteration_time_ms,
            simulated_baseline_time_ms=iteration * inner.baseline_iteration_time_ms,
            wall_time_s=time.perf_counter() - start,
            history=history,
            engine_stats=self.runtime.stats(model=self.model),
        )


def _workload_kind(model) -> str:
    from repro.models.lstm_lm import LSTMLanguageModel
    from repro.models.mlp import MLPClassifier

    if isinstance(model, MLPClassifier):
        return "classifier"
    if isinstance(model, LSTMLanguageModel):
        return "lm"
    raise TypeError(
        f"DistributedTrainer supports MLPClassifier and LSTMLanguageModel, "
        f"got {type(model).__name__}")


class _Cluster:
    """The live worker processes plus the coordinator side of one step."""

    def __init__(self, trainer: DistributedTrainer):
        self.trainer = trainer
        self.workers = trainer.shards
        self.params = list(trainer.model.parameters())
        self.layout = ParameterLayout.from_parameters(self.params)
        self.sparse = trainer.runtime.config.optimizer == "sparse"
        # Persistent full-size gradient buffers: the reduced flat slices are
        # copied into these (stable array identities, so the dirty tracker's
        # id() keys and the optimizer's region lookups line up every step).
        self._grad_buffers = [np.empty(slot.shape, dtype=self.layout.dtype)
                              for slot in self.layout.slots]
        self.arena: SharedArena | None = None
        self._procs: list = []
        self._monitor: threading.Thread | None = None
        self.steps = 0
        self.reduce_ms = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        from repro.distributed import shard_seed

        trainer = self.trainer
        ctx = spawn_context()
        self.arena = SharedArena(self.layout, self.workers)
        self._barrier_params = ctx.Barrier(self.workers + 1)
        self._barrier_grads = ctx.Barrier(self.workers + 1)
        self._stop_event = ctx.Event()
        self._errors = ctx.SimpleQueue()
        exec_config = trainer.runtime.config
        with pinned_blas_env(self.workers):
            for index in range(self.workers):
                spec = WorkerSpec(
                    kind=trainer.kind,
                    shard_index=index,
                    shard_count=self.workers,
                    model_type=type(trainer.model),
                    model_config=trainer.model.config,
                    data=trainer.data,
                    train_config=trainer.config,
                    exec_config=replace(
                        exec_config, shards=1,
                        seed=shard_seed(exec_config.seed, index, self.workers)),
                    arena_name=self.arena.name,
                    fail_at_step=trainer._fail_at_step,
                )
                proc = ctx.Process(
                    target=worker_main,
                    args=(spec, self._barrier_params, self._barrier_grads,
                          self._stop_event, self._errors),
                    daemon=True, name=f"repro-shard-{index}")
                proc.start()
                self._procs.append(proc)
        # Liveness monitor: a worker that dies *before* reaching a barrier
        # (e.g. an import failure in the spawned interpreter) can't abort it,
        # and the coordinator would sit out the full barrier timeout.  The
        # monitor converts "a worker exited while the run is live" into an
        # immediate barrier break instead.
        self._monitor = threading.Thread(target=self._watch_workers,
                                         daemon=True, name="repro-dist-monitor")
        self._monitor.start()

    def _watch_workers(self) -> None:
        while not self._stop_event.is_set():
            dead = [proc for proc in self._procs if proc.exitcode is not None]
            if dead:
                if not self._stop_event.is_set():
                    self._barrier_params.abort()
                    self._barrier_grads.abort()
                return
            time.sleep(0.2)

    def close(self) -> None:
        """Stop the workers and destroy the shared segment (idempotent)."""
        if self.arena is None:
            return
        self._stop_event.set()
        self._barrier_params.abort()
        self._barrier_grads.abort()
        for proc in self._procs:
            proc.join(timeout=30.0)
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - stuck worker backstop
                proc.terminate()
                proc.join(timeout=5.0)
        self._procs = []
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        self.arena.unlink()
        self.arena = None

    # ------------------------------------------------------------------
    # one global step
    # ------------------------------------------------------------------
    def step(self) -> float:
        """One data-parallel step; returns the global-batch mean loss."""
        arena, layout = self.arena, self.layout
        layout.write_params(self.params, arena.params)
        self._wait(self._barrier_params)
        # ... the workers run their shard forward/backward here ...
        self._wait(self._barrier_grads)
        reduce_start = time.perf_counter()
        reduced = tree_reduce(arena.grads)
        tracker = self.trainer.runtime.dirty_tracker
        optimizer = self.trainer.inner.optimizer
        # zero_grad first: the sparse optimizer's zero_grad clears the
        # tracker, so the merged regions recorded below are this step's only.
        optimizer.zero_grad()
        for index, param in enumerate(self.params):
            region = merge_regions(
                [layout.decode_region(arena.regions[w], index)
                 for w in range(self.workers)])
            if region[0] == "none":
                param.grad = None
                continue
            buffer = self._grad_buffers[index]
            np.copyto(buffer, layout.grad_view(reduced, index))
            param.grad = buffer
            if self.sparse:
                if region[0] == "empty":
                    tracker.record_reset(buffer)
                elif region[0] == "rows":
                    tracker.record_rows(buffer, region[1])
                elif region[0] == "cols":
                    tracker.record_cols(buffer, region[1])
                else:
                    tracker.record_full(buffer)
        self.reduce_ms += (time.perf_counter() - reduce_start) * 1000.0
        optimizer.step()
        loss = float(sum(arena.losses[w] * arena.weights[w]
                         for w in range(self.workers)))
        self.steps += 1
        return loss

    def _wait(self, barrier) -> None:
        try:
            barrier.wait(timeout=BARRIER_TIMEOUT_S)
        except threading.BrokenBarrierError:
            self._raise_worker_failure()

    def _raise_worker_failure(self) -> None:
        # Give a just-died worker a moment to flush its traceback.
        deadline = time.monotonic() + 5.0
        while self._errors.empty() and time.monotonic() < deadline:
            if all(proc.exitcode is None for proc in self._procs):
                break
            time.sleep(0.1)
        failures = []
        while not self._errors.empty():
            shard, trace = self._errors.get()
            failures.append(f"shard {shard} failed:\n{trace}")
        if not failures:
            dead = [f"shard {i} exited with code {proc.exitcode}"
                    for i, proc in enumerate(self._procs)
                    if proc.exitcode is not None]
            failures = dead or ["a worker process stopped responding "
                                "(barrier wait timed out)"]
        raise RuntimeError("distributed training aborted — "
                           + "\n".join(failures))
