"""The data-parallel coordinator: shard batches out, all-reduce grads, step once.

:class:`DistributedTrainer` wraps the two single-process trainers
(:class:`~repro.training.trainer.ClassifierTrainer` and
:class:`~repro.training.lm_trainer.LanguageModelTrainer`) behind the same
``train() -> TrainingResult`` surface and splits every global batch across
``ExecutionConfig.shards`` spawn-context worker processes:

* ``shards=1`` **delegates in-process** to the wrapped trainer — bit-exact
  with single-process training by construction;
* ``shards=N`` runs the coordinator loop: per step, publish the flat
  parameters to the :class:`~repro.distributed.shm.SharedArena`, release the
  workers (params-ready barrier), wait for their shard gradients
  (grads-ready barrier), tree-reduce the flat blocks in fixed order (region-
  restricted when dirty-region compression is active — bit-identical either
  way), union the shards' dirty regions into the runtime's tracker (so
  ``optimizer="sparse"`` still skips untouched tiles), apply **one**
  optimizer step on the coordinator's model, and record the size-weighted
  global loss.  Evaluation, history recording, LR scheduling and the result
  record all reuse the wrapped trainer, so the distributed path cannot
  drift from the single-process semantics.

Determinism: the global batch order comes from the training seed (identical
in every process), each shard's pattern pools come from its own
``SeedSequence`` spawn of the execution seed
(:func:`repro.distributed.shard_seed`), the reduce order is a fixed pairwise
tree, and the single optimizer step runs on the coordinator — so *same seed
+ same shard count* replays bit-identical training histories.

Elastic recovery
----------------

That same determinism is what makes the trainer *elastic*: because a shard's
state is a pure function of ``(seed, shard_count, step)``, a worker that
dies, hangs (the barrier waits time out instead of deadlocking the arena) or
publishes non-finite values mid-step can be replaced without losing the
bit-identity guarantee.  The coordinator's parameters and optimizer are
always consistent at the last *completed* step — every failure is detected
before the optimizer step is applied — so recovery is: optionally checkpoint
(:mod:`repro.distributed.checkpoint`), tear the whole cluster down (a
partial respawn is impossible — the surviving workers' pattern pools and
BPTT state cannot rewind), respawn it with ``start_step`` set to the failed
step, let every worker deterministically fast-forward its streams, and
replay the in-flight step.  Consecutive failures beyond
``FaultPolicy.max_retries`` degrade to a clean abort that carries the failed
shards' tracebacks; :meth:`DistributedTrainer.resume` restarts an aborted
(or killed) run from the newest checkpoint with the same bit-identical
history.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from dataclasses import replace
from typing import Any, Iterator

import numpy as np

from repro.data.batching import BatchIterator, BPTTBatcher
from repro.distributed.checkpoint import (
    CheckpointError,
    load_latest,
    save_checkpoint,
)
from repro.distributed.compress import RegionReducer
from repro.distributed.faults import drop_fired
from repro.distributed.procs import pinned_blas_env, spawn_context
from repro.distributed.reduce import tree_reduce
from repro.distributed.shm import ParameterLayout, SharedArena, merge_regions
from repro.distributed.worker import WorkerSpec, state_size, worker_main
from repro.execution import EngineRuntime, ExecutionConfig
from repro.gpu.device import DeviceSpec, GTX_1080TI
from repro.optim_sparse import SparseSGD
from repro.training.history import TrainingHistory, TrainingResult

#: Worker-side barrier margin over the coordinator's timeout, so on a hang
#: the coordinator always times out first and owns the recovery.
_WORKER_TIMEOUT_MARGIN_S = 30.0


class WorkerFailure(RuntimeError):
    """A step could not complete: a shard died, hung or went non-finite.

    Raised by :meth:`_Cluster.step`; :meth:`DistributedTrainer.train` catches
    it to drive the retry/respawn loop and re-raises it unchanged once the
    :class:`~repro.execution.FaultPolicy` retry budget is exhausted.
    """

    def __init__(self, message: str, failures: tuple[str, ...] = ()):
        super().__init__(message)
        self.failures = failures


class DistributedTrainer:
    """Sharded data-parallel training behind the single-trainer interface.

    Parameters
    ----------
    model:
        An :class:`~repro.models.mlp.MLPClassifier` or
        :class:`~repro.models.lstm_lm.LSTMLanguageModel`.  Workers rebuild
        their replica as ``type(model)(model.config)``, so the model must be
        reconstructible from its config (custom strategy *instances* are
        not; use a registered strategy name).
    data:
        The matching dataset (:class:`SyntheticMNIST`) or corpus
        (:class:`SyntheticCorpus`).
    config:
        The wrapped trainer's training config (defaults like the wrapped
        trainer's).
    runtime:
        The execution runtime; ``runtime.config.shards`` selects the worker
        count and ``runtime.config.fault_policy`` the elastic behaviour.
        Defaults to a single-process pooled runtime seeded from the training
        config, exactly like the wrapped trainers.
    """

    def __init__(self, model, data, config=None, device: DeviceSpec = GTX_1080TI,
                 runtime: EngineRuntime | None = None):
        kind = _workload_kind(model)
        if kind == "classifier":
            from repro.training.trainer import (
                ClassifierTrainer,
                ClassifierTrainingConfig,
            )
            config = config or ClassifierTrainingConfig()
            inner_type: Any = ClassifierTrainer
        else:
            from repro.training.lm_trainer import (
                LanguageModelTrainer,
                LanguageModelTrainingConfig,
            )
            config = config or LanguageModelTrainingConfig()
            inner_type = LanguageModelTrainer
        self.kind = kind
        self.runtime = runtime or EngineRuntime(ExecutionConfig(
            seed=config.seed, pool_size=config.pattern_pool_size))
        self.shards = self.runtime.config.shards
        self.inner = inner_type(model, data, config, device=device,
                                runtime=self.runtime)
        self.model = model
        self.data = data
        self.config = config
        self._fail_at_step: int | None = None  # test hook, forwarded to workers
        self._faults: tuple = ()  # test/bench hook: one-shot FaultSpecs
        if self.shards > 1:
            if self.runtime.config.seed is None:
                raise ValueError(
                    "distributed training with shards > 1 requires an "
                    "ExecutionConfig.seed: the per-shard pattern streams are "
                    "SeedSequence spawns of it (seed=None cannot be "
                    "replicated deterministically across processes)")
            if config.batch_size < self.shards:
                raise ValueError(
                    f"batch_size ({config.batch_size}) must be >= shards "
                    f"({self.shards}): every shard takes a strided slice of "
                    f"each global batch")
            if getattr(model, "config", None) is None:
                raise ValueError(
                    "distributed training needs a model reconstructible from "
                    "model.config (workers rebuild their own replica)")

    # ------------------------------------------------------------------
    # the step cluster
    # ------------------------------------------------------------------
    @contextmanager
    def session(self) -> Iterator["_Cluster"]:
        """Spawn the worker cluster and yield its per-step interface.

        The benchmark harness drives :meth:`_Cluster.step` directly for
        per-step timing; :meth:`train` runs its epoch loop through the same
        object.  The shared segment is unlinked and the workers stopped on
        *every* exit path — a worker-failure abort, an error inside the
        ``with`` body, and even a ``start()`` that died halfway.
        """
        if self.shards < 2:
            raise ValueError("session() needs shards >= 2; shards=1 training "
                             "delegates to the wrapped single-process trainer")
        cluster = _Cluster(self)
        try:
            cluster.start()
            yield cluster
        finally:
            cluster.close()

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def train(self) -> TrainingResult:
        """Run the configured epochs and return the wrapped-trainer result."""
        if self.shards == 1:
            return self.inner.train()
        return self._run()

    def resume(self, checkpoint_dir: str | None = None) -> TrainingResult:
        """Pick an interrupted run up from its newest checkpoint.

        Restores the coordinator's parameters, optimizer state, LR schedule
        and recorded history from the newest readable checkpoint in
        ``checkpoint_dir`` (default: ``fault_policy.checkpoint_dir``) and
        continues training from the checkpointed step.  The respawned
        workers deterministically fast-forward their pattern/batch streams
        to that step, so the completed history is bit-identical to an
        uninterrupted run with the same seed and shard count.
        """
        if self.shards < 2:
            raise ValueError("resume() needs shards >= 2; shards=1 training "
                             "delegates to the wrapped single-process trainer")
        policy = self.runtime.config.fault_policy
        directory = checkpoint_dir or policy.checkpoint_dir
        if directory is None:
            raise ValueError("resume() needs a checkpoint directory (pass "
                             "checkpoint_dir= or set "
                             "fault_policy.checkpoint_dir)")
        loaded = load_latest(directory)
        if loaded is None:
            raise CheckpointError(f"no readable checkpoint in {directory!r}")
        meta, arrays, _ = loaded
        iteration, history, last_loss, worker_states = \
            self._restore_state(meta, arrays)
        return self._run(start_iteration=iteration, history=history,
                         last_loss=last_loss, worker_states=worker_states)

    # ------------------------------------------------------------------
    # the unified elastic step loop
    # ------------------------------------------------------------------
    def _steps_per_epoch(self) -> int:
        if self.kind == "classifier":
            return len(BatchIterator(
                self.data.train_images, self.data.train_labels,
                self.config.batch_size, rng=self.inner.rng))
        return len(BPTTBatcher(self.data.train, self.config.batch_size,
                               self.config.seq_len))

    def _state_slots(self) -> int:
        """Width of the arena's per-worker recurrent-state rows.

        Zero for stateless workloads; for the LM the widest shard's
        flattened BPTT carry (narrower shards use a prefix of their row).
        """
        if self.kind != "lm":
            return 0
        widest = max(
            BPTTBatcher(self.data.train, self.config.batch_size,
                        self.config.seq_len, shard_index=index,
                        shard_count=self.shards).shard_batch_size
            for index in range(self.shards))
        return state_size(self.model.init_state(widest))

    def _run(self, start_iteration: int = 0,
             history: TrainingHistory | None = None,
             last_loss: float = float("nan"),
             worker_states: np.ndarray | None = None) -> TrainingResult:
        inner, config = self.inner, self.config
        policy = self.runtime.config.fault_policy
        faults = tuple(self._faults)
        for fault in faults:
            if fault.shard >= self.shards:
                raise ValueError(f"fault targets shard {fault.shard} but the "
                                 f"run has {self.shards} shards")
        steps_per_epoch = self._steps_per_epoch()
        total = config.epochs * steps_per_epoch
        if config.max_iterations is not None:
            total = min(total, config.max_iterations)
        history = history if history is not None else TrainingHistory()
        start = time.perf_counter()
        iteration = start_iteration
        classifier = self.kind == "classifier"
        eval_every = config.eval_every if classifier else 0
        retries = 0
        stats = {"steps": 0, "reduce_ms": 0.0, "recoveries": 0,
                 "compressed_params": 0, "dense_params": 0}
        cluster = _Cluster(self, start_step=iteration, faults=faults,
                           resume_states=worker_states)
        try:
            cluster.start()
            while iteration < total:
                try:
                    last_loss = cluster.step()
                except WorkerFailure:
                    # The coordinator state is still consistent at
                    # `iteration`: every failure is detected before the
                    # optimizer step, so the in-flight step was never
                    # applied and can be replayed verbatim.
                    worker_states = cluster.states_snapshot()
                    if policy.checkpoint_dir is not None:
                        self._save_checkpoint(policy.checkpoint_dir,
                                              iteration, history, last_loss,
                                              worker_states)
                    retries += 1
                    if retries > policy.max_retries:
                        raise
                    cluster.drain_into(stats)
                    cluster.close(join_timeout=10.0)
                    if policy.backoff_s:
                        time.sleep(policy.backoff_s * retries)
                    faults = drop_fired(faults, iteration)
                    stats["recoveries"] += 1
                    cluster = _Cluster(self, start_step=iteration,
                                       faults=faults,
                                       resume_states=worker_states)
                    cluster.start()
                    continue
                retries = 0
                iteration += 1
                at_epoch_end = iteration % steps_per_epoch == 0
                before_cap = (config.max_iterations is None
                              or iteration < config.max_iterations)
                if classifier:
                    if eval_every:
                        if iteration % eval_every == 0:
                            inner._record(history, iteration, last_loss, start)
                    elif at_epoch_end and before_cap:
                        inner._record(history, iteration, last_loss, start)
                elif at_epoch_end and before_cap:
                    inner.schedule.step()
                    inner._record(history, iteration, last_loss, start)
                if (policy.checkpoint_every
                        and iteration % policy.checkpoint_every == 0):
                    self._save_checkpoint(policy.checkpoint_dir, iteration,
                                          history, last_loss,
                                          cluster.states_snapshot())
        finally:
            cluster.drain_into(stats)
            cluster.close()
        if not history.iterations or history.iterations[-1] != iteration:
            inner._record(history, iteration, last_loss, start)
        higher = True if classifier else config.eval_metric == "accuracy"
        result = self._result(history, iteration, start,
                              higher_is_better=higher)
        dist = {"shards": self.shards, "steps": stats["steps"],
                "reduce_ms": round(stats["reduce_ms"], 3),
                "recoveries": stats["recoveries"]}
        if stats["compressed_params"] or stats["dense_params"]:
            dist["compressed_params"] = stats["compressed_params"]
            dist["dense_params"] = stats["dense_params"]
        result.engine_stats["distributed"] = dist
        return result

    def _result(self, history: TrainingHistory, iteration: int, start: float,
                higher_is_better: bool) -> TrainingResult:
        inner = self.inner
        return TrainingResult(
            strategy=self.model.strategy.name,
            final_metric=history.eval_metric[-1],
            best_metric=history.best_metric(higher_is_better=higher_is_better),
            iterations=iteration,
            simulated_time_ms=iteration * inner.iteration_time_ms,
            simulated_baseline_time_ms=iteration * inner.baseline_iteration_time_ms,
            wall_time_s=time.perf_counter() - start,
            history=history,
            engine_stats=self.runtime.stats(model=self.model),
        )

    # ------------------------------------------------------------------
    # checkpoint capture / restore (coordinator state only)
    # ------------------------------------------------------------------
    def _save_checkpoint(self, directory: str, iteration: int,
                         history: TrainingHistory, last_loss: float,
                         worker_states: np.ndarray | None = None) -> None:
        meta, arrays = self._capture_state(history, last_loss, worker_states)
        save_checkpoint(directory, iteration, meta, arrays)

    def _capture_state(self, history: TrainingHistory, last_loss: float,
                       worker_states: np.ndarray | None = None
                       ) -> tuple[dict, dict]:
        exec_config = self.runtime.config
        params = list(self.model.parameters())
        layout = ParameterLayout.from_parameters(params)
        flat = np.empty(layout.total_size, dtype=layout.dtype)
        layout.write_params(params, flat)
        optimizer = self.inner.optimizer
        meta = {
            "kind": self.kind,
            "seed": int(exec_config.seed),
            "shards": int(self.shards),
            "dtype": str(exec_config.dtype),
            "optimizer": exec_config.optimizer,
            "lr": float(optimizer.lr),
            "step_count": int(optimizer.step_count),
            "last_loss": float(last_loss),
            "param_shapes": [list(slot.shape) for slot in layout.slots],
        }
        if self.kind == "lm":
            meta["schedule_epoch"] = int(self.inner.schedule.epoch)
        if worker_states is not None:
            meta["state_slots"] = int(worker_states.shape[1])
        arrays: dict[str, np.ndarray] = {
            "params": flat,
            "history_iterations": np.asarray(history.iterations,
                                             dtype=np.int64),
            "history_train_loss": np.asarray(history.train_loss),
            "history_eval_metric": np.asarray(history.eval_metric),
            "history_simulated_time_ms": np.asarray(history.simulated_time_ms),
            "history_wall_time_s": np.asarray(history.wall_time_s),
        }
        if worker_states is not None:
            arrays["worker_states"] = worker_states
        for index, velocity in enumerate(optimizer._velocity):
            if velocity is not None:
                arrays[f"velocity_{index}"] = velocity
        if isinstance(optimizer, SparseSGD):
            kinds: list[str | None] = []
            for index, ever in enumerate(optimizer._ever):
                if ever is None:
                    kinds.append(None)
                elif ever[0] == "full":
                    kinds.append("full")
                else:
                    kinds.append(ever[0])
                    arrays[f"ever_mask_{index}"] = ever[1]
            meta["ever_kinds"] = kinds
        return meta, arrays

    def _restore_state(
            self, meta: dict, arrays: dict
    ) -> tuple[int, TrainingHistory, float, np.ndarray | None]:
        exec_config = self.runtime.config
        params = list(self.model.parameters())
        layout = ParameterLayout.from_parameters(params)

        def _mismatch(field, saved, current):
            raise CheckpointError(
                f"checkpoint was written by an incompatible run: {field} is "
                f"{saved!r} in the checkpoint but {current!r} here")

        for field, current in (("kind", self.kind),
                               ("seed", int(exec_config.seed)),
                               ("shards", int(self.shards)),
                               ("dtype", str(exec_config.dtype)),
                               ("optimizer", exec_config.optimizer)):
            if meta.get(field) != current:
                _mismatch(field, meta.get(field), current)
        shapes = [list(slot.shape) for slot in layout.slots]
        if meta.get("param_shapes") != shapes:
            _mismatch("param_shapes", meta.get("param_shapes"), shapes)
        flat = arrays["params"]
        if flat.shape != (layout.total_size,) or flat.dtype != layout.dtype:
            _mismatch("params block",
                      f"{flat.shape}/{flat.dtype}",
                      f"{(layout.total_size,)}/{layout.dtype}")
        layout.read_params(flat, params)
        optimizer = self.inner.optimizer
        optimizer.lr = float(meta["lr"])
        optimizer.step_count = int(meta["step_count"])
        for index, param in enumerate(params):
            velocity = arrays.get(f"velocity_{index}")
            if velocity is None:
                optimizer._velocity[index] = None
                continue
            if (velocity.shape != param.data.shape
                    or velocity.dtype != param.data.dtype):
                _mismatch(f"velocity_{index}",
                          f"{velocity.shape}/{velocity.dtype}",
                          f"{param.data.shape}/{param.data.dtype}")
            optimizer._velocity[index] = np.ascontiguousarray(velocity)
        if isinstance(optimizer, SparseSGD):
            kinds = meta.get("ever_kinds")
            if kinds is None or len(kinds) != len(params):
                _mismatch("ever_kinds", kinds, f"{len(params)} entries")
            for index, kind in enumerate(kinds):
                if kind is None:
                    optimizer._ever[index] = None
                elif kind == "full":
                    optimizer._ever[index] = ("full",)
                else:
                    mask = np.ascontiguousarray(arrays[f"ever_mask_{index}"])
                    optimizer._ever[index] = (kind, mask)
        if self.kind == "lm":
            self.inner.schedule.epoch = int(meta["schedule_epoch"])
        state_slots = self._state_slots()
        if int(meta.get("state_slots", 0)) != state_slots:
            _mismatch("state_slots", meta.get("state_slots", 0), state_slots)
        worker_states = None
        if state_slots:
            worker_states = np.ascontiguousarray(arrays["worker_states"])
            if worker_states.shape != (self.shards, state_slots):
                _mismatch("worker_states",
                          worker_states.shape, (self.shards, state_slots))
        history = TrainingHistory(
            iterations=[int(v) for v in arrays["history_iterations"]],
            train_loss=[float(v) for v in arrays["history_train_loss"]],
            eval_metric=[float(v) for v in arrays["history_eval_metric"]],
            simulated_time_ms=[float(v) for v in
                               arrays["history_simulated_time_ms"]],
            wall_time_s=[float(v) for v in arrays["history_wall_time_s"]],
        )
        return (int(meta["step"]), history, float(meta["last_loss"]),
                worker_states)


def _workload_kind(model) -> str:
    from repro.models.lstm_lm import LSTMLanguageModel
    from repro.models.mlp import MLPClassifier

    if isinstance(model, MLPClassifier):
        return "classifier"
    if isinstance(model, LSTMLanguageModel):
        return "lm"
    raise TypeError(
        f"DistributedTrainer supports MLPClassifier and LSTMLanguageModel, "
        f"got {type(model).__name__}")


class _Cluster:
    """The live worker processes plus the coordinator side of one step."""

    def __init__(self, trainer: DistributedTrainer, start_step: int = 0,
                 faults: tuple = (),
                 resume_states: np.ndarray | None = None):
        self.trainer = trainer
        self.workers = trainer.shards
        self.start_step = start_step
        self.faults = tuple(faults)
        self.state_slots = trainer._state_slots()
        # The carry-state snapshot of the last *successful* step (i.e. the
        # state every shard needs at the start of the next one).  Seeded
        # from the previous cluster's snapshot so a failure before this
        # cluster completes a step still hands the right rows onward.
        self._worker_states = None
        if self.state_slots:
            if resume_states is not None:
                self._worker_states = np.array(resume_states, copy=True)
            else:
                self._worker_states = np.zeros(
                    (self.workers, self.state_slots),
                    dtype=trainer.runtime.np_dtype)
        self.params = list(trainer.model.parameters())
        self.layout = ParameterLayout.from_parameters(self.params)
        exec_config = trainer.runtime.config
        self.sparse = exec_config.optimizer == "sparse"
        # Region compression needs the tight regions only the sparse
        # tracker records; under the dense optimizer everything is FULL
        # and the plain in-place reduce is strictly cheaper.
        self.compress = self.sparse and exec_config.compress_cutover > 0
        self._reducer = (RegionReducer(self.layout,
                                       exec_config.compress_cutover)
                         if self.compress else None)
        self._policy = exec_config.fault_policy
        # Persistent full-size gradient buffers: the reduced flat slices are
        # copied into these (stable array identities, so the dirty tracker's
        # id() keys and the optimizer's region lookups line up every step).
        # Zero-initialised: the region reducer only writes dirty slices and
        # relies on the complement staying exact +0.0.
        self._grad_buffers = [np.zeros(slot.shape, dtype=self.layout.dtype)
                              for slot in self.layout.slots]
        self.arena: SharedArena | None = None
        self._procs: list = []
        self._monitor: threading.Thread | None = None
        # None until start(): close() must stay safe when start() died
        # halfway (the arena would otherwise leak in /dev/shm).
        self._barrier_params = None
        self._barrier_grads = None
        self._stop_event = None
        self._errors = None
        self.steps = 0
        self.reduce_ms = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        from repro.distributed import shard_seed

        trainer = self.trainer
        ctx = spawn_context()
        self.arena = SharedArena(self.layout, self.workers,
                                 state_slots=self.state_slots)
        self._barrier_params = ctx.Barrier(self.workers + 1)
        self._barrier_grads = ctx.Barrier(self.workers + 1)
        self._stop_event = ctx.Event()
        self._errors = ctx.SimpleQueue()
        exec_config = trainer.runtime.config
        worker_timeout = (self._policy.barrier_timeout_s
                          + _WORKER_TIMEOUT_MARGIN_S)
        with pinned_blas_env(self.workers):
            for index in range(self.workers):
                spec = WorkerSpec(
                    kind=trainer.kind,
                    shard_index=index,
                    shard_count=self.workers,
                    model_type=type(trainer.model),
                    model_config=trainer.model.config,
                    data=trainer.data,
                    train_config=trainer.config,
                    exec_config=replace(
                        exec_config, shards=1,
                        seed=shard_seed(exec_config.seed, index, self.workers)),
                    arena_name=self.arena.name,
                    fail_at_step=trainer._fail_at_step,
                    start_step=self.start_step,
                    faults=tuple(fault for fault in self.faults
                                 if fault.shard == index),
                    barrier_timeout_s=worker_timeout,
                    state_slots=self.state_slots,
                    resume_state=(
                        np.array(self._worker_states[index])
                        if self._worker_states is not None
                        and self.start_step > 0 else None),
                )
                proc = ctx.Process(
                    target=worker_main,
                    args=(spec, self._barrier_params, self._barrier_grads,
                          self._stop_event, self._errors),
                    daemon=True, name=f"repro-shard-{index}")
                proc.start()
                self._procs.append(proc)
        # Liveness monitor: a worker that dies *before* reaching a barrier
        # (e.g. an import failure in the spawned interpreter) can't abort it,
        # and the coordinator would sit out the full barrier timeout.  The
        # monitor converts "a worker exited while the run is live" into an
        # immediate barrier break instead.
        self._monitor = threading.Thread(target=self._watch_workers,
                                         daemon=True, name="repro-dist-monitor")
        self._monitor.start()

    def _watch_workers(self) -> None:
        while not self._stop_event.is_set():
            dead = [proc for proc in self._procs if proc.exitcode is not None]
            if dead:
                if not self._stop_event.is_set():
                    self._barrier_params.abort()
                    self._barrier_grads.abort()
                return
            time.sleep(0.2)

    def close(self, join_timeout: float = 30.0) -> None:
        """Stop the workers and destroy the shared segment (idempotent).

        Safe on a cluster whose ``start()`` failed partway: every handle is
        guarded, and the arena — the only state visible outside this process
        — is unlinked whenever it was created.  ``join_timeout`` bounds the
        per-worker wait before escalation to ``terminate()`` (the elastic
        recovery path uses a short one: a misbehaving worker is being
        replaced anyway).
        """
        if self.arena is None:
            return
        if self._stop_event is not None:
            self._stop_event.set()
        for barrier in (self._barrier_params, self._barrier_grads):
            if barrier is not None:
                barrier.abort()
        for proc in self._procs:
            proc.join(timeout=join_timeout)
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - stuck worker backstop
                proc.terminate()
                proc.join(timeout=5.0)
        self._procs = []
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        self.arena.unlink()
        self.arena = None

    def states_snapshot(self) -> np.ndarray | None:
        """Copy of the carry states at the last completed step (or ``None``)."""
        if self._worker_states is None:
            return None
        return np.array(self._worker_states, copy=True)

    def drain_into(self, stats: dict) -> None:
        """Accumulate this cluster's counters before it is closed."""
        stats["steps"] += self.steps
        stats["reduce_ms"] += self.reduce_ms
        if self._reducer is not None:
            stats["compressed_params"] += self._reducer.compressed_params
            stats["dense_params"] += self._reducer.dense_params

    # ------------------------------------------------------------------
    # one global step
    # ------------------------------------------------------------------
    def step(self) -> float:
        """One data-parallel step; returns the global-batch mean loss."""
        arena, layout = self.arena, self.layout
        layout.write_params(self.params, arena.params)
        self._wait(self._barrier_params)
        # ... the workers run their shard forward/backward here ...
        self._wait(self._barrier_grads)
        reduce_start = time.perf_counter()
        reduced = None
        if not self.compress:
            # In-place whole-block tree reduce: the workers fully overwrite
            # their blocks next step, so mutating them here is safe.
            reduced = tree_reduce(arena.grads)
        tracker = self.trainer.runtime.dirty_tracker
        optimizer = self.trainer.inner.optimizer
        # zero_grad first: the sparse optimizer's zero_grad clears the
        # tracker, so the merged regions recorded below are this step's only.
        optimizer.zero_grad()
        for index, param in enumerate(self.params):
            region = merge_regions(
                [layout.decode_region(arena.regions[w], index)
                 for w in range(self.workers)])
            if region[0] == "none":
                param.grad = None
                continue
            buffer = self._grad_buffers[index]
            if self.compress:
                # Sparse writes left each block bit-equal to the dense
                # gradient; reduce only the merged dirty region (same
                # pairwise association, hence the same bits).
                self._reducer.reduce_into(buffer, arena.grads, index, region)
            else:
                np.copyto(buffer, layout.grad_view(reduced, index))
            param.grad = buffer
            if self.sparse:
                if region[0] == "empty":
                    tracker.record_reset(buffer)
                elif region[0] == "rows":
                    tracker.record_rows(buffer, region[1])
                elif region[0] == "cols":
                    tracker.record_cols(buffer, region[1])
                else:
                    tracker.record_full(buffer)
        self.reduce_ms += (time.perf_counter() - reduce_start) * 1000.0
        # Drop the arena view before anything below can raise: a WorkerFailure
        # traceback would otherwise pin this frame — and with it the exported
        # buffer — past close(), leaving the segment unable to release its
        # mapping.
        reduced = None
        losses = [float(arena.losses[w]) for w in range(self.workers)]
        weights = [float(arena.weights[w]) for w in range(self.workers)]
        if self._policy.validate_numerics:
            self._validate_numerics(losses)
        # Failure detection is complete: only now does the step commit.
        if self._worker_states is not None:
            # Published during this step's forward = the carry every shard
            # needs at the start of the *next* step.
            np.copyto(self._worker_states, self.arena.states)
        optimizer.step()
        loss = float(sum(loss * weight
                         for loss, weight in zip(losses, weights)))
        self.steps += 1
        return loss

    def _validate_numerics(self, losses: list[float]) -> None:
        """Reject NaN/Inf shard output *before* the optimizer step."""
        finite = all(math.isfinite(value) for value in losses)
        if finite:
            finite = all(param.grad is None or np.isfinite(param.grad).all()
                         for param in self.params)
        if finite:
            return
        culprits = [w for w in range(self.workers)
                    if not math.isfinite(losses[w])
                    or not np.isfinite(self.arena.grads[w]).all()]
        named = ", ".join(f"shard {w}" for w in culprits) or "unknown shard"
        raise WorkerFailure(
            f"distributed training aborted — {named} published non-finite "
            f"gradients/loss at step {self.steps + self.start_step}",
            failures=tuple(f"shard {w} published non-finite values"
                           for w in culprits))

    def _wait(self, barrier) -> None:
        try:
            barrier.wait(timeout=self._policy.barrier_timeout_s)
        except threading.BrokenBarrierError:
            self._raise_worker_failure()

    def _raise_worker_failure(self) -> None:
        # Give a just-died worker a moment to flush its traceback.
        deadline = time.monotonic() + 5.0
        while self._errors.empty() and time.monotonic() < deadline:
            if all(proc.exitcode is None for proc in self._procs):
                break
            time.sleep(0.1)
        failures = []
        while not self._errors.empty():
            shard, trace = self._errors.get()
            failures.append(f"shard {shard} failed:\n{trace}")
        if not failures:
            dead = [f"shard {i} exited with code {proc.exitcode}"
                    for i, proc in enumerate(self._procs)
                    if proc.exitcode is not None]
            failures = dead or [
                "a worker process stopped responding (barrier wait timed "
                f"out after {self._policy.barrier_timeout_s:g}s)"]
        raise WorkerFailure("distributed training aborted — "
                            + "\n".join(failures),
                            failures=tuple(failures))
