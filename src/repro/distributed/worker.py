"""Spawn-side shard loop of the data-parallel trainer.

Each worker rebuilds the model from its config (spawn-context children share
nothing), binds it to a shard-local :class:`~repro.execution.EngineRuntime`
whose pattern pools are seeded from the shard's own ``SeedSequence`` spawn,
and then runs the step loop in lock-step with the coordinator:

1. wait at the *params-ready* barrier, then copy the coordinator's flat
   parameter vector into the local model (in place — array identities are
   stable across the whole run);
2. forward/backward on the shard's strided slice of the global batch, with
   the local loss pre-scaled by the shard's share of the global batch, so
   the coordinator's tree-sum of shard gradients *is* the global-batch-mean
   gradient;
3. publish the flat gradients (region-sliced when dirty-region compression
   is active), the unscaled shard loss/weight and the dirty regions the
   sparse tracker recorded, then wait at the *grads-ready* barrier.

The worker deliberately has no notion of "how many steps the run takes": it
loops over epochs forever (its sharded batch iterator replays the *global*
shuffle order, so every shard agrees on batch boundaries) and exits when the
coordinator sets the stop event and breaks the barriers.  A worker that dies
instead aborts both barriers, which surfaces at the coordinator as a broken
barrier plus a traceback on the error queue.

Fast-forward (elastic recovery)
-------------------------------

A replacement worker spawned after a failure at global step N receives
``start_step=N`` and replays its RNG/batch streams *without* touching the
arena: for every step below ``start_step`` it consumes exactly the draws the
live path would have (the epoch's pooled pattern plan, the per-step schedule
advance, and the per-forward Bernoulli draws of conventional-dropout models)
and then joins the barriers at step N with bit-identical shard state.

The one piece of shard state that *cannot* be recomputed this way is the
LSTM's mid-epoch BPTT carry: its value depends on the parameter vector of
every step since the epoch started, and those vectors existed only in the
arena at the time.  LM workers therefore publish their flattened carry state
into ``arena.states`` after every forward; the coordinator snapshots the rows
of each *successful* step and hands them back through
``WorkerSpec.resume_state``, which the replacement worker installs at its
first live step (unless that step opens an epoch, where ``begin_epoch``'s
fresh state is already correct).
"""

from __future__ import annotations

import itertools
import threading
import traceback
from dataclasses import dataclass
from typing import Any

import numpy as np

#: Generous default per-wait timeout: a healthy coordinator releases a
#: barrier within one step; a wait this long means a peer died without
#: aborting.  The effective timeout comes from
#: ``FaultPolicy.barrier_timeout_s`` (workers add a margin so the
#: coordinator always times out first and owns the recovery).
BARRIER_TIMEOUT_S = 300.0


@dataclass
class WorkerSpec:
    """Everything one worker needs, pickled once at spawn (not per step)."""

    kind: str              #: "classifier" or "lm"
    shard_index: int
    shard_count: int
    model_type: type       #: rebuilt in the worker as ``model_type(model_config)``
    model_config: Any
    data: Any              #: SyntheticMNIST dataset or SyntheticCorpus
    train_config: Any
    exec_config: Any       #: shard-local ExecutionConfig (per-shard seed)
    arena_name: str        #: coordinator's SharedArena segment
    fail_at_step: int | None = None  #: test hook: raise at this step index
    start_step: int = 0    #: fast-forward the shard state to this global step
    faults: tuple = ()     #: one-shot :class:`~repro.distributed.faults.FaultSpec`s
    barrier_timeout_s: float = BARRIER_TIMEOUT_S
    state_slots: int = 0   #: width of the arena's per-worker state rows
    resume_state: Any = None  #: flattened carry state at ``start_step``


def wait_on(barrier, stop_event,
            timeout: float = BARRIER_TIMEOUT_S) -> bool:
    """One barrier wait; ``False`` means the coordinator asked us to stop."""
    try:
        barrier.wait(timeout=timeout)
        return True
    except threading.BrokenBarrierError:
        if stop_event.is_set():
            return False
        raise RuntimeError(
            "synchronization barrier broken without a shutdown signal "
            "(a peer process died)") from None


def state_size(state) -> int:
    """Flat element count of one BPTT carry state (list of ``(h, c)``)."""
    return sum(h.data.size + c.data.size for h, c in state)


def flatten_state(state, row: np.ndarray) -> None:
    """Serialise the carry state into (a prefix of) one arena state row."""
    offset = 0
    for pair in state:
        for part in pair:
            data = part.data
            row[offset:offset + data.size] = data.ravel()
            offset += data.size


def unflatten_state(template, row: np.ndarray):
    """Rebuild a carry state shaped like ``template`` from a flat row."""
    from repro.tensor import Tensor

    offset = 0
    rebuilt = []
    for pair in template:
        parts = []
        for part in pair:
            shape = part.data.shape
            size = part.data.size
            values = np.asarray(row[offset:offset + size]
                                ).reshape(shape).copy()
            parts.append(Tensor(values, dtype=part.data.dtype))
            offset += size
        rebuilt.append((parts[0], parts[1]))
    return rebuilt


def _draws_rng_at_forward(model) -> bool:
    """Whether any module redraws randomness inside ``forward`` itself.

    The pattern machinery consumes all of its randomness in ``plan()`` /
    ``step()``, but the conventional-dropout baseline layers
    (:mod:`repro.nn.dropout`) draw a fresh Bernoulli mask per forward call —
    fast-forward must then actually run the forward to keep the stream
    aligned.
    """
    return any(type(module).__module__ == "repro.nn.dropout"
               for module in model.modules())


class _ClassifierShard:
    """Shard-local workload: MLP classifier forward/backward."""

    def __init__(self, spec: WorkerSpec, runtime):
        from repro.data.batching import BatchIterator
        from repro.training.trainer import ClassifierTrainer

        model = spec.model_type(spec.model_config)
        self.trainer = ClassifierTrainer(model, spec.data, spec.train_config,
                                         runtime=runtime)
        self.iterator = BatchIterator(
            spec.data.train_images, spec.data.train_labels,
            spec.train_config.batch_size, rng=self.trainer.rng,
            shard_index=spec.shard_index, shard_count=spec.shard_count)
        self.global_batch = spec.train_config.batch_size
        self._forward_draws = _draws_rng_at_forward(model)
        self.state_slots = 0  # stateless between steps

    def begin_epoch(self):
        self.trainer.pattern_schedule.plan(len(self.iterator))
        return iter(self.iterator)

    def forward_backward(self, batch) -> tuple[float, float]:
        images, labels = batch
        weight = images.shape[0] / self.global_batch
        loss = self.trainer.forward_backward(images, labels, loss_scale=weight)
        return loss, weight

    def fast_forward(self, batch) -> None:
        """Consume one step's randomness without touching parameters."""
        from repro.tensor import Tensor, no_grad

        trainer = self.trainer
        trainer.model.train()
        trainer.pattern_schedule.step()
        if self._forward_draws:
            images, _ = batch
            with no_grad():
                trainer.model(Tensor(images, dtype=trainer.runtime.np_dtype))

    def publish_state(self, row: np.ndarray) -> None:
        pass

    def restore_state(self, row: np.ndarray) -> None:
        pass


class _LanguageModelShard:
    """Shard-local workload: LSTM truncated-BPTT forward/backward."""

    def __init__(self, spec: WorkerSpec, runtime):
        from repro.data.batching import BPTTBatcher
        from repro.training.lm_trainer import LanguageModelTrainer

        model = spec.model_type(spec.model_config)
        self.trainer = LanguageModelTrainer(model, spec.data, spec.train_config,
                                            runtime=runtime)
        config = spec.train_config
        self.batcher = BPTTBatcher(spec.data.train, config.batch_size,
                                   config.seq_len,
                                   shard_index=spec.shard_index,
                                   shard_count=spec.shard_count)
        self.global_batch = config.batch_size
        self.state = None
        self._forward_draws = _draws_rng_at_forward(model)
        self.state_slots = state_size(
            model.init_state(self.batcher.shard_batch_size))

    def begin_epoch(self):
        self.trainer.pattern_schedule.plan(len(self.batcher))
        # BPTT state restarts each epoch, exactly like the in-process trainer.
        self.state = self.trainer.model.init_state(self.batcher.shard_batch_size)
        return iter(self.batcher)

    def forward_backward(self, batch) -> tuple[float, float]:
        inputs, targets = batch
        weight = inputs.shape[1] / self.global_batch
        loss, self.state = self.trainer.forward_backward(
            inputs, targets, self.state, loss_scale=weight)
        return loss, weight

    def fast_forward(self, batch) -> None:
        """Consume one step's randomness without touching parameters.

        Deliberately does NOT propagate the BPTT carry: a replayed forward
        would run against the *initial* parameters, not the vectors the live
        run trained with, so its state values are wrong anyway — the correct
        mid-epoch carry arrives via ``WorkerSpec.resume_state``.  A forward
        still runs for conventional-dropout models, whose per-call Bernoulli
        draws (shape-dependent, value-independent) must stay stream-aligned.
        """
        from repro.tensor import no_grad

        trainer = self.trainer
        trainer.model.train()
        trainer.pattern_schedule.step()
        if self._forward_draws:
            inputs, targets = batch
            with no_grad():
                trainer.model.loss(inputs, targets.reshape(-1), self.state)

    def publish_state(self, row: np.ndarray) -> None:
        flatten_state(self.state, row)

    def restore_state(self, row: np.ndarray) -> None:
        self.state = unflatten_state(self.state, row)


_WORKLOADS = {"classifier": _ClassifierShard, "lm": _LanguageModelShard}


def worker_main(spec: WorkerSpec, barrier_params, barrier_grads,
                stop_event, error_queue) -> None:
    """Process entry point of one shard (spawn target)."""
    arena = None
    try:
        from repro.distributed.compress import CompressedGradWriter
        from repro.distributed.faults import (corrupt_shard_block, fault_for,
                                              hang_until_stopped)
        from repro.distributed.shm import ParameterLayout, SharedArena
        from repro.execution import EngineRuntime
        from repro.tensor import dirty as _dirty

        runtime = EngineRuntime(spec.exec_config)
        workload = _WORKLOADS[spec.kind](spec, runtime)
        trainer = workload.trainer
        params = list(trainer.model.parameters())
        layout = ParameterLayout.from_parameters(params)
        arena = SharedArena.attach(spec.arena_name, layout, spec.shard_count,
                                   state_slots=spec.state_slots)
        tracker = (runtime.dirty_tracker
                   if spec.exec_config.optimizer == "sparse" else None)
        writer = None
        if tracker is not None and spec.exec_config.compress_cutover > 0:
            writer = CompressedGradWriter(layout,
                                          spec.exec_config.compress_cutover)
        w = spec.shard_index
        timeout = spec.barrier_timeout_s

        step = 0
        for _ in itertools.count():
            batches = workload.begin_epoch()
            epoch_step = 0
            for batch in batches:
                if step < spec.start_step:
                    workload.fast_forward(batch)
                    step += 1
                    epoch_step += 1
                    continue
                if (step == spec.start_step and epoch_step > 0
                        and spec.resume_state is not None):
                    # Install the coordinator's mid-epoch carry snapshot; at
                    # an epoch boundary (epoch_step == 0) begin_epoch's
                    # fresh state is already the correct one.
                    workload.restore_state(spec.resume_state)
                if not wait_on(barrier_params, stop_event, timeout):
                    return
                layout.read_params(arena.params, params)
                trainer.optimizer.zero_grad()
                fault = fault_for(spec.faults, w, step)
                if ((spec.fail_at_step is not None
                     and step == spec.fail_at_step)
                        or (fault is not None and fault.kind == "kill")):
                    raise RuntimeError(
                        f"injected worker failure at step {step}")
                if fault is not None and fault.kind == "hang":
                    # Stop participating without dying: the coordinator's
                    # barrier timeout must fire, never a deadlock.
                    hang_until_stopped(stop_event)
                    return
                loss, weight = workload.forward_backward(batch)
                if writer is not None:
                    writer.write(params, tracker, arena.grads[w])
                else:
                    layout.write_grads(params, arena.grads[w])
                layout.encode_regions(params, tracker, arena.regions[w])
                if workload.state_slots:
                    workload.publish_state(arena.states[w])
                arena.losses[w] = loss
                arena.weights[w] = weight
                if fault is not None and fault.kind == "corrupt":
                    corrupt_shard_block(arena, w)
                if tracker is not None:
                    # The recording window the optimizer's zero_grad opened
                    # stays shut while we idle at the barrier.
                    _dirty.deactivate(tracker)
                if not wait_on(barrier_grads, stop_event, timeout):
                    return
                step += 1
                epoch_step += 1
    except BaseException:
        try:
            error_queue.put((spec.shard_index, traceback.format_exc()))
        except Exception:  # pragma: no cover - queue already torn down
            pass
        # Wake the coordinator (and the sibling shards) immediately instead
        # of letting them run into the barrier timeout.
        barrier_params.abort()
        barrier_grads.abort()
    finally:
        if arena is not None:
            arena.close()
