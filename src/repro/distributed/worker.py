"""Spawn-side shard loop of the data-parallel trainer.

Each worker rebuilds the model from its config (spawn-context children share
nothing), binds it to a shard-local :class:`~repro.execution.EngineRuntime`
whose pattern pools are seeded from the shard's own ``SeedSequence`` spawn,
and then runs the step loop in lock-step with the coordinator:

1. wait at the *params-ready* barrier, then copy the coordinator's flat
   parameter vector into the local model (in place — array identities are
   stable across the whole run);
2. forward/backward on the shard's strided slice of the global batch, with
   the local loss pre-scaled by the shard's share of the global batch, so
   the coordinator's tree-sum of shard gradients *is* the global-batch-mean
   gradient;
3. publish the flat gradients, the unscaled shard loss/weight and the dirty
   regions the sparse tracker recorded, then wait at the *grads-ready*
   barrier.

The worker deliberately has no notion of "how many steps the run takes": it
loops over epochs forever (its sharded batch iterator replays the *global*
shuffle order, so every shard agrees on batch boundaries) and exits when the
coordinator sets the stop event and breaks the barriers.  A worker that dies
instead aborts both barriers, which surfaces at the coordinator as a broken
barrier plus a traceback on the error queue.
"""

from __future__ import annotations

import itertools
import threading
import traceback
from dataclasses import dataclass
from typing import Any

#: Generous per-wait timeout: a healthy coordinator releases a barrier within
#: one step; a wait this long means a peer died without aborting.
BARRIER_TIMEOUT_S = 300.0


@dataclass
class WorkerSpec:
    """Everything one worker needs, pickled once at spawn (not per step)."""

    kind: str              #: "classifier" or "lm"
    shard_index: int
    shard_count: int
    model_type: type       #: rebuilt in the worker as ``model_type(model_config)``
    model_config: Any
    data: Any              #: SyntheticMNIST dataset or SyntheticCorpus
    train_config: Any
    exec_config: Any       #: shard-local ExecutionConfig (per-shard seed)
    arena_name: str        #: coordinator's SharedArena segment
    fail_at_step: int | None = None  #: test hook: raise at this step index


def wait_on(barrier, stop_event) -> bool:
    """One barrier wait; ``False`` means the coordinator asked us to stop."""
    try:
        barrier.wait(timeout=BARRIER_TIMEOUT_S)
        return True
    except threading.BrokenBarrierError:
        if stop_event.is_set():
            return False
        raise RuntimeError(
            "synchronization barrier broken without a shutdown signal "
            "(a peer process died)") from None


class _ClassifierShard:
    """Shard-local workload: MLP classifier forward/backward."""

    def __init__(self, spec: WorkerSpec, runtime):
        from repro.data.batching import BatchIterator
        from repro.training.trainer import ClassifierTrainer

        model = spec.model_type(spec.model_config)
        self.trainer = ClassifierTrainer(model, spec.data, spec.train_config,
                                         runtime=runtime)
        self.iterator = BatchIterator(
            spec.data.train_images, spec.data.train_labels,
            spec.train_config.batch_size, rng=self.trainer.rng,
            shard_index=spec.shard_index, shard_count=spec.shard_count)
        self.global_batch = spec.train_config.batch_size

    def begin_epoch(self):
        self.trainer.pattern_schedule.plan(len(self.iterator))
        return iter(self.iterator)

    def forward_backward(self, batch) -> tuple[float, float]:
        images, labels = batch
        weight = images.shape[0] / self.global_batch
        loss = self.trainer.forward_backward(images, labels, loss_scale=weight)
        return loss, weight


class _LanguageModelShard:
    """Shard-local workload: LSTM truncated-BPTT forward/backward."""

    def __init__(self, spec: WorkerSpec, runtime):
        from repro.data.batching import BPTTBatcher
        from repro.training.lm_trainer import LanguageModelTrainer

        model = spec.model_type(spec.model_config)
        self.trainer = LanguageModelTrainer(model, spec.data, spec.train_config,
                                            runtime=runtime)
        config = spec.train_config
        self.batcher = BPTTBatcher(spec.data.train, config.batch_size,
                                   config.seq_len,
                                   shard_index=spec.shard_index,
                                   shard_count=spec.shard_count)
        self.global_batch = config.batch_size
        self.state = None

    def begin_epoch(self):
        self.trainer.pattern_schedule.plan(len(self.batcher))
        # BPTT state restarts each epoch, exactly like the in-process trainer.
        self.state = self.trainer.model.init_state(self.batcher.shard_batch_size)
        return iter(self.batcher)

    def forward_backward(self, batch) -> tuple[float, float]:
        inputs, targets = batch
        weight = inputs.shape[1] / self.global_batch
        loss, self.state = self.trainer.forward_backward(
            inputs, targets, self.state, loss_scale=weight)
        return loss, weight


_WORKLOADS = {"classifier": _ClassifierShard, "lm": _LanguageModelShard}


def worker_main(spec: WorkerSpec, barrier_params, barrier_grads,
                stop_event, error_queue) -> None:
    """Process entry point of one shard (spawn target)."""
    arena = None
    try:
        from repro.distributed.shm import ParameterLayout, SharedArena
        from repro.execution import EngineRuntime
        from repro.tensor import dirty as _dirty

        runtime = EngineRuntime(spec.exec_config)
        workload = _WORKLOADS[spec.kind](spec, runtime)
        trainer = workload.trainer
        params = list(trainer.model.parameters())
        layout = ParameterLayout.from_parameters(params)
        arena = SharedArena.attach(spec.arena_name, layout, spec.shard_count)
        tracker = (runtime.dirty_tracker
                   if spec.exec_config.optimizer == "sparse" else None)
        w = spec.shard_index

        step = 0
        for _ in itertools.count():
            batches = workload.begin_epoch()
            for batch in batches:
                if not wait_on(barrier_params, stop_event):
                    return
                layout.read_params(arena.params, params)
                trainer.optimizer.zero_grad()
                if spec.fail_at_step is not None and step == spec.fail_at_step:
                    raise RuntimeError(
                        f"injected worker failure at step {step}")
                loss, weight = workload.forward_backward(batch)
                layout.write_grads(params, arena.grads[w])
                layout.encode_regions(params, tracker, arena.regions[w])
                arena.losses[w] = loss
                arena.weights[w] = weight
                if tracker is not None:
                    # The recording window the optimizer's zero_grad opened
                    # stays shut while we idle at the barrier.
                    _dirty.deactivate(tracker)
                if not wait_on(barrier_grads, stop_event):
                    return
                step += 1
    except BaseException:
        try:
            error_queue.put((spec.shard_index, traceback.format_exc()))
        except Exception:  # pragma: no cover - queue already torn down
            pass
        # Wake the coordinator (and the sibling shards) immediately instead
        # of letting them run into the barrier timeout.
        barrier_params.abort()
        barrier_grads.abort()
    finally:
        if arena is not None:
            arena.close()
