"""Deterministic in-place tree reduce over the workers' gradient blocks.

The coordinator sums the per-worker flat gradient blocks pairwise in a fixed
binary-tree order — ``((g0+g1)+(g2+g3))+...`` — so the floating-point
rounding of the reduced gradient depends only on the shard count, never on
worker completion order.  That fixed association is what makes *same seed +
same shard count -> bit-identical histories* hold through the optimizer.

The reduce runs between the grads-ready and the params-ready barriers, when
no worker touches its block, and accumulates *into* the workers' blocks
(worker ``w`` absorbs worker ``w + stride``); every block is fully
overwritten by the workers' next backward pass, so the mutation is safe and
saves a full-size scratch buffer.  No scaling is applied here: each shard
pre-scales its loss by its share of the global batch, so the tree sum *is*
the global-batch-mean gradient.
"""

from __future__ import annotations

import numpy as np


def tree_reduce(grads: np.ndarray) -> np.ndarray:
    """Sum the rows of ``grads`` (shape ``(workers, n)``) into row 0.

    Fixed pairwise-tree order, in place; returns the reduced row-0 view.
    """
    workers = grads.shape[0]
    stride = 1
    while stride < workers:
        for w in range(0, workers - stride, 2 * stride):
            grads[w] += grads[w + stride]
        stride *= 2
    return grads[0]
