"""Deterministic fault injection for the elastic distributed trainer.

Test/bench-only: a :class:`FaultSpec` names a shard, a global step and a
fault kind, and is carried to the workers inside their
:class:`~repro.distributed.worker.WorkerSpec`.  Because shard state is fully
determined by ``(seed, shard_count, step)``, injecting the same spec twice
produces the same failure at the same point — which is what makes the
recovery paths exhaustively testable (kill-at-step-N and resume must be
bit-identical to the uninterrupted run).

Kinds
-----
``"kill"``
    The worker raises ``RuntimeError("injected worker failure at step N")``
    before computing the step, exactly like a crash between barriers.
``"hang"``
    The worker stops participating in the barriers without dying (it idles
    until the cluster's stop event), exercising the coordinator's
    barrier-timeout path — a hung worker must not deadlock the arena.
``"corrupt"``
    The worker completes the step but poisons its arena gradient block and
    loss slot with NaN, exercising the coordinator's numeric validation.

Injected faults are one-shot: after the coordinator recovers from the
failure at step N it re-arms only the specs with ``step > N``
(:func:`drop_fired`), so the replay of step N runs clean.  The persistent
``DistributedTrainer._fail_at_step`` hook (which re-fires on every respawn)
is the companion knob for driving the retry budget to exhaustion.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

FAULT_KINDS: tuple[str, ...] = ("kill", "hang", "corrupt")


@dataclass(frozen=True)
class FaultSpec:
    """Deterministically fail ``shard`` at global step ``step``."""

    shard: int
    step: int
    kind: str = "kill"

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; available: {FAULT_KINDS}")
        if self.shard < 0:
            raise ValueError(f"fault shard must be >= 0, got {self.shard}")
        if self.step < 0:
            raise ValueError(f"fault step must be >= 0, got {self.step}")


def fault_for(faults, shard: int, step: int) -> FaultSpec | None:
    """The first spec in ``faults`` aimed at this shard and step, if any."""
    for fault in faults:
        if fault.shard == shard and fault.step == step:
            return fault
    return None


def drop_fired(faults, step: int) -> tuple[FaultSpec, ...]:
    """One-shot re-arming: keep only specs strictly beyond the failed step."""
    return tuple(fault for fault in faults if fault.step > step)


def hang_until_stopped(stop_event, poll_s: float = 0.05) -> None:
    """Idle without touching the barriers until the cluster shuts down."""
    while not stop_event.is_set():
        time.sleep(poll_s)


def corrupt_shard_block(arena, shard: int) -> None:
    """Poison a shard's written gradients and loss with NaN."""
    arena.grads[shard][:] = np.nan
    arena.losses[shard] = np.nan
