"""Flat-parameter shared-memory layout for the data-parallel all-reduce.

One :class:`SharedArena` is allocated per training run (not per step): a
single ``multiprocessing.shared_memory`` segment holding

* the **parameter block** — every model parameter flattened into one
  contiguous vector in deterministic ``model.parameters()`` order, written by
  the coordinator after each optimizer step and read by every worker;
* one **gradient block per worker** — the same flat layout, written by the
  worker after its shard's backward pass and tree-reduced by the coordinator;
* per-worker **loss / weight slots** — each shard's unscaled batch loss and
  its share of the global batch, combined by the coordinator into the
  recorded global loss;
* per-worker **dirty-region blocks** — the sparse optimizer's per-parameter
  dirty regions (:mod:`repro.tensor.dirty`), encoded as fixed-size ``int64``
  records so the coordinator can union them across shards without pickling.

Nothing on the hot path is pickled: every step is a handful of
``np.copyto`` calls into preallocated views plus two barrier waits.

Region encoding: per worker and parameter, ``[kind, count, idx...]`` with
kind one of ``NONE`` (no gradient), ``EMPTY``, ``ROWS``, ``COLS`` or ``FULL``
(present but dense/unknown); ``idx`` are the dirty first-axis/last-axis
indices for ``ROWS``/``COLS``.  The block is sized for the worst case
(every index dirty), so encoding can never overflow.

Python < 3.13 note: attaching workers unregister their segment handle from
the ``multiprocessing.resource_tracker`` (:func:`attach`), otherwise the
tracker of the *first exiting worker* would unlink the segment under the
coordinator (bpo-38119); the coordinator alone owns the unlink.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

# Dirty-region kind codes (one int64 per parameter per worker, plus count).
KIND_NONE = 0    #: the shard produced no gradient for this parameter
KIND_EMPTY = 1   #: gradient allocated but never written (all exact +0.0)
KIND_ROWS = 2    #: only first-axis indices ``idx`` may be non-zero
KIND_COLS = 3    #: only last-axis indices ``idx`` may be non-zero
KIND_FULL = 4    #: dense / unknown — anything may be non-zero


@dataclass(frozen=True)
class _Slot:
    """Placement of one parameter inside the flat blocks."""

    offset: int         #: element offset into the flat parameter vector
    size: int           #: number of elements
    shape: tuple        #: original array shape
    region_offset: int  #: int64 offset of this parameter's region record
    region_slots: int   #: record length: 2 header slots + max index count


class ParameterLayout:
    """Deterministic flat mapping of a parameter list.

    Built from ``model.parameters()`` (whose order is deterministic module
    traversal), so the coordinator and every worker — each holding its own
    rebuilt copy of the model — agree on the layout without communicating.
    """

    def __init__(self, shapes: list[tuple], dtype: np.dtype):
        self.dtype = np.dtype(dtype)
        self.slots: list[_Slot] = []
        offset = 0
        region_offset = 0
        for shape in shapes:
            size = int(np.prod(shape, dtype=np.int64)) if shape else 1
            if len(shape) >= 2:
                cap = max(int(shape[0]), int(shape[-1]))
            elif len(shape) == 1:
                cap = int(shape[0])
            else:
                cap = 1
            slots = 2 + cap
            self.slots.append(_Slot(offset, size, tuple(shape),
                                    region_offset, slots))
            offset += size
            region_offset += slots
        self.total_size = offset
        self.region_size = region_offset

    @classmethod
    def from_parameters(cls, parameters) -> "ParameterLayout":
        params = list(parameters)
        if not params:
            raise ValueError("model has no parameters to lay out")
        dtypes = {param.data.dtype for param in params}
        if len(dtypes) != 1:
            raise ValueError(
                f"parameters must share one dtype for the flat layout, "
                f"got {sorted(str(d) for d in dtypes)} (bind the model "
                f"through an EngineRuntime first)")
        return cls([param.data.shape for param in params], dtypes.pop())

    # ------------------------------------------------------------------
    # parameter block
    # ------------------------------------------------------------------
    def write_params(self, parameters, flat: np.ndarray) -> None:
        """Gather every parameter into the flat vector (coordinator side)."""
        for param, slot in zip(parameters, self.slots):
            flat[slot.offset:slot.offset + slot.size] = param.data.ravel()

    def read_params(self, flat: np.ndarray, parameters) -> None:
        """Scatter the flat vector into the parameters *in place* (worker side).

        In-place ``copyto`` keeps each parameter's array identity, so
        momentum buffers, cached views and the dirty tracker's ``id()`` keys
        stay valid across steps.
        """
        for param, slot in zip(parameters, self.slots):
            np.copyto(param.data,
                      flat[slot.offset:slot.offset + slot.size].reshape(slot.shape))

    # ------------------------------------------------------------------
    # gradient block
    # ------------------------------------------------------------------
    def write_grads(self, parameters, flat: np.ndarray) -> None:
        """Gather every parameter's gradient into one worker's flat block.

        A missing gradient writes zeros — the reduce then treats the shard
        as contributing nothing for that parameter (exact ``+0.0``).
        """
        for param, slot in zip(parameters, self.slots):
            view = flat[slot.offset:slot.offset + slot.size]
            if param.grad is None:
                view[:] = 0.0
            else:
                view[:] = param.grad.ravel()

    def grad_view(self, flat: np.ndarray, index: int) -> np.ndarray:
        """Parameter ``index``'s gradient slice of a flat block, reshaped."""
        slot = self.slots[index]
        return flat[slot.offset:slot.offset + slot.size].reshape(slot.shape)

    # ------------------------------------------------------------------
    # dirty-region records
    # ------------------------------------------------------------------
    def encode_regions(self, parameters, tracker, block: np.ndarray) -> None:
        """Write one worker's per-parameter dirty regions (worker side).

        ``tracker`` is the worker runtime's
        :class:`~repro.tensor.dirty.DirtyTracker` (``None`` under the dense
        optimizer: every present gradient encodes as ``FULL``).
        """
        for param, slot in zip(parameters, self.slots):
            record = block[slot.region_offset:
                           slot.region_offset + slot.region_slots]
            grad = param.grad
            if grad is None:
                record[0] = KIND_NONE
                record[1] = 0
                continue
            region = tracker.region_of(grad) if tracker is not None else None
            if region is None or region[0] == "full":
                record[0] = KIND_FULL
                record[1] = 0
            elif region[0] == "empty":
                record[0] = KIND_EMPTY
                record[1] = 0
            else:
                idx = np.asarray(region[1], dtype=np.int64)
                record[0] = KIND_ROWS if region[0] == "rows" else KIND_COLS
                record[1] = idx.size
                record[2:2 + idx.size] = idx

    def decode_region(self, block: np.ndarray, index: int) -> tuple:
        """One worker's region record for parameter ``index``.

        Returns ``("none",)``, ``("empty",)``, ``("rows", idx)``,
        ``("cols", idx)`` or ``("full",)``.
        """
        slot = self.slots[index]
        record = block[slot.region_offset:
                       slot.region_offset + slot.region_slots]
        kind = int(record[0])
        if kind == KIND_NONE:
            return ("none",)
        if kind == KIND_EMPTY:
            return ("empty",)
        if kind == KIND_FULL:
            return ("full",)
        count = int(record[1])
        idx = np.array(record[2:2 + count])
        return ("rows" if kind == KIND_ROWS else "cols", idx)


def merge_regions(regions: list[tuple]) -> tuple:
    """Union of per-shard regions, with the same semantics as the tracker.

    A shard that produced no gradient (``("none",)``) contributes exact
    zeros to the reduce, so it behaves like ``("empty",)`` — unless *every*
    shard is ``none``, in which case the merged result is ``("none",)`` and
    the coordinator skips the parameter entirely.  Mismatched kinds promote
    to ``("full",)`` (always a sound overapproximation).
    """
    if all(region[0] == "none" for region in regions):
        return ("none",)
    merged: tuple = ("empty",)
    for region in regions:
        if region[0] in ("none", "empty"):
            continue
        if merged[0] == "empty":
            merged = region
        elif merged[0] == "full" or region[0] == "full" or merged[0] != region[0]:
            merged = ("full",)
        else:
            merged = (merged[0], np.union1d(merged[1], region[1]))
    return merged


class SharedArena:
    """The run-lifetime shared segment plus typed numpy views into it.

    The coordinator constructs it with ``create=True`` and is the only
    process that ever calls :meth:`unlink`; workers attach by name via
    :meth:`attach` and only :meth:`close` their mapping.
    """

    _LOSS_DTYPE = np.dtype(np.float64)
    _REGION_DTYPE = np.dtype(np.int64)

    def __init__(self, layout: ParameterLayout, workers: int, *,
                 state_slots: int = 0, name: str | None = None,
                 create: bool = True):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if state_slots < 0:
            raise ValueError(f"state_slots must be >= 0, got {state_slots}")
        self.layout = layout
        self.workers = workers
        self.state_slots = state_slots
        item = layout.dtype.itemsize

        def _align(offset: int) -> int:
            return (offset + 15) // 16 * 16

        self._param_bytes = 0
        self._grad_bytes = _align(self._param_bytes
                                  + layout.total_size * item)
        self._loss_bytes = _align(self._grad_bytes
                                  + workers * layout.total_size * item)
        self._region_bytes = _align(self._loss_bytes
                                    + 2 * workers * self._LOSS_DTYPE.itemsize)
        self._state_bytes = _align(
            self._region_bytes
            + workers * layout.region_size * self._REGION_DTYPE.itemsize)
        total = self._state_bytes + workers * state_slots * item
        if create:
            self._shm = shared_memory.SharedMemory(name=name, create=True,
                                                   size=max(total, 1))
        else:
            self._shm = shared_memory.SharedMemory(name=name)
            if self._shm.size < total:
                raise ValueError(
                    f"shared segment {name!r} is {self._shm.size} bytes but "
                    f"the layout needs {total} — coordinator/worker layout "
                    f"mismatch")
        self._owner = create
        self._build_views()

    def _build_views(self) -> None:
        layout, workers = self.layout, self.workers
        buf = self._shm.buf
        #: Flat parameter vector (coordinator writes, workers read).
        self.params = np.frombuffer(buf, dtype=layout.dtype,
                                    count=layout.total_size,
                                    offset=self._param_bytes)
        #: Per-worker flat gradient blocks, shape ``(workers, total_size)``.
        self.grads = np.frombuffer(buf, dtype=layout.dtype,
                                   count=workers * layout.total_size,
                                   offset=self._grad_bytes
                                   ).reshape(workers, layout.total_size)
        losses = np.frombuffer(buf, dtype=self._LOSS_DTYPE, count=2 * workers,
                               offset=self._loss_bytes)
        #: Per-worker unscaled shard loss / share of the global batch.
        self.losses = losses[:workers]
        self.weights = losses[workers:]
        #: Per-worker dirty-region records, shape ``(workers, region_size)``.
        self.regions = np.frombuffer(buf, dtype=self._REGION_DTYPE,
                                     count=workers * layout.region_size,
                                     offset=self._region_bytes
                                     ).reshape(workers, layout.region_size)
        #: Per-worker recurrent-state rows, shape ``(workers, state_slots)``
        #: (zero-width for stateless workloads).  Each LM worker publishes
        #: its flattened BPTT carry state here after every forward, so the
        #: coordinator can snapshot "state at the start of step N+1" — the
        #: piece of shard state a respawned worker cannot recompute (it
        #: depends on the parameter values of every step since the epoch
        #: started, which only existed in the arena at the time).
        self.states = np.frombuffer(buf, dtype=layout.dtype,
                                    count=workers * self.state_slots,
                                    offset=self._state_bytes
                                    ).reshape(workers, self.state_slots)

    @property
    def name(self) -> str:
        return self._shm.name

    @classmethod
    def attach(cls, name: str, layout: ParameterLayout,
               workers: int, state_slots: int = 0) -> "SharedArena":
        """Attach to the coordinator's segment from a worker process.

        The attachment is kept *out* of the resource tracker: the coordinator
        owns the segment's lifetime, and a worker registration would either
        unlink the segment under the survivors when the first worker exits or
        (spawn children share the coordinator's tracker process) cancel the
        coordinator's own registration (Python < 3.13 has no ``track=False``;
        see bpo-38119).  Registration is suppressed around the attach instead
        of unregistered after it, which keeps the shared tracker's books
        exactly as the coordinator wrote them.
        """
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _skip_shared_memory(rname, rtype):
            if rtype != "shared_memory":
                original(rname, rtype)

        resource_tracker.register = _skip_shared_memory
        try:
            return cls(layout, workers, state_slots=state_slots, name=name,
                       create=False)
        finally:
            resource_tracker.register = original

    def close(self) -> None:
        """Drop this process's mapping (safe to call twice)."""
        if self._shm is None:
            return
        # The numpy views hold exports of the segment's buffer; release them
        # before close() or the memoryview teardown raises BufferError.
        self.params = self.grads = self.losses = self.weights = None
        self.regions = self.states = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - stray external view
            pass
        self._shm = None

    def unlink(self) -> None:
        """Destroy the segment (coordinator only; safe to call twice)."""
        shm = self._shm
        if shm is None:
            return
        if self._owner:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self.close()
