"""Worker-process environment helpers shared by the bench sharder and trainer.

Both multi-process consumers in this repo — the benchmark case sharder
(:func:`repro.bench.harness._run_sharded`) and the data-parallel
:class:`~repro.distributed.trainer.DistributedTrainer` — need the same two
pieces of process hygiene, so they live here once:

* **BLAS thread domains.**  Each worker should own ``cpu_count // workers``
  BLAS threads instead of every process fighting over the full pool.  The
  thread caps must be exported in the *parent* before the spawn-context
  children are started: they inherit the environment at exec time, so their
  numpy/BLAS reads the caps on first import.  (Setting them inside the child
  would be too late — resolving the worker function already imports numpy.)
  The parent's own, already-initialized BLAS pool is unaffected.

* **Spawn context.**  Workers are started with the ``spawn`` start method —
  a fresh interpreter per worker, no forked BLAS/thread state, identical
  behaviour across platforms.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from contextlib import contextmanager
from typing import Iterator

#: Environment variables that bound a process's BLAS/threading domain.
BLAS_THREAD_VARS: tuple[str, ...] = (
    "OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS", "NUMEXPR_NUM_THREADS")


def thread_domain(workers: int) -> int:
    """BLAS threads each of ``workers`` processes should own (at least 1)."""
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return max(1, (os.cpu_count() or 1) // workers)


@contextmanager
def pinned_blas_env(workers: int) -> Iterator[int]:
    """Export per-worker BLAS thread caps for the duration of the block.

    Yields the per-worker thread count.  Start every worker process *inside*
    the block (they snapshot the environment at exec time); the previous
    values are restored on exit, so the parent process and later spawns are
    unaffected.
    """
    threads = thread_domain(workers)
    saved = {var: os.environ.get(var) for var in BLAS_THREAD_VARS}
    for var in BLAS_THREAD_VARS:
        os.environ[var] = str(threads)
    try:
        yield threads
    finally:
        for var, value in saved.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value


def spawn_context() -> mp.context.BaseContext:
    """The ``spawn`` multiprocessing context every worker is started from."""
    return mp.get_context("spawn")
