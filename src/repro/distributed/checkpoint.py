"""Atomic coordinator-side checkpoints for the elastic distributed trainer.

A checkpoint is one ``.npz`` file holding the coordinator's complete state at
a step boundary: the flat parameter block (in :class:`ParameterLayout`
order), the optimizer state (velocity buffers plus the sparse optimizer's
ever-dirty masks), the ``(seed, shard_count, step)`` triple that fully
describes every shard's RNG/batch streams, the LM schedule epoch, and the
recorded training history.  Almost nothing worker-side needs saving: a
replacement worker reconstructs its pattern pools and batch order by
deterministically fast-forwarding from ``(seed, shard_count)`` to ``step``.
The one exception is the LM workers' mid-epoch BPTT carry — it depends on
parameter vectors that no longer exist — so the coordinator's per-step
snapshot of the arena's state rows rides along as ``worker_states`` (see
:mod:`repro.distributed.worker`).

Writes are atomic and crash-safe: the file is written to a temporary name in
the same directory, flushed and fsynced, then :func:`os.replace`'d into
place, so a crash mid-write leaves at worst a stray ``.tmp`` file and never a
truncated checkpoint under the real name.  :func:`load_latest` walks the
directory newest-step-first and silently skips files that fail to *read*
(truncated/corrupt zip), falling back to the previous checkpoint; files that
read fine but are *incompatible* (version or metadata mismatch) raise
:class:`CheckpointError` — silently resuming from the wrong world would be
worse than stopping.
"""

from __future__ import annotations

import json
import os
import re
import zipfile
from pathlib import Path

import numpy as np

#: Bumped whenever the on-disk layout changes incompatibly.
CHECKPOINT_VERSION = 1

#: Checkpoints kept per directory (older ones are pruned after each write).
KEEP_CHECKPOINTS = 3

_NAME_RE = re.compile(r"^ckpt-(\d{8})\.npz$")


class CheckpointError(RuntimeError):
    """A checkpoint is missing or incompatible with the resuming trainer."""


class CheckpointCorruptError(CheckpointError):
    """A checkpoint file exists but cannot be read (truncated / corrupt)."""


def checkpoint_path(directory: str | os.PathLike, step: int) -> Path:
    return Path(directory) / f"ckpt-{step:08d}.npz"


def save_checkpoint(directory: str | os.PathLike, step: int, meta: dict,
                    arrays: dict[str, np.ndarray],
                    keep: int = KEEP_CHECKPOINTS) -> Path:
    """Atomically write one checkpoint and prune old ones.

    ``meta`` is JSON-serialised (the version stamp is added here); ``arrays``
    are stored verbatim.  Returns the final path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    final = checkpoint_path(directory, step)
    tmp = final.with_suffix(".npz.tmp")
    payload = dict(meta, version=CHECKPOINT_VERSION, step=int(step))
    with open(tmp, "wb") as handle:
        np.savez(handle, __meta__=np.array(json.dumps(payload)), **arrays)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, final)
    # fsync the directory so the rename itself survives a crash.
    dir_fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    for old_step, old_path in list_checkpoints(directory)[max(keep, 1):]:
        try:
            old_path.unlink()
        except OSError:
            pass
    return final


def list_checkpoints(directory: str | os.PathLike) -> list[tuple[int, Path]]:
    """``(step, path)`` pairs in the directory, newest step first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = []
    for entry in directory.iterdir():
        match = _NAME_RE.match(entry.name)
        if match:
            found.append((int(match.group(1)), entry))
    found.sort(key=lambda pair: pair[0], reverse=True)
    return found


def load_checkpoint(path: str | os.PathLike) -> tuple[dict, dict[str, np.ndarray]]:
    """Read one checkpoint file → ``(meta, arrays)``.

    Raises :class:`CheckpointCorruptError` when the file cannot be read and
    :class:`CheckpointError` when it reads but carries the wrong version.
    """
    try:
        with np.load(path, allow_pickle=False) as archive:
            raw = str(archive["__meta__"][()])
            arrays = {name: archive[name] for name in archive.files
                      if name != "__meta__"}
        meta = json.loads(raw)
    except (OSError, ValueError, KeyError, zipfile.BadZipFile,
            json.JSONDecodeError) as exc:
        raise CheckpointCorruptError(
            f"checkpoint {path} is unreadable (truncated or corrupt): {exc}"
        ) from exc
    if meta.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has version {meta.get('version')!r}; "
            f"this build reads version {CHECKPOINT_VERSION}")
    return meta, arrays


def load_latest(directory: str | os.PathLike
                ) -> tuple[dict, dict[str, np.ndarray], Path] | None:
    """The newest *readable* checkpoint in ``directory``, or ``None``.

    A truncated newest file (crash mid-write of a non-atomic copy, disk
    corruption) is skipped with a fallback to the previous step; an
    incompatible-but-readable file propagates its :class:`CheckpointError`.
    """
    for step, path in list_checkpoints(directory):
        try:
            meta, arrays = load_checkpoint(path)
        except CheckpointCorruptError:
            continue
        return meta, arrays, path
    return None
