"""Dirty-region gradient compression for the shared-memory arena.

The PR-6 region records already bound exactly which rows/cols of each
parameter's gradient a shard touched; everything outside a recorded region is
exact ``+0.0`` (the tracker's soundness invariant).  So when a shard's dirty
fraction is below :attr:`ExecutionConfig.compress_cutover`, the worker
transmits only the dirty rows/cols into its arena block — and the coordinator
reduces only the merged dirty region — while the arithmetic stays
bit-identical to the dense reduce (the skipped complement would only ever add
``+0.0`` in the same fixed tree order).

Both sides maintain one invariant: **a flat block (or the coordinator's
gradient buffer) always equals the full dense gradient bit-for-bit.**  A
sparse write therefore first zeroes the *stale* part of the previous step's
footprint (rows that were dirty last step but not this one), then writes the
current dirty slices; the untouched remainder is ``+0.0`` from the segment's
zero-fill (fresh ``shared_memory`` segments and ``np.zeros`` buffers start
zeroed).  Because the coordinator can no longer reduce *into* the workers'
blocks without breaking their footprint bookkeeping, compression switches to
a per-parameter non-mutating tree reduce (:class:`RegionReducer`) with the
same pairwise association; ``compress_cutover=0`` keeps PR 7's single
in-place :func:`~repro.distributed.reduce.tree_reduce`.

Compression requires the region records to be *tight*, which only the sparse
optimizer's :class:`~repro.tensor.dirty.DirtyTracker` provides — under the
dense optimizer every present gradient encodes as ``FULL`` and nothing would
ever compress, so the trainer enables this path only for
``optimizer="sparse"``.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.shm import ParameterLayout


def _reduce_readonly(views: list[np.ndarray], out: np.ndarray) -> np.ndarray:
    """Pairwise-tree sum of read-only views into ``out``.

    Exactly :func:`~repro.distributed.reduce.tree_reduce`'s association —
    ``((v0+v1)+(v2+v3))+...`` — but without mutating the sources (the arena
    blocks must stay bit-equal to the workers' gradients) and without
    stacking them into one scratch copy first: index 0's chain accumulates
    straight into ``out``, other chains materialise a temp on first use (for
    two workers this is a single ``np.add``).
    """
    workers = len(views)
    acc = list(views)
    owned = [False] * workers
    stride = 1
    while stride < workers:
        for w in range(0, workers - stride, 2 * stride):
            src = acc[w + stride]
            if owned[w]:
                acc[w] += src
            elif w == 0:
                np.add(acc[0], src, out=out)
                acc[0] = out
                owned[0] = True
            else:
                acc[w] = acc[w] + src
                owned[w] = True
        stride *= 2
    if not owned[0]:
        np.copyto(out, views[0])
    return out


def _reduce_owned(arrays: list[np.ndarray]) -> np.ndarray:
    """In-place pairwise-tree sum over caller-owned arrays (same association)."""
    workers = len(arrays)
    stride = 1
    while stride < workers:
        for w in range(0, workers - stride, 2 * stride):
            arrays[w] += arrays[w + stride]
        stride *= 2
    return arrays[0]


def compressible(region: tuple, shape: tuple, cutover: float) -> bool:
    """Whether a ``("rows"|"cols", idx)`` region is worth (and safe) slicing.

    Strictly below the cutover: a dirty fraction *at* the cutover falls back
    to the dense write, mirroring the sparse optimizer's own cutover.
    """
    if cutover <= 0.0:
        return False
    kind = region[0]
    if kind == "rows" and len(shape) >= 1:
        return len(region[1]) < shape[0] * cutover
    if kind == "cols" and len(shape) == 2:
        return len(region[1]) < shape[-1] * cutover
    return False


def _zero_footprint(view: np.ndarray, prev: tuple) -> None:
    """Zero everything the previous step's footprint may have written."""
    if prev[0] == "empty":
        return
    if prev[0] == "full":
        view[...] = 0.0
    elif prev[0] == "rows":
        view[prev[1]] = 0.0
    else:
        view[:, prev[1]] = 0.0


def _zero_stale(view: np.ndarray, prev: tuple, kind: str,
                idx: np.ndarray) -> None:
    """Zero the part of ``prev``'s footprint not covered by ``(kind, idx)``."""
    if prev[0] == "empty":
        return
    if prev[0] == "full" or prev[0] != kind:
        _zero_footprint(view, prev)
        return
    stale = np.setdiff1d(prev[1], idx)
    if stale.size:
        if kind == "rows":
            view[stale] = 0.0
        else:
            view[:, stale] = 0.0


class CompressedGradWriter:
    """Worker-side sparse writes into one flat gradient block.

    One instance per worker process; its per-parameter footprint survives
    across steps so stale rows of the (persistent) arena block are zeroed
    before each sparse write.  The block starts zero-filled, so the initial
    footprint is ``("empty",)``.
    """

    def __init__(self, layout: ParameterLayout, cutover: float):
        self.layout = layout
        self.cutover = cutover
        self._prev: list[tuple] = [("empty",)] * len(layout.slots)

    def write(self, parameters, tracker, flat: np.ndarray) -> None:
        """Like :meth:`ParameterLayout.write_grads`, but region-sliced."""
        for index, (param, slot) in enumerate(zip(parameters,
                                                  self.layout.slots)):
            view = flat[slot.offset:slot.offset + slot.size
                        ].reshape(slot.shape)
            prev = self._prev[index]
            grad = param.grad
            region = (tracker.region_of(grad)
                      if grad is not None and tracker is not None else None)
            if grad is None or (region is not None and region[0] == "empty"):
                # The dense gradient is all +0.0 — the sparse equivalent of
                # write_grads' zero fill is zeroing the stale footprint.
                _zero_footprint(view, prev)
                self._prev[index] = ("empty",)
            elif region is not None and compressible(region, slot.shape,
                                                     self.cutover):
                kind = region[0]
                idx = np.asarray(region[1], dtype=np.int64)
                _zero_stale(view, prev, kind, idx)
                if kind == "rows":
                    view[idx] = grad[idx]
                else:
                    view[:, idx] = grad[:, idx]
                self._prev[index] = (kind, idx)
            else:
                np.copyto(view, grad)
                self._prev[index] = ("full",)


class RegionReducer:
    """Coordinator-side region-restricted tree reduce.

    Replaces the in-place whole-block tree reduce when compression is
    active: per parameter, the workers' views restricted to the *merged*
    dirty region are pairwise-tree-summed — the same elementwise association
    as the dense reduce, hence bit-identical sums — and written into the
    caller's persistent gradient buffer under the same footprint bookkeeping
    as the workers' blocks (buffers must start zeroed).
    """

    def __init__(self, layout: ParameterLayout, cutover: float):
        self.layout = layout
        self.cutover = cutover
        self._prev: list[tuple] = [("empty",)] * len(layout.slots)
        self.compressed_params = 0
        self.dense_params = 0

    def reduce_into(self, buffer: np.ndarray, grads: np.ndarray, index: int,
                    region: tuple) -> None:
        """Reduce parameter ``index`` across all workers into ``buffer``.

        ``grads`` is the arena's ``(workers, total_size)`` block (read-only
        here); ``region`` is the merged region (never ``("none",)`` — the
        caller skips those parameters entirely, leaving the buffer behind a
        ``grad=None`` unchanged exactly like the dense path).
        """
        slot = self.layout.slots[index]
        prev = self._prev[index]
        if region[0] == "empty":
            _zero_footprint(buffer, prev)
            self._prev[index] = ("empty",)
            return
        views = [self.layout.grad_view(grads[w], index)
                 for w in range(grads.shape[0])]
        if compressible(region, slot.shape, self.cutover):
            kind = region[0]
            idx = np.asarray(region[1], dtype=np.int64)
            _zero_stale(buffer, prev, kind, idx)
            if kind == "rows":
                # Fancy indexing copies, so the slices are ours to mutate.
                buffer[idx] = _reduce_owned([view[idx] for view in views])
            else:
                buffer[:, idx] = _reduce_owned(
                    [view[:, idx] for view in views])
            self._prev[index] = (kind, idx)
            self.compressed_params += 1
        else:
            _reduce_readonly(views, buffer)
            self._prev[index] = ("full",)
            self.dense_params += 1
