"""Sharded data-parallel training on one machine.

The package promotes the process model the benchmark harness proved out
(spawn-context workers, one BLAS thread domain each, deterministic per-shard
seeding) into a first-class data-parallel trainer:

* :mod:`repro.distributed.procs` — the BLAS-thread-domain environment pinning
  and spawn-context helpers shared with :mod:`repro.bench.harness`;
* :mod:`repro.distributed.shm` — the flat-parameter shared-memory layout the
  gradients are all-reduced through (no pickling on the hot path);
* :mod:`repro.distributed.reduce` — the deterministic pairwise tree reduce;
* :mod:`repro.distributed.worker` — the spawn-side shard loop;
* :mod:`repro.distributed.trainer` — :class:`DistributedTrainer`, the
  coordinator that shards each batch across ``ExecutionConfig.shards``
  workers and applies one optimizer step per global batch;
* :mod:`repro.distributed.checkpoint` — atomic coordinator checkpoints for
  :meth:`DistributedTrainer.resume`;
* :mod:`repro.distributed.faults` — deterministic fault injection (test and
  bench only) driving the elastic recovery paths;
* :mod:`repro.distributed.compress` — dirty-region gradient compression in
  the arena (bit-identical to the dense reduce).

Determinism contract: same seed + same shard count -> bit-identical training
histories, and ``shards=1`` is bit-exact with the single-process trainers
(it *is* the single-process trainer — the coordinator delegates in-process).
Elastic recovery preserves the contract: a worker killed (or hung, or
corrupted) at step N is replaced by a deterministic fast-forward replay, so
the completed history matches the uninterrupted run bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.checkpoint import (
    CheckpointError,
    load_checkpoint,
    load_latest,
    save_checkpoint,
)
from repro.distributed.faults import FAULT_KINDS, FaultSpec
from repro.distributed.procs import BLAS_THREAD_VARS, pinned_blas_env, thread_domain
from repro.distributed.trainer import DistributedTrainer, WorkerFailure


def shard_seed(seed: int, shard_index: int, shard_count: int) -> int:
    """The pattern-pool seed of one shard's execution runtime.

    Spawned from a :class:`numpy.random.SeedSequence` rooted at
    ``(seed, shard_count)``, so every shard gets an independent stream, the
    whole tree is fixed by the single config seed, and changing the shard
    count changes every stream (shard layouts are distinct experiments).
    """
    if not 0 <= shard_index < shard_count:
        raise ValueError(
            f"shard_index must be in [0, {shard_count}), got {shard_index}")
    root = np.random.SeedSequence([int(seed), int(shard_count)])
    child = root.spawn(shard_count)[shard_index]
    return int(child.generate_state(1, dtype=np.uint64)[0])


__all__ = [
    "BLAS_THREAD_VARS",
    "CheckpointError",
    "DistributedTrainer",
    "FAULT_KINDS",
    "FaultSpec",
    "WorkerFailure",
    "load_checkpoint",
    "load_latest",
    "pinned_blas_env",
    "save_checkpoint",
    "shard_seed",
    "thread_domain",
]
