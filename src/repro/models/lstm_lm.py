"""Word-level LSTM language model (Section IV-C of the paper).

The model follows the standard regularised-LSTM recipe the paper's setup
implies: an embedding layer, two or three stacked LSTM layers of 1500 units,
and a vocabulary projection, with dropout applied only to the non-recurrent
connections (embedding output, between layers, and before the projection).
The dropout behaviour is injected through a
:class:`~repro.models.dropout_strategy.DropoutStrategy` so the same model can
be trained with conventional dropout, the Row-based pattern or the Tile-based
pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.device import DeviceSpec, GTX_1080TI
from repro.gpu.training_time import DropoutTimingConfig, LSTMTimingModel
from repro.heads import DenseSoftmaxHead, build_loss_head
from repro.models.dropout_strategy import DropoutStrategy, build_strategy
from repro.nn.layers import Embedding, Linear
from repro.nn.module import Module
from repro.nn.recurrent import LSTM, active_input_pattern
from repro.tensor import Tensor


@dataclass
class LSTMConfig:
    """Configuration of the LSTM language-model workload.

    Attributes
    ----------
    vocab_size:
        Vocabulary size (8800 for the dictionary task, ~10k for PTB).
    embed_size:
        Word-embedding width (the paper's setup uses the hidden width).
    hidden_size:
        LSTM hidden units per layer (1500 in the paper).
    num_layers:
        Stacked LSTM layers (2 for the dictionary task, 3 for PTB).
    drop_rates:
        Dropout rate applied to the output of each LSTM layer; the embedding
        output is dropped with ``drop_rates[0]``.  Must have ``num_layers``
        entries.
    strategy:
        Dropout strategy name: "none", "original", "row" or "tile".
    seed:
        Seed for initialisation and mask/pattern sampling.
    """

    vocab_size: int = 8800
    embed_size: int = 1500
    hidden_size: int = 1500
    num_layers: int = 2
    drop_rates: tuple[float, ...] = (0.5, 0.5)
    strategy: str = "original"
    seed: int = 0

    def __post_init__(self):
        for label, value in (("vocab_size", self.vocab_size),
                             ("embed_size", self.embed_size),
                             ("hidden_size", self.hidden_size),
                             ("num_layers", self.num_layers)):
            if value <= 0:
                raise ValueError(f"{label} must be positive, got {value}")
        if len(self.drop_rates) != self.num_layers:
            raise ValueError(
                f"drop_rates (len {len(self.drop_rates)}) must have one entry per "
                f"LSTM layer ({self.num_layers})")


class LSTMLanguageModel(Module):
    """Next-word prediction model with pluggable dropout on non-recurrent paths."""

    def __init__(self, config: LSTMConfig,
                 strategy: DropoutStrategy | None = None):
        super().__init__()
        self.config = config
        self.strategy = strategy or build_strategy(config.strategy)
        self.rng = np.random.default_rng(config.seed)

        self.embedding = Embedding(config.vocab_size, config.embed_size, rng=self.rng)
        self.input_dropout = self.strategy.activation_dropout(
            config.embed_size, config.drop_rates[0], self.rng)

        def dropout_builder(layer_index: int) -> Module:
            return self.strategy.activation_dropout(
                config.hidden_size, config.drop_rates[layer_index], self.rng)

        def recurrent_builder(layer_index: int) -> Module | None:
            # Gate-aligned DropConnect site on each cell's weight_h; inert
            # (dense) until an EngineRuntime with recurrent="tiled" binds the
            # model and enables it.
            return self.strategy.recurrent_dropout(
                config.hidden_size, config.drop_rates[layer_index], self.rng)

        self.lstm = LSTM(config.embed_size, config.hidden_size,
                         num_layers=config.num_layers, rng=self.rng,
                         dropout_builder=dropout_builder,
                         recurrent_dropout_builder=recurrent_builder)
        self.output_dropout = self.strategy.activation_dropout(
            config.hidden_size, config.drop_rates[-1], self.rng)
        self.projection = Linear(config.hidden_size, config.vocab_size, rng=self.rng)
        # The loss head owns the tail of the forward pass (projection + loss
        # execution strategy): dense by default; EngineRuntime.bind swaps in a
        # CompactSoftmaxHead for ExecutionConfig(loss_head="sampled") via
        # set_loss_head.  The consumer-GEMM compaction of the projection
        # against output_dropout's row pattern (Fig. 3(a) step 2) lives on
        # the head too — both heads apply it when the engine is bound.
        self.loss_head = DenseSoftmaxHead()

    # ------------------------------------------------------------------
    # forward / lifecycle
    # ------------------------------------------------------------------
    def _features(self, tokens: np.ndarray,
                  state: list[tuple[Tensor, Tensor]] | None,
                  ) -> tuple[Tensor, list[tuple[Tensor, Tensor]], object]:
        """Embedding → LSTM → output dropout, flattened for the loss head.

        Returns ``(features, new_state, output_pattern)``: the
        ``(seq_len * batch, hidden)`` feature matrix, the carried LSTM state
        and the row pattern ``output_dropout`` zeroed the features with when
        a consumer GEMM may compact against it (``None`` otherwise — see
        :func:`~repro.nn.recurrent.active_input_pattern`).
        """
        tokens = np.asarray(tokens)
        if tokens.ndim != 2:
            raise ValueError(f"tokens must be 2-D (seq_len, batch), got shape {tokens.shape}")
        embedded = self.embedding(tokens)
        embedded = self.input_dropout(embedded)
        outputs, new_state = self.lstm(
            embedded, state,
            input_pattern=active_input_pattern(self.input_dropout,
                                               self.config.embed_size))
        outputs = self.output_dropout(outputs)
        seq_len, batch = tokens.shape
        flat = outputs.reshape(seq_len * batch, self.config.hidden_size)
        pattern = active_input_pattern(self.output_dropout,
                                       self.config.hidden_size)
        return flat, new_state, pattern

    def forward(self, tokens: np.ndarray,
                state: list[tuple[Tensor, Tensor]] | None = None,
                ) -> tuple[Tensor, list[tuple[Tensor, Tensor]]]:
        """Compute next-word logits for a batch of sequences.

        The logits always come from the head's *exact dense* projection
        (:meth:`~repro.heads.LossHead.logits`), so evaluation — perplexity in
        particular — is never approximated, whichever head trains the model.

        Parameters
        ----------
        tokens:
            Integer array of shape ``(seq_len, batch)``.
        state:
            Optional LSTM state carried over from the previous BPTT window.

        Returns
        -------
        ``(logits, new_state)`` with ``logits`` of shape
        ``(seq_len * batch, vocab_size)``.
        """
        flat, new_state, pattern = self._features(tokens, state)
        logits = self.loss_head.logits(flat, self.projection.weight,
                                       self.projection.bias,
                                       input_pattern=pattern)
        return logits, new_state

    def loss(self, tokens: np.ndarray, targets: np.ndarray,
             state: list[tuple[Tensor, Tensor]] | None = None,
             ) -> tuple[Tensor, list[tuple[Tensor, Tensor]]]:
        """Training loss of one window, computed through the bound loss head.

        This is the entry point the trainer's hot path uses instead of
        ``forward`` + an external cross-entropy: the head may never
        materialise full-vocabulary logits (the sampled head projects only
        the kept classes).  Returns ``(loss, new_state)``.
        """
        flat, new_state, pattern = self._features(tokens, state)
        loss = self.loss_head.loss(flat, self.projection.weight,
                                   self.projection.bias,
                                   np.asarray(targets).reshape(-1),
                                   input_pattern=pattern)
        return loss, new_state

    def set_loss_head(self, kind: str, rate: float = 0.5,
                      shortlist: int = 0, clusters: int = 4) -> None:
        """Install a fresh loss head (the ``ExecutionConfig.loss_head`` hook).

        Called by :meth:`repro.execution.EngineRuntime.bind` before the
        engine attributes are applied and the pattern sites enumerated, so a
        sampled head joins the pooled schedule and the pool-wide reseeding
        like any other pattern site.  ``rate`` configures the sampled head,
        ``shortlist``/``clusters`` the adaptive one (``shortlist=0`` =
        auto-size); each head ignores the knobs it does not own.
        """
        self.loss_head = build_loss_head(kind, self.config.vocab_size,
                                         rate=rate, rng=self.rng,
                                         shortlist=shortlist,
                                         clusters=clusters)

    def init_state(self, batch: int) -> list[tuple[Tensor, Tensor]]:
        return self.lstm.init_state(batch)

    def detach_state(self, state: list[tuple[Tensor, Tensor]],
                     ) -> list[tuple[Tensor, Tensor]]:
        """Cut the BPTT graph between windows while keeping the numeric state."""
        return [(h.detach(), c.detach()) for h, c in state]

    def resample_patterns(self) -> None:
        """Draw fresh dropout patterns for the next iteration (no-op for baseline)."""
        self.strategy.resample(self)

    # ------------------------------------------------------------------
    # GPU timing integration
    # ------------------------------------------------------------------
    def timing_model(self, batch_size: int, seq_len: int,
                     device: DeviceSpec = GTX_1080TI, **kwargs) -> LSTMTimingModel:
        """Build the analytical timing model matching this network's shape."""
        return LSTMTimingModel(self.config.vocab_size, self.config.embed_size,
                               self.config.hidden_size, self.config.num_layers,
                               batch_size, seq_len, device=device, **kwargs)

    def timing_config(self) -> DropoutTimingConfig:
        return DropoutTimingConfig(mode=self.strategy.timing_mode,
                                   rates=tuple(self.config.drop_rates))

    def baseline_timing_config(self) -> DropoutTimingConfig:
        return DropoutTimingConfig(mode="baseline", rates=tuple(self.config.drop_rates))

    def __repr__(self) -> str:
        return (f"LSTMLanguageModel(vocab={self.config.vocab_size}, "
                f"hidden={self.config.hidden_size}x{self.config.num_layers}, "
                f"rates={self.config.drop_rates}, strategy={self.strategy.name})")
