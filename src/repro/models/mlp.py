"""The paper's MLP workload (Sections IV-A and IV-B).

The network is the 4-layer multilayer perceptron used for the MNIST-style
experiments: an input layer shaped by the data, two (or more) hidden ReLU
layers that are the dropout sites, and a 10-way softmax output layer.  The
dropout behaviour — conventional, Row-based pattern or Tile-based pattern —
is injected through a :class:`~repro.models.dropout_strategy.DropoutStrategy`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dropout.layers import ApproxRandomDropoutLinear
from repro.gpu.device import DeviceSpec, GTX_1080TI
from repro.gpu.training_time import DropoutTimingConfig, MLPTimingModel
from repro.models.dropout_strategy import DropoutStrategy, build_strategy
from repro.nn.layers import Linear, ReLU
from repro.nn.module import Module
from repro.tensor import Tensor


@dataclass
class MLPConfig:
    """Configuration of the MLP workload.

    Attributes
    ----------
    input_size:
        Number of input features (784 for the 28x28 digit task).
    hidden_sizes:
        Width of each hidden layer; the paper uses two hidden layers of equal
        width (64–4096).
    num_classes:
        Output classes (10 digits).
    drop_rates:
        Target dropout rate for each hidden layer's output; must have the same
        length as ``hidden_sizes``.
    strategy:
        Dropout strategy name: "none", "original", "row" or "tile".
    seed:
        Seed for weight initialisation and pattern/mask sampling.
    """

    input_size: int = 784
    hidden_sizes: tuple[int, ...] = (2048, 2048)
    num_classes: int = 10
    drop_rates: tuple[float, ...] = (0.5, 0.5)
    strategy: str = "original"
    seed: int = 0

    def __post_init__(self):
        if self.input_size <= 0 or self.num_classes <= 0:
            raise ValueError("input_size and num_classes must be positive")
        if not self.hidden_sizes:
            raise ValueError("at least one hidden layer is required")
        if len(self.drop_rates) != len(self.hidden_sizes):
            raise ValueError(
                f"drop_rates (len {len(self.drop_rates)}) must match hidden_sizes "
                f"(len {len(self.hidden_sizes)})")

    @property
    def layer_sizes(self) -> list[int]:
        """All layer widths including input and output (for the timing model)."""
        return [self.input_size, *self.hidden_sizes, self.num_classes]


class MLPClassifier(Module):
    """Feed-forward classifier with pluggable dropout.

    The forward pass chains ``linear -> ReLU -> (post-activation dropout)``
    for every hidden layer and finishes with a plain linear output layer.
    When consecutive hidden layers both use the Row-based pattern, the later
    layer receives the earlier layer's pattern so its compact GEMM can also
    skip the dropped input columns (Fig. 3(a) step 2).
    """

    def __init__(self, config: MLPConfig,
                 strategy: DropoutStrategy | None = None):
        super().__init__()
        self.config = config
        self.strategy = strategy or build_strategy(config.strategy)
        self.rng = np.random.default_rng(config.seed)

        self.hidden_linears: list[Module] = []
        self.activations: list[Module] = []
        self.post_activations: list[Module] = []

        previous = config.input_size
        for index, (width, rate) in enumerate(zip(config.hidden_sizes, config.drop_rates)):
            linear = self.strategy.hidden_linear(previous, width, rate, self.rng)
            activation = ReLU()
            post = self.strategy.post_activation(width, rate, self.rng)
            self.add_module(f"hidden{index}", linear)
            self.add_module(f"act{index}", activation)
            self.add_module(f"post{index}", post)
            self.hidden_linears.append(linear)
            self.activations.append(activation)
            self.post_activations.append(post)
            previous = width
        self.output = Linear(previous, config.num_classes, rng=self.rng)

    # ------------------------------------------------------------------
    # forward / lifecycle
    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        previous_pattern = None
        for linear, activation, post in zip(self.hidden_linears, self.activations,
                                            self.post_activations):
            if isinstance(linear, ApproxRandomDropoutLinear) and self.training:
                x = linear(x, input_pattern=previous_pattern)
                previous_pattern = linear.pattern
            else:
                x = linear(x)
                previous_pattern = None
            x = activation(x)
            x = post(x)
        return self.output(x)

    def resample_patterns(self) -> None:
        """Draw fresh dropout patterns for the next iteration (no-op for baseline)."""
        self.strategy.resample(self)

    # ------------------------------------------------------------------
    # GPU timing integration
    # ------------------------------------------------------------------
    def timing_model(self, batch_size: int,
                     device: DeviceSpec = GTX_1080TI, **kwargs) -> MLPTimingModel:
        """Build the analytical timing model matching this network's shape."""
        return MLPTimingModel(self.config.layer_sizes, batch_size, device=device,
                              **kwargs)

    def timing_config(self) -> DropoutTimingConfig:
        """Timing-model dropout configuration matching this network's strategy."""
        return DropoutTimingConfig(mode=self.strategy.timing_mode,
                                   rates=tuple(self.config.drop_rates))

    def baseline_timing_config(self) -> DropoutTimingConfig:
        """Conventional-dropout configuration with the same rates (the "old time")."""
        return DropoutTimingConfig(mode="baseline", rates=tuple(self.config.drop_rates))

    def __repr__(self) -> str:
        return (f"MLPClassifier(layers={self.config.layer_sizes}, "
                f"rates={self.config.drop_rates}, strategy={self.strategy.name})")
