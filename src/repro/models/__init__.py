"""Model builders for the paper's two workloads.

* :class:`~repro.models.mlp.MLPClassifier` — the 4-layer MLP of
  Sections IV-A/IV-B with a pluggable dropout strategy (none / conventional /
  RDP / TDP).
* :class:`~repro.models.lstm_lm.LSTMLanguageModel` — the word-level LSTM
  language model of Section IV-C, again with pluggable dropout.
"""

from repro.models.mlp import MLPClassifier, MLPConfig
from repro.models.lstm_lm import LSTMLanguageModel, LSTMConfig
from repro.models.dropout_strategy import (
    DropoutStrategy,
    NoDropout,
    ConventionalDropout,
    RowPatternDropout,
    TilePatternDropout,
    build_strategy,
)

__all__ = [
    "MLPClassifier",
    "MLPConfig",
    "LSTMLanguageModel",
    "LSTMConfig",
    "DropoutStrategy",
    "NoDropout",
    "ConventionalDropout",
    "RowPatternDropout",
    "TilePatternDropout",
    "build_strategy",
]
