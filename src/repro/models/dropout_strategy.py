"""Pluggable dropout strategies shared by the MLP and LSTM model builders.

Each experiment in the paper compares three configurations of the *same*
network: conventional random dropout ("original"), the Row-based Dropout
Pattern ("ROW") and the Tile-based Dropout Pattern ("TILE").  A
:class:`DropoutStrategy` encapsulates everything that differs between those
configurations:

* which linear-layer class the MLP uses for a hidden layer whose output is a
  dropout site (:meth:`hidden_linear`),
* which module is applied after the hidden activation
  (:meth:`post_activation` — the conventional mask layer, or identity),
* which module drops the non-recurrent activations of the LSTM
  (:meth:`activation_dropout`),
* which ``mode`` string the GPU timing model should use
  (:attr:`timing_mode`),
* how to refresh the sampled patterns at the top of each training iteration
  (:meth:`resample`).
"""

from __future__ import annotations

import numpy as np

from repro.dropout.layers import (
    ApproxBlockDropout,
    ApproxDropConnectLinear,
    ApproxRandomDropout,
    ApproxRandomDropoutLinear,
    ApproxRecurrentDropConnect,
)
from repro.nn.dropout import Dropout
from repro.nn.layers import Identity, Linear
from repro.nn.module import Module


class DropoutStrategy:
    """Base class; concrete strategies override the factory methods."""

    #: Name used in experiment tables ("original", "ROW", "TILE", "none").
    name: str = "base"
    #: Mode string consumed by :class:`repro.gpu.DropoutTimingConfig`.
    timing_mode: str = "none"

    def hidden_linear(self, in_features: int, out_features: int, rate: float,
                      rng: np.random.Generator) -> Module:
        """Linear layer for an MLP hidden layer whose output is a dropout site."""
        raise NotImplementedError

    def post_activation(self, num_units: int, rate: float,
                        rng: np.random.Generator) -> Module:
        """Module applied to the hidden activation after the nonlinearity."""
        raise NotImplementedError

    def activation_dropout(self, num_units: int, rate: float,
                           rng: np.random.Generator) -> Module:
        """Dropout module for a non-recurrent LSTM connection."""
        raise NotImplementedError

    def recurrent_dropout(self, hidden_size: int, rate: float,
                          rng: np.random.Generator) -> Module | None:
        """Structured-DropConnect site for an LSTM cell's recurrent projection.

        ``None`` (the default, used by the no-dropout and conventional
        strategies) keeps the recurrent GEMM dense — the paper drops only the
        non-recurrent connections.  The pattern strategies return a *gated*
        :class:`~repro.dropout.layers.ApproxRecurrentDropConnect` that stays
        inert until :meth:`repro.execution.EngineRuntime.bind` enables it for
        ``ExecutionConfig(recurrent="tiled")``.
        """
        return None

    def resample(self, model: Module) -> None:
        """Draw fresh patterns for every pattern-based module in ``model``.

        Conventional dropout redraws its Bernoulli mask on every forward call,
        so this is a no-op for it; the approximate strategies resample the
        ``(dp, bias)`` parameterisation once per training iteration, matching
        the paper ("in each iteration, we sample a dropout pattern").
        """
        for module in model.modules():
            resample = getattr(module, "resample", None)
            if callable(resample):
                resample()

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}(name={self.name!r})"


class NoDropout(DropoutStrategy):
    """No dropout at all (reference runs and unit tests)."""

    name = "none"
    timing_mode = "none"

    def hidden_linear(self, in_features, out_features, rate, rng) -> Module:
        return Linear(in_features, out_features, rng=rng)

    def post_activation(self, num_units, rate, rng) -> Module:
        return Identity()

    def activation_dropout(self, num_units, rate, rng) -> Module:
        return Identity()


class ConventionalDropout(DropoutStrategy):
    """The paper's baseline: i.i.d. Bernoulli masks (Srivastava et al.)."""

    name = "original"
    timing_mode = "baseline"

    def hidden_linear(self, in_features, out_features, rate, rng) -> Module:
        return Linear(in_features, out_features, rng=rng)

    def post_activation(self, num_units, rate, rng) -> Module:
        return Dropout(rate, rng=rng)

    def activation_dropout(self, num_units, rate, rng) -> Module:
        return Dropout(rate, rng=rng)


class RowPatternDropout(DropoutStrategy):
    """Row-based Dropout Pattern (RDP): regular neuron dropout, compact GEMMs."""

    name = "ROW"
    timing_mode = "row"

    def __init__(self, max_period: int | None = None, scale: bool = True):
        self.max_period = max_period
        self.scale = scale

    def hidden_linear(self, in_features, out_features, rate, rng) -> Module:
        return ApproxRandomDropoutLinear(in_features, out_features, rate,
                                         max_period=self.max_period,
                                         scale=self.scale, rng=rng)

    def post_activation(self, num_units, rate, rng) -> Module:
        # The dropped rows are already zero in the compact-GEMM output.
        return Identity()

    def activation_dropout(self, num_units, rate, rng) -> Module:
        return ApproxRandomDropout(num_units, rate, max_period=self.max_period,
                                   scale=self.scale, rng=rng)

    def recurrent_dropout(self, hidden_size, rate, rng) -> Module | None:
        return ApproxRecurrentDropConnect(hidden_size, rate,
                                          max_period=self.max_period,
                                          scale=self.scale, rng=rng)


class TilePatternDropout(DropoutStrategy):
    """Tile-based Dropout Pattern (TDP): structured DropConnect over 32x32 tiles."""

    name = "TILE"
    timing_mode = "tile"

    def __init__(self, tile: int = 32, max_period: int | None = None,
                 scale: bool = True):
        self.tile = tile
        self.max_period = max_period
        self.scale = scale

    def hidden_linear(self, in_features, out_features, rate, rng) -> Module:
        return ApproxDropConnectLinear(in_features, out_features, rate,
                                       tile=self.tile, max_period=self.max_period,
                                       scale=self.scale, rng=rng)

    def post_activation(self, num_units, rate, rng) -> Module:
        return Identity()

    def activation_dropout(self, num_units, rate, rng) -> Module:
        return ApproxBlockDropout(num_units, rate, block=self.tile,
                                  max_period=self.max_period,
                                  scale=self.scale, rng=rng)

    def recurrent_dropout(self, hidden_size, rate, rng) -> Module | None:
        return ApproxRecurrentDropConnect(hidden_size, rate, tile=self.tile,
                                          max_period=self.max_period,
                                          scale=self.scale, rng=rng)


_STRATEGIES = {
    "none": NoDropout,
    "original": ConventionalDropout,
    "baseline": ConventionalDropout,
    "conventional": ConventionalDropout,
    "row": RowPatternDropout,
    "rdp": RowPatternDropout,
    "tile": TilePatternDropout,
    "tdp": TilePatternDropout,
}


def build_strategy(name: str, **kwargs) -> DropoutStrategy:
    """Instantiate a strategy by name ("none", "original", "row", "tile")."""
    key = name.lower()
    if key not in _STRATEGIES:
        raise KeyError(f"unknown dropout strategy {name!r}; "
                       f"available: {sorted(set(_STRATEGIES))}")
    return _STRATEGIES[key](**kwargs)
