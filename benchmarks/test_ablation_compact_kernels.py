"""Ablation — actual CPU wall-clock of compact vs. dense-masked layer kernels.

The GPU speedups in the paper come from the analytical model, but the compact
forward/backward kernels in this library really do less arithmetic.  This
ablation measures their wall-clock on the CPU against the dense-masked
reference at a paper-scale layer, and also records when approximate dropout is
*not* worth it (very small layers, where the gather/scatter overhead wins).
"""

import numpy as np
import pytest

from repro.dropout import RowDropoutPattern
from repro.dropout.compact_ops import row_compact_linear
from repro.tensor import Tensor, functional as F


def _setup(out_features, in_features, batch, dp):
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((batch, in_features)))
    weight = Tensor(rng.standard_normal((out_features, in_features)), requires_grad=True)
    bias = Tensor(np.zeros(out_features), requires_grad=True)
    pattern = RowDropoutPattern(out_features, dp=dp, bias=0)
    return x, weight, bias, pattern


def test_compact_forward_faster_than_dense_large_layer(benchmark):
    x, weight, bias, pattern = _setup(2048, 2048, 128, dp=4)

    compact_time = benchmark(lambda: row_compact_linear(x, weight, bias, pattern))
    # One dense reference pass for comparison, measured crudely.
    import time
    start = time.perf_counter()
    for _ in range(5):
        F.apply_mask(F.linear(x, weight, bias), pattern.mask()[None, :])
    dense_seconds = (time.perf_counter() - start) / 5
    print(f"\ndense-masked forward ~{dense_seconds * 1e3:.2f} ms per call "
          f"(compact timed by pytest-benchmark)")
    assert compact_time is not None  # benchmark returns the function's result


def test_compact_matches_dense_at_scale():
    x, weight, bias, pattern = _setup(1024, 1024, 64, dp=4)
    compact = row_compact_linear(x, weight, bias, pattern)
    dense = F.apply_mask(F.linear(x, weight, bias), pattern.mask()[None, :])
    assert np.allclose(compact.data, dense.data)


@pytest.mark.parametrize("out_features", [64, 2048])
def test_compact_kernel_wallclock_scaling(benchmark, out_features):
    """The compact kernel's cost scales with the kept rows, not the full layer."""
    x, weight, bias, pattern = _setup(out_features, 512, 64, dp=4)
    benchmark(lambda: row_compact_linear(x, weight, bias, pattern))
