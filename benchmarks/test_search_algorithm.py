"""Algorithm 1 — distribution-search behaviour and statistical equivalence."""

from repro.experiments import run_algorithm1


def test_algorithm1_equivalence(benchmark):
    table = benchmark.pedantic(run_algorithm1,
                               kwargs={"monte_carlo_iterations": 800,
                                       "rates": (0.3, 0.5, 0.7)},
                               iterations=1, rounds=1)
    print("\n" + table.format(3))
    for row in table.rows:
        assert row.values["rate_error"] < 0.03
        assert row.values["unit_rate_error"] < 0.06
        assert row.values["effective_sub_models"] > 1.5
