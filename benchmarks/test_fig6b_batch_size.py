"""Fig. 6(b) — speedup and perplexity vs. batch size at dropout rate 0.7."""

from repro.experiments import run_fig6b


def test_fig6b_batch_size_sweep(benchmark):
    table = benchmark(run_fig6b, train_perplexity=False)
    print("\n" + table.format(3))
    speedups = table.column("speedup")
    # Paper shape: a larger batch raises the speedup (the accelerable GEMM work
    # grows relative to the fixed per-iteration costs).
    assert speedups == sorted(speedups)
    assert speedups[-1] > speedups[0]


def test_fig6b_perplexity_trend(benchmark, accuracy_scale):
    table = benchmark.pedantic(
        run_fig6b, kwargs={"scale": accuracy_scale, "batch_sizes": (20, 40)},
        iterations=1, rounds=1)
    print("\n" + table.format(3))
    small_batch, large_batch = table.rows[0], table.rows[-1]
    # Paper shape: the larger batch shares one pattern over more samples, so
    # perplexity does not improve (and typically worsens slightly).
    assert large_batch.values["row_perplexity"] >= small_batch.values["row_perplexity"] - 2.0
