"""Wall-clock acceptance benchmark for the compact pattern-execution engine.

This is the ISSUE 1 acceptance case run inside the slow test tier: at dropout
rate 0.7 on a 2048-wide layer, the cached compact path (pattern pool +
interned plans + workspace reuse) must beat the mask-based baseline on real
wall-clock time, for both the RDP (row) and TDP (tile) families.  Run with::

    PYTHONPATH=src python -m pytest -m slow benchmarks/test_bench_compact_engine.py -s
"""

import json

import pytest

from repro.bench import BenchmarkConfig, run_benchmark, write_report


@pytest.fixture(scope="module")
def acceptance_results(tmp_path_factory):
    config = BenchmarkConfig(widths=(2048,), rates=(0.7,), batch=128, steps=6,
                             repeats=2, warmup=1,
                             families=("row", "tile", "lstm_rec", "e2e",
                                       "head"))
    results = run_benchmark(config, verbose=True)
    output = tmp_path_factory.mktemp("bench") / "BENCH_compact_engine.json"
    write_report(results, config, path=str(output))
    return results, output


def test_pooled_row_engine_beats_masked_baseline_at_2048_rate07(acceptance_results):
    results, _ = acceptance_results
    (row,) = [r for r in results if r.family == "row"]
    assert row.width == 2048 and row.rate == 0.7
    assert row.speedup_pooled > 1.0, (
        f"pooled row engine not faster: {row.mode_ms}")


def test_pooled_tile_engine_beats_masked_baseline_at_2048_rate07(acceptance_results):
    results, _ = acceptance_results
    (tile,) = [r for r in results if r.family == "tile"]
    assert tile.speedup_pooled > 1.0, (
        f"pooled tile engine not faster: {tile.mode_ms}")


def test_pooled_recurrent_projection_beats_masked_baseline(acceptance_results):
    """The gate-aligned recurrent DropConnect family (PR 4): the compact
    recurrent projection must beat the dense-GEMM-plus-weight-mask baseline."""
    results, _ = acceptance_results
    (rec,) = [r for r in results if r.family == "lstm_rec"]
    assert rec.width == 2048 and rec.rate == 0.7
    assert rec.recurrent == "tiled"
    assert rec.speedup_pooled > 1.0, (
        f"pooled recurrent projection not faster: {rec.mode_ms}")


def test_sampled_loss_head_beats_dense_softmax_baseline(acceptance_results):
    """The loss-head family (ISSUE 5): the class-pruned sampled softmax —
    gather-GEMM projection plus compact cross-entropy — must beat the dense
    projection + full-vocabulary cross-entropy baseline at vocab 2048."""
    results, _ = acceptance_results
    (head,) = [r for r in results if r.family == "head"]
    assert head.width == 2048 and head.rate == 0.7
    assert head.loss_head == "sampled"
    assert head.speedup_pooled > 1.0, (
        f"pooled sampled head not faster: {head.mode_ms}")


def test_uncached_compact_also_beats_masked_baseline(acceptance_results):
    """Both compact tiers beat the dense baseline; their relative margin is
    reported by the harness but too scheduler-noise-sensitive to gate on."""
    results, _ = acceptance_results
    for result in results:
        assert result.speedup_compact > 1.0, (
            f"{result.family}: compact {result.mode_ms['compact']:.3f}ms vs "
            f"masked {result.mode_ms['masked']:.3f}ms")


def test_report_round_trips(acceptance_results):
    results, output = acceptance_results
    with open(output) as handle:
        report = json.load(handle)
    assert len(report["results"]) == len(results)
    assert all(entry["speedup_pooled"] > 1.0 for entry in report["results"])
