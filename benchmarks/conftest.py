"""Shared configuration for the benchmark harness.

Each benchmark module regenerates one of the paper's tables or figures and
prints the reproduced rows (paper value in parentheses where the paper reports
one), so running ``pytest -m slow benchmarks/ -s`` doubles as the
artefact-regeneration script.  The heavy accuracy-training parts run at the
reduced synthetic scale defined here; the speedup columns always use the
paper-scale analytical timing model.

Everything collected from this directory is marked ``slow`` so the tier-1
fast suite (plain ``pytest``, whose default ``-m "not slow"`` comes from
``pytest.ini``) deselects it.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ReducedScale


_BENCHMARK_DIR = __file__.rsplit("/", 1)[0]


def pytest_collection_modifyitems(items):
    """Mark every benchmark-directory test as slow (deselected by default).

    The hook receives the whole session's items, so filter to this directory.
    """
    for item in items:
        if str(item.fspath).startswith(_BENCHMARK_DIR):
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def accuracy_scale() -> ReducedScale:
    """Reduced training scale used by benchmarks that train for accuracy."""
    return ReducedScale(
        mlp_hidden=256, mlp_train_samples=2000, mlp_test_samples=600, mlp_epochs=12,
        mlp_batch_size=64, lstm_vocab=150, lstm_hidden=48, lstm_train_tokens=4000,
        lstm_eval_tokens=1000, lstm_epochs=1, lstm_batch_size=8, lstm_seq_len=15)
