"""Shared configuration for the benchmark harness.

Each benchmark module regenerates one of the paper's tables or figures and
prints the reproduced rows (paper value in parentheses where the paper reports
one), so running ``pytest benchmarks/ --benchmark-only -s`` doubles as the
artefact-regeneration script.  The heavy accuracy-training parts run at the
reduced synthetic scale defined here; the speedup columns always use the
paper-scale analytical timing model.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ReducedScale


@pytest.fixture(scope="session")
def accuracy_scale() -> ReducedScale:
    """Reduced training scale used by benchmarks that train for accuracy."""
    return ReducedScale(
        mlp_hidden=256, mlp_train_samples=2000, mlp_test_samples=600, mlp_epochs=12,
        mlp_batch_size=64, lstm_vocab=150, lstm_hidden=48, lstm_train_tokens=4000,
        lstm_eval_tokens=1000, lstm_epochs=1, lstm_batch_size=8, lstm_seq_len=15)
