"""Fig. 6(a) — PTB-style 3-layer LSTM: speedup and perplexity vs. dropout rate."""

from repro.experiments import run_fig6a


def test_fig6a_speedup_sweep(benchmark):
    table = benchmark(run_fig6a, train_perplexity=False)
    print("\n" + table.format(2))
    speedups = table.column("speedup")
    assert speedups == sorted(speedups)           # grows with the dropout rate
    assert speedups[0] > 1.1
    assert speedups[-1] > 1.4


def test_fig6a_perplexity(benchmark, accuracy_scale):
    table = benchmark.pedantic(
        run_fig6a, kwargs={"scale": accuracy_scale, "rates": (0.3, 0.7)},
        iterations=1, rounds=1)
    print("\n" + table.format(3))
    for row in table.rows:
        assert row.values["baseline_perplexity"] < accuracy_scale.lstm_vocab
        assert row.values["row_perplexity"] < accuracy_scale.lstm_vocab
