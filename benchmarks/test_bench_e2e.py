"""Wall-clock acceptance benchmark for the end-to-end trainer-step family.

ISSUE 2 acceptance: whole MLP and LSTM training steps driven through
``ExecutionConfig`` must be faster under the pooled engine than under the
conventional-dropout masked baseline.  Run with::

    PYTHONPATH=src python -m pytest -m slow benchmarks/test_bench_e2e.py -s
"""

import pytest

from repro.bench import BenchmarkConfig, run_benchmark


@pytest.fixture(scope="module")
def e2e_results():
    config = BenchmarkConfig(widths=(512,), rates=(0.7,), batch=64, steps=4,
                             repeats=2, warmup=1, families=("e2e",))
    return run_benchmark(config, verbose=True)


def test_e2e_produces_one_mlp_and_one_lstm_case(e2e_results):
    assert sorted(r.family for r in e2e_results) == ["e2e_lstm", "e2e_mlp"]


def test_pooled_mlp_trainer_step_beats_masked_baseline(e2e_results):
    (mlp,) = [r for r in e2e_results if r.family == "e2e_mlp"]
    assert mlp.speedup_pooled > 1.0, f"pooled MLP step not faster: {mlp.mode_ms}"


def test_pooled_lstm_trainer_step_beats_masked_baseline(e2e_results):
    (lstm,) = [r for r in e2e_results if r.family == "e2e_lstm"]
    assert lstm.recurrent == "tiled"  # the default: recurrent GEMMs compacted
    assert lstm.speedup_pooled > 1.0, f"pooled LSTM step not faster: {lstm.mode_ms}"


def test_pooled_lstm_step_records_sampled_loss_head(e2e_results):
    (lstm,) = [r for r in e2e_results if r.family == "e2e_lstm"]
    assert lstm.loss_head == "sampled"  # the default: compact loss head


def test_sampled_head_beats_dense_head_lstm_step():
    """The point of the loss-head subsystem: with the vocabulary projection +
    cross-entropy as a pattern site, the pooled LSTM step must not regress
    against the exact dense head — this gates sampled-at-least-matching-dense
    (a >5% slowdown fails); the committed BENCH report records the actual
    win.  Measurements are interleaved and best-of-two compared, exactly like
    the tiled-vs-dense recurrent gate below.
    """
    def lstm_pooled_ms(loss_head):
        config = BenchmarkConfig(widths=(512,), rates=(0.7,), batch=64,
                                 steps=4, repeats=2, warmup=1,
                                 families=("e2e",), loss_head=loss_head)
        (lstm,) = [r for r in run_benchmark(config, verbose=True)
                   if r.family == "e2e_lstm"]
        return lstm.mode_ms["pooled"]

    times = {"sampled": [], "dense": []}
    for _ in range(2):
        for loss_head in ("sampled", "dense"):
            times[loss_head].append(lstm_pooled_ms(loss_head))
    sampled, dense = min(times["sampled"]), min(times["dense"])
    assert sampled < dense * 1.05, (
        f"sampled-head pooled step ({sampled:.2f}ms) regressed more than 5% "
        f"against the dense loss head ({dense:.2f}ms)")


def test_tiled_recurrent_beats_dense_recurrent_lstm_step():
    """The point of the recurrent path: with the recurrent projection as a
    pattern site, the pooled LSTM step must not regress against the dense
    recurrent GEMM — this gates tiled-at-least-matching-dense (a >5%
    slowdown fails); the committed BENCH report records the actual win.

    The measurements are interleaved (tiled, dense, tiled, dense) and the
    best repeat per toggle compared, so a transient load spike on one run
    cannot flip the comparison; the 5% tolerance absorbs residual timer
    noise at this reduced protocol.
    """
    def lstm_pooled_ms(recurrent):
        config = BenchmarkConfig(widths=(512,), rates=(0.7,), batch=64,
                                 steps=4, repeats=2, warmup=1,
                                 families=("e2e",), recurrent=recurrent)
        (lstm,) = [r for r in run_benchmark(config, verbose=True)
                   if r.family == "e2e_lstm"]
        return lstm.mode_ms["pooled"]

    times = {"tiled": [], "dense": []}
    for _ in range(2):
        for recurrent in ("tiled", "dense"):
            times[recurrent].append(lstm_pooled_ms(recurrent))
    tiled, dense = min(times["tiled"]), min(times["dense"])
    assert tiled < dense * 1.05, (
        f"tiled recurrent pooled step ({tiled:.2f}ms) regressed more than 5% "
        f"against the dense recurrent GEMM ({dense:.2f}ms)")
