"""Ablation — TDP tile size vs. speedup (DESIGN.md design-choice ablation).

The paper fixes the tile at 32x32 to match the 32 shared-memory banks.  This
ablation sweeps the tile edge used by the timing model's bookkeeping and the
pattern granularity, showing that (a) the speedup is fairly insensitive to the
tile size at paper-scale layers, and (b) smaller tiles admit more sub-models
(diversity) at the cost of more bookkeeping.
"""

import pytest

from repro.dropout import TileDropoutPattern
from repro.gpu import DropoutTimingConfig, MLPTimingModel


@pytest.mark.parametrize("tile", [8, 16, 32, 64])
def test_tile_size_speedup(benchmark, tile):
    model = MLPTimingModel([784, 2048, 2048, 10], 128)

    def run():
        baseline = model.iteration(DropoutTimingConfig("baseline", (0.7, 0.7), tile=tile))
        accelerated = model.iteration(DropoutTimingConfig("tile", (0.7, 0.7), tile=tile))
        return accelerated.speedup_over(baseline)

    speedup = benchmark(run)
    sub_models = TileDropoutPattern(2048, 2048, dp=1, bias=0, tile=tile).num_tiles
    print(f"\ntile={tile}: speedup={speedup:.2f}, available tiles={sub_models}")
    assert speedup > 1.3


def test_smaller_tiles_give_more_sub_models():
    counts = [TileDropoutPattern(2048, 2048, dp=1, bias=0, tile=t).num_tiles
              for t in (8, 16, 32, 64)]
    assert counts == sorted(counts, reverse=True)
