"""Table II — LSTM dictionary task: speedup and next-word accuracy per rate."""

from repro.experiments import run_table2


def test_table2_speedup_sweep(benchmark):
    """Regenerate Table II's speedup rows at the paper's LSTM dimensions."""
    table = benchmark(run_table2, train_accuracy=False)
    print("\n" + table.format(2))
    row_speedups = [r.values["speedup"] for r in table.rows if "ROW" in r.label]
    tile_speedups = [r.values["speedup"] for r in table.rows if "TILE" in r.label]
    assert row_speedups == sorted(row_speedups)
    assert 1.1 < row_speedups[0] < 1.3      # ~1.18x at rate 0.3
    assert 1.3 < row_speedups[-1] < 1.8     # ~1.5x at rate 0.7
    assert all(row >= tile for row, tile in zip(row_speedups, tile_speedups))


def test_table2_accuracy(benchmark, accuracy_scale):
    """Next-word accuracy comparison at reduced scale (rate 0.5, both patterns)."""
    table = benchmark.pedantic(
        run_table2,
        kwargs={"scale": accuracy_scale, "rates": (0.5,), "patterns": ("ROW", "TILE")},
        iterations=1, rounds=1)
    print("\n" + table.format(3))
    for row in table.rows:
        assert 0.0 <= row.values["pattern_accuracy"] <= 1.0
        assert row.values["accuracy_change"] > -0.2
