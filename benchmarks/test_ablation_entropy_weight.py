"""Ablation — entropy weight λ2 in Algorithm 1 vs. diversity and rate fidelity."""

import pytest

from repro.dropout import PatternDistributionSearch


@pytest.mark.parametrize("lambda_entropy", [0.01, 0.05, 0.2])
def test_entropy_weight_tradeoff(benchmark, lambda_entropy):
    search = PatternDistributionSearch(max_period=16, lambda_rate=1 - lambda_entropy,
                                       lambda_entropy=lambda_entropy)
    result = benchmark(search.search, 0.5)
    print(f"\nlambda2={lambda_entropy}: achieved={result.achieved_rate:.3f} "
          f"entropy={result.entropy:.2f} sub-models={result.effective_sub_models():.1f}")
    # Rate fidelity degrades gracefully as the entropy weight grows...
    assert result.rate_error() < 0.05
    # ...and some diversity is always present.
    assert result.effective_sub_models() > 1.0


def test_entropy_weight_monotone_diversity():
    entropies = []
    for lambda_entropy in (0.01, 0.1, 0.3):
        search = PatternDistributionSearch(max_period=16, lambda_rate=1 - lambda_entropy,
                                           lambda_entropy=lambda_entropy)
        entropies.append(search.search(0.5).entropy)
    assert entropies == sorted(entropies)
