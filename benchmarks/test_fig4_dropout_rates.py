"""Fig. 4 — speedup and accuracy across dropout-rate pairs (RDP and TDP panels)."""

import pytest

from repro.experiments import run_fig4


@pytest.mark.parametrize("pattern", ["ROW", "TILE"])
def test_fig4_speedup_panel(benchmark, pattern):
    """Regenerate the Fig. 4 speedup series for one pattern family."""
    table = benchmark(run_fig4, pattern=pattern, train_accuracy=False)
    print("\n" + table.format(2))
    speedups = table.column("speedup")
    assert speedups[-1] > speedups[0] > 1.0          # grows with the dropout rate
    assert 1.1 < speedups[0] < 1.6                   # ~1.2-1.3x at (0.3, 0.3)
    assert 1.5 < speedups[-1] < 2.2                  # ~1.6-1.8x at (0.7, 0.7)


def test_fig4_accuracy_row_panel(benchmark, accuracy_scale):
    """Accuracy comparison (reduced scale) for the ROW panel's corner rate pairs."""
    table = benchmark.pedantic(
        run_fig4,
        kwargs={"pattern": "ROW", "scale": accuracy_scale,
                "rate_pairs": ((0.3, 0.3), (0.5, 0.5))},
        iterations=1, rounds=1)
    print("\n" + table.format(3))
    for row in table.rows:
        assert row.values["baseline_accuracy"] > 0.5
        assert row.values["accuracy_drop"] < 0.15
