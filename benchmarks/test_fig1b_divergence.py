"""Fig. 1(b) — the naive branch-skipping strawman vs. the regular patterns."""

from repro.experiments import run_fig1b


def test_fig1b_divergence_analysis(benchmark):
    table = benchmark(run_fig1b)
    print("\n" + table.format(2))
    for row in table.rows:
        # Naive conditional skipping never helps (the paper's motivation)...
        assert row.values["naive_iteration_speedup"] < 1.1
        assert row.values["naive_warp_speedup"] < 1.1
        # ...while the regular pattern realises a real fraction of the ideal.
        assert row.values["row_iteration_speedup"] > 1.2
        assert row.values["row_iteration_speedup"] <= row.values["ideal_speedup"]
