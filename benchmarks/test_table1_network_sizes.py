"""Table I — speedup and accuracy across network sizes at dropout rate 0.7."""

from repro.experiments import run_table1


def test_table1_speedup_sweep(benchmark):
    """Regenerate Table I's speedup columns at the paper's exact layer widths."""
    table = benchmark(run_table1, train_accuracy=False)
    print("\n" + table.format(2))
    row_speedups = [r.values["speedup"] for r in table.rows if "ROW" in r.label]
    tile_speedups = [r.values["speedup"] for r in table.rows if "TILE" in r.label]
    # Shape: speedup grows with network size, ROW >= TILE, ~2x at 4096x4096.
    assert row_speedups == sorted(row_speedups)
    assert all(row >= tile for row, tile in zip(row_speedups, tile_speedups))
    assert row_speedups[-1] > 1.75
    # Within 20% of every speedup the paper reports.
    for row in table.rows:
        paper = row.paper["speedup"]
        assert abs(row.values["speedup"] - paper) / paper < 0.2


def test_table1_accuracy_proxy(benchmark, accuracy_scale):
    """Accuracy-change columns from the reduced-scale proxy training."""
    table = benchmark.pedantic(
        run_table1,
        kwargs={"scale": accuracy_scale, "network_sizes": ((2048, 2048),)},
        iterations=1, rounds=1)
    print("\n" + table.format(3))
    for row in table.rows:
        assert row.values["baseline_accuracy"] > 0.5
        assert row.values["accuracy_change"] > -0.2
