"""Fig. 5 — convergence (accuracy vs. modelled GPU time), baseline vs. RDP at rate 0.5."""

from repro.experiments import run_fig5
from repro.experiments.fig5 import curves


def test_fig5_convergence_curves(benchmark, accuracy_scale):
    table = benchmark.pedantic(run_fig5, kwargs={"scale": accuracy_scale, "epochs": 2},
                               iterations=1, rounds=1)
    print("\n" + table.format(3))
    series = curves(table)
    baseline = series["baseline"]
    row = series["row_dropout_pattern"]
    assert len(baseline) == len(row) >= 1
    # Same number of updates, but the ROW curve sits at earlier modelled times
    # (each of its iterations is cheaper) — the left-shift of Fig. 5.
    for (baseline_time, _), (row_time, _) in zip(baseline, row):
        assert row_time < baseline_time
    # Final accuracies land in a comparable band.
    assert abs(baseline[-1][1] - row[-1][1]) < 0.25
