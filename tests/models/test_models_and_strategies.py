"""Tests for the MLP/LSTM model builders and the dropout strategies."""

import numpy as np
import pytest

from repro.dropout import ApproxDropConnectLinear, ApproxRandomDropoutLinear
from repro.models import (
    ConventionalDropout,
    LSTMConfig,
    LSTMLanguageModel,
    MLPClassifier,
    MLPConfig,
    NoDropout,
    RowPatternDropout,
    TilePatternDropout,
    build_strategy,
)
from repro.nn import Dropout, Linear
from repro.nn.layers import Identity
from repro.tensor import Tensor


class TestStrategyFactory:
    @pytest.mark.parametrize("name,cls", [
        ("none", NoDropout), ("original", ConventionalDropout),
        ("baseline", ConventionalDropout), ("row", RowPatternDropout),
        ("rdp", RowPatternDropout), ("tile", TilePatternDropout),
        ("tdp", TilePatternDropout),
    ])
    def test_lookup(self, name, cls):
        assert isinstance(build_strategy(name), cls)

    def test_unknown(self):
        with pytest.raises(KeyError):
            build_strategy("bogus")

    def test_timing_modes(self):
        assert build_strategy("none").timing_mode == "none"
        assert build_strategy("original").timing_mode == "baseline"
        assert build_strategy("row").timing_mode == "row"
        assert build_strategy("tile").timing_mode == "tile"

    def test_layer_factories(self, rng):
        assert isinstance(build_strategy("original").hidden_linear(4, 4, 0.5, rng), Linear)
        assert isinstance(build_strategy("original").post_activation(4, 0.5, rng), Dropout)
        assert isinstance(build_strategy("row").hidden_linear(4, 4, 0.5, rng),
                          ApproxRandomDropoutLinear)
        assert isinstance(build_strategy("tile").hidden_linear(4, 4, 0.5, rng),
                          ApproxDropConnectLinear)
        assert isinstance(build_strategy("row").post_activation(4, 0.5, rng), Identity)


class TestMLPConfig:
    def test_layer_sizes(self):
        config = MLPConfig(hidden_sizes=(128, 64), drop_rates=(0.5, 0.5))
        assert config.layer_sizes == [784, 128, 64, 10]

    def test_validation(self):
        with pytest.raises(ValueError):
            MLPConfig(hidden_sizes=(), drop_rates=())
        with pytest.raises(ValueError):
            MLPConfig(hidden_sizes=(64,), drop_rates=(0.5, 0.5))
        with pytest.raises(ValueError):
            MLPConfig(input_size=0, hidden_sizes=(64,), drop_rates=(0.5,))


class TestMLPClassifier:
    def small_config(self, strategy):
        return MLPConfig(input_size=20, hidden_sizes=(32, 16), num_classes=5,
                         drop_rates=(0.5, 0.5), strategy=strategy, seed=0)

    @pytest.mark.parametrize("strategy", ["none", "original", "row", "tile"])
    def test_forward_shape(self, strategy, rng):
        model = MLPClassifier(self.small_config(strategy))
        out = model(Tensor(rng.normal(size=(7, 20))))
        assert out.shape == (7, 5)

    @pytest.mark.parametrize("strategy", ["none", "original", "row", "tile"])
    def test_backward_populates_all_gradients(self, strategy, rng):
        model = MLPClassifier(self.small_config(strategy))
        model(Tensor(rng.normal(size=(4, 20)))).sum().backward()
        assert all(p.grad is not None for p in model.parameters())

    def test_eval_deterministic_train_stochastic(self, rng):
        model = MLPClassifier(self.small_config("original"))
        x = Tensor(rng.normal(size=(4, 20)))
        model.eval()
        assert np.allclose(model(x).data, model(x).data)
        model.train()
        model.resample_patterns()
        first = model(x).data.copy()
        # conventional dropout redraws its mask every call
        assert not np.allclose(first, model(x).data)

    def test_resample_patterns_changes_row_patterns(self, rng):
        model = MLPClassifier(self.small_config("row"))
        seen = set()
        for _ in range(20):
            model.resample_patterns()
            seen.add(tuple((l.pattern.dp, l.pattern.bias) for l in model.hidden_linears))
        assert len(seen) > 1

    def test_timing_integration(self):
        # Use paper-like widths for the timing check: tiny test layers do not
        # benefit (Table I trend), so the >1 speedup assertion needs real sizes.
        config = MLPConfig(input_size=784, hidden_sizes=(1024, 1024), num_classes=10,
                           drop_rates=(0.5, 0.5), strategy="row", seed=0)
        model = MLPClassifier(config)
        timing = model.timing_model(batch_size=128)
        timing_config = model.timing_config()
        assert timing_config.mode == "row"
        assert timing_config.rates == (0.5, 0.5)
        baseline = timing.iteration(model.baseline_timing_config())
        accelerated = timing.iteration(timing_config)
        assert accelerated.speedup_over(baseline) > 1.0

    def test_parameter_count(self):
        model = MLPClassifier(self.small_config("none"))
        expected = 20 * 32 + 32 + 32 * 16 + 16 + 16 * 5 + 5
        assert model.num_parameters() == expected

    def test_row_eval_matches_scaled_dense(self, rng):
        """In eval mode the ROW model is deterministic and uses full weights."""
        model = MLPClassifier(self.small_config("row"))
        model.eval()
        x = Tensor(rng.normal(size=(3, 20)))
        assert np.allclose(model(x).data, model(x).data)


class TestLSTMConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            LSTMConfig(num_layers=2, drop_rates=(0.5,))
        with pytest.raises(ValueError):
            LSTMConfig(vocab_size=0, drop_rates=(0.5, 0.5))


class TestLSTMLanguageModel:
    def small_config(self, strategy):
        return LSTMConfig(vocab_size=50, embed_size=12, hidden_size=16, num_layers=2,
                          drop_rates=(0.5, 0.5), strategy=strategy, seed=0)

    @pytest.mark.parametrize("strategy", ["none", "original", "row", "tile"])
    def test_forward_shapes(self, strategy, rng):
        model = LSTMLanguageModel(self.small_config(strategy))
        tokens = rng.integers(0, 50, size=(7, 3))
        logits, state = model(tokens)
        assert logits.shape == (21, 50)
        assert len(state) == 2

    def test_rejects_non_2d_tokens(self, rng):
        model = LSTMLanguageModel(self.small_config("none"))
        with pytest.raises(ValueError):
            model(rng.integers(0, 50, size=(7,)))

    def test_state_detach_cuts_graph(self, rng):
        model = LSTMLanguageModel(self.small_config("none"))
        tokens = rng.integers(0, 50, size=(5, 2))
        _, state = model(tokens)
        detached = model.detach_state(state)
        assert all(not h.requires_grad and not c.requires_grad for h, c in detached)

    def test_backward(self, rng):
        model = LSTMLanguageModel(self.small_config("row"))
        tokens = rng.integers(0, 50, size=(4, 2))
        logits, _ = model(tokens)
        logits.sum().backward()
        assert all(p.grad is not None for p in model.parameters())

    def test_timing_integration(self):
        model = LSTMLanguageModel(self.small_config("row"))
        timing = model.timing_model(batch_size=20, seq_len=35)
        baseline = timing.iteration(model.baseline_timing_config())
        accelerated = timing.iteration(model.timing_config())
        assert accelerated.speedup_over(baseline) > 1.0

    def test_resample_patterns_runs(self, rng):
        model = LSTMLanguageModel(self.small_config("row"))
        model.resample_patterns()  # must not raise
