"""Tests for the divergence model, profiler and the MLP/LSTM timing models."""

import numpy as np
import pytest

from repro.gpu import (
    DivergenceModel,
    DropoutTimingConfig,
    GTX_1080TI,
    IterationTimer,
    KernelCost,
    KernelTrace,
    LSTMTimingModel,
    MLPTimingModel,
    naive_branch_skip_speedup,
)


class TestDivergenceModel:
    def test_random_mask_gives_no_speedup(self):
        model = DivergenceModel(GTX_1080TI)
        for rate in (0.3, 0.5, 0.7):
            estimate = model.random_mask(rate)
            assert estimate.expected_speedup < 1.05
            assert estimate.fully_dropped_warp_fraction == pytest.approx(rate ** 32)

    def test_regular_mask_achieves_ideal(self):
        model = DivergenceModel(GTX_1080TI)
        estimate = model.regular_mask(0.5)
        assert estimate.expected_speedup == pytest.approx(2.0)
        assert estimate.expected_speedup == pytest.approx(estimate.ideal_speedup)

    def test_efficiency_ratio(self):
        estimate = DivergenceModel(GTX_1080TI).random_mask(0.5)
        assert estimate.efficiency < 0.55

    def test_empirical_matches_analytic_at_high_rate(self, rng):
        model = DivergenceModel(GTX_1080TI)
        analytic = model.random_mask(0.9)
        empirical = model.empirical_random_mask(0.9, num_threads=320_000, rng=rng)
        assert abs(empirical.fully_dropped_warp_fraction
                   - analytic.fully_dropped_warp_fraction) < 0.01

    def test_validation(self):
        model = DivergenceModel(GTX_1080TI)
        with pytest.raises(ValueError):
            model.random_mask(1.0)
        with pytest.raises(ValueError):
            model.empirical_random_mask(0.5, num_threads=0)
        with pytest.raises(ValueError):
            DivergenceModel(GTX_1080TI, branch_overhead=-1)

    def test_convenience_wrapper(self):
        assert naive_branch_skip_speedup(GTX_1080TI, 0.5) < 1.05


class TestKernelTraceAndTimer:
    def test_totals_and_breakdown(self):
        trace = KernelTrace(label="test")
        trace.add(KernelCost("a", flops=10, global_bytes=100, time_ms=1.0, category="gemm"))
        trace.add(KernelCost("b", flops=20, global_bytes=200, time_ms=2.0, category="dropout"))
        assert trace.total_time_ms == pytest.approx(3.0)
        assert trace.total_flops == pytest.approx(30)
        assert trace.num_kernels == 2
        assert trace.time_by_category() == {"gemm": 1.0, "dropout": 2.0}
        assert trace.time_by_name()["a"] == 1.0
        assert "test" in trace.summary()

    def test_scaled_trace(self):
        trace = KernelTrace().add(KernelCost("a", time_ms=1.0))
        assert trace.scaled(10).total_time_ms == pytest.approx(10.0)

    def test_iteration_timer(self):
        baseline = KernelTrace().add(KernelCost("a", time_ms=4.0))
        accelerated = KernelTrace().add(KernelCost("a", time_ms=2.0))
        timer = IterationTimer(baseline, accelerated)
        assert timer.speedup == pytest.approx(2.0)
        assert timer.time_saved_fraction == pytest.approx(0.5)
        assert "speedup" in timer.report()

    def test_iteration_timer_zero_time(self):
        with pytest.raises(ZeroDivisionError):
            IterationTimer(KernelTrace().add(KernelCost("a", time_ms=1.0)),
                           KernelTrace()).speedup


class TestDropoutTimingConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DropoutTimingConfig(mode="bogus")
        with pytest.raises(ValueError):
            DropoutTimingConfig(mode="row", rates=(1.5,))

    def test_keep_and_rate(self):
        config = DropoutTimingConfig(mode="row", rates=(0.3, 0.7))
        assert config.keep(0) == pytest.approx(0.7)
        assert config.keep(1) == pytest.approx(0.3)
        assert config.keep(5) == 1.0
        assert config.rate(-1) == 0.0
        assert DropoutTimingConfig(mode="none", rates=(0.5,)).keep(0) == 1.0


class TestMLPTimingModel:
    PAPER = [784, 2048, 2048, 10]

    def test_validation(self):
        with pytest.raises(ValueError):
            MLPTimingModel([784], 128)
        with pytest.raises(ValueError):
            MLPTimingModel([784, 10], 0)
        with pytest.raises(ValueError):
            MLPTimingModel([784, 10], 128, framework_overhead_ms=-1)
        with pytest.raises(ValueError):
            MLPTimingModel([784, 10], 128, tile_gemm_inefficiency=0.5)

    def test_baseline_has_dropout_kernels_and_row_does_not(self):
        model = MLPTimingModel(self.PAPER, 128)
        baseline = model.iteration(DropoutTimingConfig("baseline", (0.5, 0.5)))
        row = model.iteration(DropoutTimingConfig("row", (0.5, 0.5)))
        assert baseline.trace.time_by_category().get("dropout", 0) > 0
        row_dropout_time = row.trace.time_by_category().get("dropout", 0)
        assert row_dropout_time < baseline.trace.time_by_category()["dropout"]

    def test_speedup_increases_with_rate(self):
        model = MLPTimingModel(self.PAPER, 128)
        speedups = [model.speedup(DropoutTimingConfig("row", (rate, rate)))
                    for rate in (0.3, 0.5, 0.7)]
        assert speedups == sorted(speedups)
        assert speedups[0] > 1.05

    def test_speedup_increases_with_network_size(self):
        speedups = []
        for hidden in (1024, 2048, 4096):
            model = MLPTimingModel([784, hidden, hidden, 10], 128)
            speedups.append(model.speedup(DropoutTimingConfig("row", (0.7, 0.7))))
        assert speedups == sorted(speedups)

    def test_row_speedup_at_least_tile(self):
        model = MLPTimingModel(self.PAPER, 128)
        row = model.speedup(DropoutTimingConfig("row", (0.7, 0.7)))
        tile = model.speedup(DropoutTimingConfig("tile", (0.7, 0.7)))
        assert row >= tile > 1.0

    def test_matches_paper_table1_band(self):
        """The Table I headline numbers are matched within a loose tolerance."""
        paper = {(1024, 64): 1.27, (1024, 1024): 1.45, (2048, 2048): 1.77,
                 (4096, 4096): 2.16}
        for (h1, h2), expected in paper.items():
            model = MLPTimingModel([784, h1, h2, 10], 128)
            speedup = model.speedup(DropoutTimingConfig("row", (0.7, 0.7)))
            assert abs(speedup - expected) / expected < 0.2

    def test_naive_skip_no_speedup(self):
        model = MLPTimingModel(self.PAPER, 128)
        naive = model.speedup(DropoutTimingConfig("naive_skip", (0.7, 0.7)))
        assert 0.9 < naive < 1.1

    def test_none_mode_faster_than_baseline(self):
        model = MLPTimingModel(self.PAPER, 128)
        baseline = model.iteration(DropoutTimingConfig("baseline", (0.5, 0.5)))
        none = model.iteration(DropoutTimingConfig("none", (0.5, 0.5)))
        assert none.iteration_time_ms < baseline.iteration_time_ms

    def test_epoch_time(self):
        model = MLPTimingModel(self.PAPER, 128)
        estimate = model.iteration(DropoutTimingConfig("baseline", (0.5, 0.5)))
        assert estimate.epoch_time_ms(100) == pytest.approx(100 * estimate.iteration_time_ms)


class TestLSTMTimingModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            LSTMTimingModel(0, 10, 10, 1, 1, 1)

    def test_speedup_increases_with_rate(self):
        model = LSTMTimingModel(8800, 1500, 1500, 2, 20, 35)
        speedups = [model.speedup(DropoutTimingConfig("row", (rate, rate)))
                    for rate in (0.3, 0.5, 0.7)]
        assert speedups == sorted(speedups)
        assert 1.05 < speedups[0] < speedups[-1] < 2.0

    def test_lstm_speedup_below_mlp_at_same_rate(self):
        lstm = LSTMTimingModel(8800, 1500, 1500, 2, 20, 35)
        mlp = MLPTimingModel([784, 2048, 2048, 10], 128)
        assert (lstm.speedup(DropoutTimingConfig("row", (0.7, 0.7)))
                < mlp.speedup(DropoutTimingConfig("row", (0.7, 0.7))))

    def test_speedup_increases_with_batch_size(self):
        speedups = []
        for batch in (20, 30, 40):
            model = LSTMTimingModel(10000, 1500, 1500, 3, batch, 35)
            speedups.append(model.speedup(DropoutTimingConfig("row", (0.7,) * 3)))
        assert speedups == sorted(speedups)

    def test_row_at_least_tile(self):
        model = LSTMTimingModel(8800, 1500, 1500, 2, 20, 35)
        row = model.speedup(DropoutTimingConfig("row", (0.5, 0.5)))
        tile = model.speedup(DropoutTimingConfig("tile", (0.5, 0.5)))
        assert row >= tile > 1.0

    def test_matches_paper_table2_band(self):
        model = LSTMTimingModel(8800, 1500, 1500, 2, 20, 35)
        paper = {0.3: 1.18, 0.5: 1.47, 0.7: 1.53}
        for rate, expected in paper.items():
            speedup = model.speedup(DropoutTimingConfig("row", (rate, rate)))
            assert abs(speedup - expected) / expected < 0.2

    def test_baseline_includes_dropout_kernels(self):
        model = LSTMTimingModel(1000, 200, 200, 2, 10, 10)
        baseline = model.iteration(DropoutTimingConfig("baseline", (0.5, 0.5)))
        assert baseline.trace.time_by_category().get("dropout", 0) > 0
