"""Tests for the GPU device spec, kernel cost models and the GEMM cost model."""

import numpy as np
import pytest

from repro.dropout import RowDropoutPattern, TileDropoutPattern
from repro.gpu import GTX_1080TI, SMALL_GPU, DeviceSpec, GemmCostModel, GemmShape
from repro.gpu.kernels import (
    data_transfer_cost,
    elementwise_kernel_cost,
    mask_apply_kernel_cost,
    optimizer_update_cost,
    pattern_bookkeeping_cost,
    rng_mask_kernel_cost,
)


class TestDeviceSpec:
    def test_presets_are_sane(self):
        assert GTX_1080TI.peak_flops > 1e13  # ~11 TFLOP/s
        assert GTX_1080TI.shared_mem_banks == 32
        assert GTX_1080TI.shared_mem_per_block_kb == 48
        assert SMALL_GPU.peak_flops < GTX_1080TI.peak_flops

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceSpec(name="bad", num_sms=0, cores_per_sm=128, clock_ghz=1.0)
        with pytest.raises(ValueError):
            DeviceSpec(name="bad", num_sms=4, cores_per_sm=128, clock_ghz=1.0,
                       gemm_efficiency=1.5)

    def test_occupancy_derate_monotone(self):
        device = GTX_1080TI
        low = device.occupancy_derate(1)
        mid = device.occupancy_derate(device.num_sms)
        high = device.occupancy_derate(100 * device.num_sms)
        assert low < mid <= high == 1.0

    def test_derived_bandwidths(self):
        assert GTX_1080TI.effective_bandwidth_bytes < GTX_1080TI.global_bandwidth_bytes
        assert GTX_1080TI.kernel_launch_overhead_ms == pytest.approx(0.005)


class TestElementwiseKernels:
    def test_time_scales_with_elements(self):
        small = elementwise_kernel_cost(GTX_1080TI, 10_000)
        large = elementwise_kernel_cost(GTX_1080TI, 100_000_000)
        assert large.time_ms > small.time_ms
        assert large.global_bytes == 100_000_000 * 2 * 4

    def test_launch_overhead_floor(self):
        tiny = elementwise_kernel_cost(GTX_1080TI, 1)
        assert tiny.time_ms >= GTX_1080TI.kernel_launch_overhead_ms

    def test_negative_elements_rejected(self):
        with pytest.raises(ValueError):
            elementwise_kernel_cost(GTX_1080TI, -1)

    def test_rng_mask_is_dropout_category(self):
        cost = rng_mask_kernel_cost(GTX_1080TI, 1_000_000)
        assert cost.category == "dropout"
        assert cost.flops == 20_000_000

    def test_mask_apply_cost(self):
        cost = mask_apply_kernel_cost(GTX_1080TI, 1_000_000)
        assert cost.category == "dropout"
        assert cost.global_bytes == 1_000_000 * 3 * 4

    def test_optimizer_update_scales_with_passes(self):
        one = optimizer_update_cost(GTX_1080TI, 10_000_000, solver_passes=1)
        three = optimizer_update_cost(GTX_1080TI, 10_000_000, solver_passes=3)
        assert three.global_bytes == pytest.approx(3 * one.global_bytes)
        with pytest.raises(ValueError):
            optimizer_update_cost(GTX_1080TI, 100, solver_passes=0)

    def test_momentum_increases_update_traffic(self):
        with_momentum = optimizer_update_cost(GTX_1080TI, 1_000_000, momentum=True)
        without = optimizer_update_cost(GTX_1080TI, 1_000_000, momentum=False)
        assert with_momentum.global_bytes > without.global_bytes

    def test_data_transfer(self):
        cost = data_transfer_cost(GTX_1080TI, 784 * 128)
        assert cost.category == "transfer"
        assert cost.time_ms > 0
        with pytest.raises(ValueError):
            data_transfer_cost(GTX_1080TI, -5)

    def test_kernel_cost_scaled(self):
        cost = elementwise_kernel_cost(GTX_1080TI, 1000)
        doubled = cost.scaled(2.0)
        assert doubled.time_ms == pytest.approx(2 * cost.time_ms)
        assert doubled.flops == pytest.approx(2 * cost.flops)

    def test_pattern_bookkeeping_small(self):
        cost = pattern_bookkeeping_cost(GTX_1080TI, 64)
        gemm = GemmCostModel(GTX_1080TI).dense(GemmShape(2048, 128, 2048))
        assert cost.time_ms < gemm.time_ms


class TestGemmShape:
    def test_flops(self):
        assert GemmShape(4, 5, 6).flops == 2 * 4 * 5 * 6

    def test_validation(self):
        with pytest.raises(ValueError):
            GemmShape(0, 4, 4)

    def test_scaled_dims_never_zero(self):
        shape = GemmShape(10, 10, 10)
        assert shape.scaled_rows(0.001).m == 1
        assert shape.scaled_inner(0.001).k == 1


class TestGemmCostModel:
    def test_dense_cost_scales_with_size(self):
        model = GemmCostModel(GTX_1080TI)
        small = model.dense(GemmShape(256, 128, 256))
        large = model.dense(GemmShape(4096, 128, 4096))
        assert large.time_ms > small.time_ms
        assert large.flops > small.flops

    def test_row_compact_cheaper_than_dense(self):
        model = GemmCostModel(GTX_1080TI)
        shape = GemmShape(2048, 128, 2048)
        dense = model.dense(shape)
        pattern = RowDropoutPattern(2048, dp=4, bias=0)
        compact = model.row_compact(shape, pattern)
        assert compact.time_ms < dense.time_ms
        assert compact.flops < dense.flops

    def test_row_compact_with_input_pattern_cheaper_still(self):
        model = GemmCostModel(GTX_1080TI)
        shape = GemmShape(2048, 128, 2048)
        pattern = RowDropoutPattern(2048, dp=4, bias=0)
        input_pattern = RowDropoutPattern(2048, dp=4, bias=0)
        single = model.row_compact(shape, pattern)
        double = model.row_compact(shape, pattern, input_pattern=input_pattern)
        assert double.time_ms < single.time_ms

    def test_tile_compact_cheaper_than_dense(self):
        model = GemmCostModel(GTX_1080TI)
        shape = GemmShape(2048, 128, 2048)
        pattern = TileDropoutPattern(rows=2048, cols=2048, dp=4, bias=0, tile=32)
        assert model.tile_compact(shape, pattern).time_ms < model.dense(shape).time_ms

    def test_tile_compact_requires_matching_pattern(self):
        model = GemmCostModel(GTX_1080TI)
        with pytest.raises(ValueError):
            model.tile_compact(GemmShape(64, 16, 64),
                               TileDropoutPattern(rows=32, cols=32, dp=2, bias=0))

    def test_naive_branch_skip_gives_no_speedup(self):
        model = GemmCostModel(GTX_1080TI)
        shape = GemmShape(2048, 128, 2048)
        dense = model.dense(shape)
        for rate in (0.3, 0.5, 0.7):
            naive = model.naive_branch_skip(shape, rate)
            assert naive.time_ms > 0.9 * dense.time_ms

    def test_naive_branch_skip_validates_rate(self):
        with pytest.raises(ValueError):
            GemmCostModel(GTX_1080TI).naive_branch_skip(GemmShape(8, 8, 8), 1.0)

    def test_invalid_tile(self):
        with pytest.raises(ValueError):
            GemmCostModel(GTX_1080TI, tile=0)
        with pytest.raises(ValueError):
            GemmCostModel(GTX_1080TI, traffic_tile=0)

    def test_small_gpu_slower_than_1080ti(self):
        shape = GemmShape(1024, 128, 1024)
        fast = GemmCostModel(GTX_1080TI).dense(shape)
        slow = GemmCostModel(SMALL_GPU).dense(shape)
        assert slow.time_ms > fast.time_ms
