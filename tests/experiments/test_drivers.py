"""Smoke + shape tests for the experiment drivers (paper tables and figures)."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentTable,
    run_algorithm1,
    run_fig1b,
    run_fig4,
    run_fig5,
    run_fig6a,
    run_fig6b,
    run_table1,
    run_table2,
)
from repro.experiments.common import ReducedScale, mlp_speedup, lstm_speedup, timing_mode_for
from repro.experiments.fig5 import curves


@pytest.fixture(scope="module")
def smoke_scale():
    return ReducedScale.smoke()


class TestExperimentTable:
    def test_add_row_and_format(self):
        table = ExperimentTable(name="t", description="d", columns=["a", "b"])
        table.add_row("case1", {"a": 1.0, "b": 2.0}, paper={"a": 1.1})
        text = table.format()
        assert "case1" in text and "paper 1.100" in text
        assert table.column("a") == [1.0]
        assert len(table) == 1
        assert table.to_dict()["rows"][0]["label"] == "case1"


class TestCommonHelpers:
    def test_mlp_speedup_above_one(self):
        assert mlp_speedup((2048, 2048), (0.5, 0.5), "row") > 1.0

    def test_lstm_speedup_above_one(self):
        assert lstm_speedup(8800, 1500, 2, (0.5, 0.5), "row") > 1.0

    def test_timing_mode_mapping(self):
        assert timing_mode_for("ROW") == "row"
        assert timing_mode_for("original") == "baseline"
        with pytest.raises(KeyError):
            timing_mode_for("bogus")


class TestFig1b:
    def test_naive_skip_never_helps_and_row_does(self):
        table = run_fig1b()
        for row in table.rows:
            assert row.values["naive_iteration_speedup"] < 1.1
            assert row.values["row_iteration_speedup"] > 1.1
            assert row.values["row_iteration_speedup"] <= row.values["ideal_speedup"]


class TestAlgorithm1Driver:
    def test_rates_match_targets(self):
        table = run_algorithm1(monte_carlo_iterations=300, rates=(0.3, 0.5, 0.7))
        for row in table.rows:
            assert row.values["rate_error"] < 0.03
            assert row.values["unit_rate_error"] < 0.08
            assert row.values["effective_sub_models"] > 1.0


class TestSpeedupOnlyTables:
    def test_table1_speedup_trend(self):
        table = run_table1(train_accuracy=False)
        row_speedups = [row.values["speedup"] for row in table.rows if "ROW" in row.label]
        assert row_speedups == sorted(row_speedups)
        assert row_speedups[-1] > 1.7

    def test_fig4_speedup_trend(self):
        table = run_fig4(pattern="ROW", train_accuracy=False)
        first = table.rows[0].values["speedup"]   # (0.3, 0.3)
        last = table.rows[-1].values["speedup"]   # (0.7, 0.7)
        assert last > first > 1.0

    def test_fig4_rejects_unknown_pattern(self):
        with pytest.raises(ValueError):
            run_fig4(pattern="DIAGONAL")

    def test_table2_speedup_trend(self):
        table = run_table2(train_accuracy=False)
        row_speedups = [row.values["speedup"] for row in table.rows if "ROW" in row.label]
        assert row_speedups == sorted(row_speedups)

    def test_fig6a_speedup_trend(self):
        table = run_fig6a(train_perplexity=False)
        speedups = table.column("speedup")
        assert speedups == sorted(speedups)

    def test_fig6b_speedup_increases_with_batch(self):
        table = run_fig6b(train_perplexity=False)
        speedups = table.column("speedup")
        assert speedups == sorted(speedups)


class TestTrainedDrivers:
    """Drivers that actually train, run at smoke scale (coarse sanity only)."""

    def test_fig4_with_accuracy(self, smoke_scale):
        table = run_fig4(pattern="ROW", scale=smoke_scale, rate_pairs=((0.5, 0.5),))
        row = table.rows[0]
        assert 0.0 <= row.values["pattern_accuracy"] <= 1.0
        assert 0.0 <= row.values["baseline_accuracy"] <= 1.0

    def test_table2_with_accuracy(self, smoke_scale):
        table = run_table2(scale=smoke_scale, rates=(0.5,), patterns=("ROW",))
        row = table.rows[0]
        assert 0.0 <= row.values["pattern_accuracy"] <= 1.0

    def test_fig5_curves(self, smoke_scale):
        table = run_fig5(scale=smoke_scale)
        series = curves(table)
        assert set(series) == {"baseline", "row_dropout_pattern"}
        for points in series.values():
            assert len(points) >= 1
            assert all(time > 0 for time, _ in points)


# ----------------------------------------------------------------------
# ExecutionConfig integration: every driver under every engine mode
# ----------------------------------------------------------------------

from repro.execution import ExecutionConfig  # noqa: E402

ENGINE_MODES = ("masked", "compact", "pooled")

#: Smaller than ReducedScale.smoke(): the mode matrix trains each driver three
#: times, so the per-run cost must stay tiny.
TINY_SCALE = ReducedScale(
    mlp_hidden=32, mlp_train_samples=256, mlp_test_samples=128, mlp_epochs=1,
    mlp_batch_size=64, lstm_vocab=60, lstm_hidden=16, lstm_train_tokens=800,
    lstm_eval_tokens=300, lstm_epochs=1, lstm_batch_size=5, lstm_seq_len=8)


def _driver_matrix(execution: ExecutionConfig) -> dict:
    """Run every driver once at tiny scale under one execution config."""
    return {
        "table1": run_table1(scale=TINY_SCALE, network_sizes=((1024, 64),),
                             patterns=("ROW",), execution=execution),
        "table2": run_table2(scale=TINY_SCALE, rates=(0.5,), patterns=("ROW",),
                             execution=execution),
        "fig4": run_fig4(pattern="ROW", scale=TINY_SCALE,
                         rate_pairs=((0.5, 0.5),), execution=execution),
        "fig5": run_fig5(scale=TINY_SCALE, execution=execution),
        "fig6a": run_fig6a(scale=TINY_SCALE, rates=(0.5,), execution=execution),
        "fig6b": run_fig6b(scale=TINY_SCALE, batch_sizes=(20,),
                           execution=execution),
        "fig1b": run_fig1b(rates=(0.5,), execution=execution),
        "algorithm1": run_algorithm1(monte_carlo_iterations=100, rates=(0.5,),
                                     execution=execution),
    }


@pytest.fixture(scope="module")
def mode_matrix():
    return {mode: _driver_matrix(ExecutionConfig(mode=mode, seed=0))
            for mode in ENGINE_MODES}


class TestDriversAcrossEngineModes:
    """Satellite: every driver runs under every engine mode with identical
    row labels and columns, and engine stats land in the records."""

    def test_identical_labels_and_columns_across_modes(self, mode_matrix):
        reference = mode_matrix[ENGINE_MODES[0]]
        for mode in ENGINE_MODES[1:]:
            tables = mode_matrix[mode]
            assert set(tables) == set(reference)
            for driver, table in tables.items():
                assert table.columns == reference[driver].columns, driver
                assert ([row.label for row in table.rows]
                        == [row.label for row in reference[driver].rows]), driver

    def test_engine_stats_present_in_every_table(self, mode_matrix):
        for mode, tables in mode_matrix.items():
            for driver, table in tables.items():
                assert table.engine, f"{driver} has no engine record under {mode}"
                assert table.engine["mode"] == mode
                assert "tile_plan_cache" in table.engine
                assert "workspace" in table.engine

    def test_pooled_mode_actually_pools(self, mode_matrix):
        pooled = mode_matrix["pooled"]
        assert pooled["table1"].engine["pools"]["consumed"] > 0
        assert mode_matrix["masked"]["table1"].engine["pools"]["consumed"] == 0

    def test_engine_stats_printed_in_format(self, mode_matrix):
        text = mode_matrix["pooled"]["table1"].format()
        assert "engine:" in text
        assert "tile-plan cache" in text
        assert "workspace buffers=" in text

    def test_trained_rows_carry_engine_records(self, mode_matrix):
        table = mode_matrix["pooled"]["table1"]
        assert any(row.engine for row in table.rows)
        assert mode_matrix["pooled"]["table1"].to_dict()["engine"]


class TestPooledFloat32Drivers:
    """Acceptance: drivers run under ExecutionConfig(mode='pooled', dtype='float32')."""

    def test_mlp_and_lstm_drivers_run_float32(self):
        execution = ExecutionConfig(mode="pooled", dtype="float32", seed=0)
        table1 = run_table1(scale=TINY_SCALE, network_sizes=((1024, 64),),
                            patterns=("ROW",), execution=execution)
        table2 = run_table2(scale=TINY_SCALE, rates=(0.5,), patterns=("ROW",),
                            execution=execution)
        for table in (table1, table2):
            assert table.engine["dtype"] == "float32"
            for row in table.rows:
                accuracy = row.values.get("pattern_accuracy")
                assert accuracy is not None and 0.0 <= accuracy <= 1.0
