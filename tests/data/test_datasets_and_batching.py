"""Tests for the synthetic datasets and the batch iterators."""

import numpy as np
import pytest

from repro.data import (
    BatchIterator,
    BPTTBatcher,
    make_synthetic_corpus,
    make_synthetic_mnist,
)


class TestSyntheticMNIST:
    def test_shapes_and_ranges(self, tiny_mnist):
        assert tiny_mnist.train_images.shape == (400, 784)
        assert tiny_mnist.test_images.shape == (160, 784)
        assert tiny_mnist.num_features == 784
        assert tiny_mnist.num_classes == 10
        assert tiny_mnist.train_images.min() >= 0.0
        assert tiny_mnist.train_images.max() <= 1.0
        assert set(np.unique(tiny_mnist.train_labels)).issubset(set(range(10)))

    def test_deterministic_given_seed(self):
        a = make_synthetic_mnist(num_train=50, num_test=20, seed=3)
        b = make_synthetic_mnist(num_train=50, num_test=20, seed=3)
        assert np.array_equal(a.train_images, b.train_images)
        assert np.array_equal(a.train_labels, b.train_labels)

    def test_different_seeds_differ(self):
        a = make_synthetic_mnist(num_train=50, num_test=20, seed=3)
        b = make_synthetic_mnist(num_train=50, num_test=20, seed=4)
        assert not np.array_equal(a.train_images, b.train_images)

    def test_classes_are_distinguishable(self, tiny_mnist):
        """Nearest-class-mean classification must beat chance by a wide margin."""
        means = np.stack([
            tiny_mnist.train_images[tiny_mnist.train_labels == digit].mean(axis=0)
            for digit in range(10)])
        distances = ((tiny_mnist.test_images[:, None, :] - means[None]) ** 2).sum(axis=2)
        predictions = distances.argmin(axis=1)
        accuracy = float(np.mean(predictions == tiny_mnist.test_labels))
        assert accuracy > 0.5

    def test_label_noise_only_affects_train(self):
        clean = make_synthetic_mnist(num_train=300, num_test=100, label_noise=0.0, seed=5)
        noisy = make_synthetic_mnist(num_train=300, num_test=100, label_noise=0.3, seed=5)
        assert np.array_equal(clean.test_labels, noisy.test_labels)
        assert np.mean(clean.train_labels != noisy.train_labels) > 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            make_synthetic_mnist(num_train=0)
        with pytest.raises(ValueError):
            make_synthetic_mnist(noise=-1)
        with pytest.raises(ValueError):
            make_synthetic_mnist(label_noise=1.0)


class TestSyntheticCorpus:
    def test_shapes_and_vocab(self, tiny_corpus):
        assert tiny_corpus.vocab_size == 60
        assert tiny_corpus.train.shape == (1200,)
        assert tiny_corpus.train.min() >= 0
        assert tiny_corpus.train.max() < 60
        assert tiny_corpus.num_train_tokens == 1200

    def test_deterministic(self):
        a = make_synthetic_corpus(vocab_size=40, num_train_tokens=500, seed=2)
        b = make_synthetic_corpus(vocab_size=40, num_train_tokens=500, seed=2)
        assert np.array_equal(a.train, b.train)

    def test_zipfian_skew(self, tiny_corpus):
        counts = np.bincount(tiny_corpus.train, minlength=60)
        top_share = np.sort(counts)[::-1][:6].sum() / counts.sum()
        assert top_share > 0.25  # frequent words dominate

    def test_bigram_structure_is_learnable(self, tiny_corpus):
        """A bigram model must beat the unigram model in log-likelihood."""
        train, test = tiny_corpus.train, tiny_corpus.test
        vocab = tiny_corpus.vocab_size
        unigram = np.bincount(train, minlength=vocab) + 1.0
        unigram /= unigram.sum()
        bigram = np.ones((vocab, vocab))
        np.add.at(bigram, (train[:-1], train[1:]), 1.0)
        bigram /= bigram.sum(axis=1, keepdims=True)
        unigram_ll = np.log(unigram[test[1:]]).mean()
        bigram_ll = np.log(bigram[test[:-1], test[1:]]).mean()
        assert bigram_ll > unigram_ll + 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            make_synthetic_corpus(vocab_size=1)
        with pytest.raises(ValueError):
            make_synthetic_corpus(num_train_tokens=0)
        with pytest.raises(ValueError):
            make_synthetic_corpus(reset_probability=2.0)


class TestLargeVocabCorpus:
    """ISSUE 10: the vectorized generator scales to very large vocabularies
    (the adaptive-softmax workload) without losing its statistical shape."""

    @pytest.fixture(scope="class")
    def large_corpus(self):
        # 100k words in a fraction of a second — the per-word loops of the
        # original generator took minutes at this scale.
        return make_synthetic_corpus(vocab_size=100_000,
                                     num_train_tokens=60_000,
                                     num_valid_tokens=2_000,
                                     num_test_tokens=2_000, seed=5)

    def test_unigram_counts_follow_the_zipf_exponent(self, large_corpus):
        """The head of the empirical rank/frequency curve must fit a power
        law with slope near the generator's -1.05 exponent."""
        counts = np.bincount(large_corpus.train,
                             minlength=large_corpus.vocab_size)
        head = np.sort(counts)[::-1][:200].astype(np.float64)
        assert head.min() > 0  # the frequent head is well-sampled at 60k tokens
        ranks = np.arange(1, 201, dtype=np.float64)
        slope = np.polyfit(np.log(ranks), np.log(head), 1)[0]
        assert abs(slope - (-1.05)) < 0.15

    def test_ids_are_frequency_ordered_in_aggregate(self, large_corpus):
        """The adaptive head assumes id 0 is most frequent: the first 1000
        ids must absorb far more mass than a uniform slice would."""
        counts = np.bincount(large_corpus.train,
                             minlength=large_corpus.vocab_size)
        head_share = counts[:1000].sum() / counts.sum()
        assert head_share > 0.5

    def test_half_million_vocab_builds_quickly_and_deterministically(self):
        import time

        started = time.perf_counter()
        first = make_synthetic_corpus(vocab_size=500_000,
                                      num_train_tokens=20_000,
                                      num_valid_tokens=1_000,
                                      num_test_tokens=1_000, seed=6)
        elapsed = time.perf_counter() - started
        assert elapsed < 30.0  # seconds, not minutes (measured ~1s)
        second = make_synthetic_corpus(vocab_size=500_000,
                                       num_train_tokens=20_000,
                                       num_valid_tokens=1_000,
                                       num_test_tokens=1_000, seed=6)
        assert np.array_equal(first.train, second.train)
        assert first.train.max() < 500_000


class TestBatchIterator:
    def test_batch_shapes_and_count(self, tiny_mnist, rng):
        iterator = BatchIterator(tiny_mnist.train_images, tiny_mnist.train_labels,
                                 batch_size=64, rng=rng)
        batches = list(iterator)
        assert len(batches) == len(iterator) == 400 // 64
        for images, labels in batches:
            assert images.shape == (64, 784)
            assert labels.shape == (64,)

    def test_shuffling_changes_order(self, tiny_mnist):
        iterator = BatchIterator(tiny_mnist.train_images, tiny_mnist.train_labels,
                                 batch_size=64, rng=np.random.default_rng(0))
        first_epoch = next(iter(iterator))[1]
        second_epoch = next(iter(iterator))[1]
        assert not np.array_equal(first_epoch, second_epoch)

    def test_no_shuffle_preserves_order(self, tiny_mnist):
        iterator = BatchIterator(tiny_mnist.train_images, tiny_mnist.train_labels,
                                 batch_size=64, shuffle=False)
        images, labels = next(iter(iterator))
        assert np.array_equal(labels, tiny_mnist.train_labels[:64])

    def test_validation(self, tiny_mnist):
        with pytest.raises(ValueError):
            BatchIterator(tiny_mnist.train_images, tiny_mnist.train_labels[:10], 16)
        with pytest.raises(ValueError):
            BatchIterator(tiny_mnist.train_images, tiny_mnist.train_labels, 0)
        with pytest.raises(ValueError):
            BatchIterator(tiny_mnist.train_images[:5], tiny_mnist.train_labels[:5], 16)


class TestBatchIteratorEdgeCases:
    """Regression tests for the partial-batch / small-dataset / determinism fixes."""

    def make_data(self, n=10, features=3):
        images = np.arange(n * features, dtype=float).reshape(n, features)
        labels = np.arange(n)
        return images, labels

    def test_final_partial_batch_yielded_when_drop_last_false(self):
        images, labels = self.make_data(n=10)
        iterator = BatchIterator(images, labels, batch_size=4, shuffle=False,
                                 drop_last=False)
        batches = list(iterator)
        assert len(batches) == len(iterator) == 3
        assert [len(b[1]) for b in batches] == [4, 4, 2]
        # Every sample appears exactly once.
        seen = np.concatenate([b[1] for b in batches])
        assert np.array_equal(np.sort(seen), labels)

    def test_drop_last_true_drops_partial_batch(self):
        images, labels = self.make_data(n=10)
        iterator = BatchIterator(images, labels, batch_size=4, shuffle=False)
        batches = list(iterator)
        assert len(batches) == len(iterator) == 2
        assert all(len(b[1]) == 4 for b in batches)

    def test_exact_multiple_has_no_empty_trailing_batch(self):
        images, labels = self.make_data(n=8)
        iterator = BatchIterator(images, labels, batch_size=4, shuffle=False,
                                 drop_last=False)
        batches = list(iterator)
        assert [len(b[1]) for b in batches] == [4, 4]

    def test_batch_size_larger_than_dataset(self):
        images, labels = self.make_data(n=3)
        iterator = BatchIterator(images, labels, batch_size=16, shuffle=False,
                                 drop_last=False)
        batches = list(iterator)
        assert len(batches) == len(iterator) == 1
        assert batches[0][0].shape == (3, 3)
        # drop_last=True still refuses (it would yield zero batches).
        with pytest.raises(ValueError):
            BatchIterator(images, labels, batch_size=16, drop_last=True)

    def test_empty_dataset_rejected(self):
        images, labels = self.make_data(n=10)
        with pytest.raises(ValueError):
            BatchIterator(images[:0], labels[:0], batch_size=4, drop_last=False)

    def test_shuffle_deterministic_under_fixed_seed(self):
        images, labels = self.make_data(n=12)
        a = BatchIterator(images, labels, batch_size=4, seed=99)
        b = BatchIterator(images, labels, batch_size=4, seed=99)
        for _ in range(3):  # identical across several epochs, not just the first
            for (_, la), (_, lb) in zip(a, b):
                assert np.array_equal(la, lb)

    def test_epochs_reshuffle_but_reproducibly(self):
        images, labels = self.make_data(n=32)
        first = [lab for _, lab in BatchIterator(images, labels, 8, seed=5)]
        iterator = BatchIterator(images, labels, 8, seed=5)
        epoch1 = [lab for _, lab in iterator]
        epoch2 = [lab for _, lab in iterator]
        assert all(np.array_equal(x, y) for x, y in zip(first, epoch1))
        assert not all(np.array_equal(x, y) for x, y in zip(epoch1, epoch2))

    def test_explicit_rng_takes_precedence_over_seed(self):
        images, labels = self.make_data(n=12)
        a = BatchIterator(images, labels, 4, rng=np.random.default_rng(1), seed=7)
        b = BatchIterator(images, labels, 4, rng=np.random.default_rng(1), seed=8)
        assert all(np.array_equal(x[1], y[1]) for x, y in zip(a, b))


class TestBPTTBatcher:
    def test_window_shapes(self, tiny_corpus):
        batcher = BPTTBatcher(tiny_corpus.train, batch_size=8, seq_len=15)
        windows = list(batcher)
        assert len(windows) == len(batcher) > 0
        for inputs, targets in windows:
            assert inputs.shape == (15, 8)
            assert targets.shape == (15, 8)

    def test_targets_are_next_tokens(self, tiny_corpus):
        batcher = BPTTBatcher(tiny_corpus.train, batch_size=4, seq_len=10)
        inputs, targets = next(iter(batcher))
        # Within a column, the target at step t equals the input at step t+1.
        assert np.array_equal(inputs[1:, 0], targets[:-1, 0])

    def test_columns_are_contiguous_stream_segments(self):
        stream = np.arange(101)
        batcher = BPTTBatcher(stream, batch_size=4, seq_len=5)
        inputs, _ = next(iter(batcher))
        # Column 0 starts at position 0, column 1 at position 25, etc.
        assert inputs[0, 0] == 0
        assert inputs[0, 1] == 25

    def test_validation(self):
        with pytest.raises(ValueError):
            BPTTBatcher(np.arange(10).reshape(2, 5), 2, 2)
        with pytest.raises(ValueError):
            BPTTBatcher(np.arange(100), 0, 5)
        with pytest.raises(ValueError):
            BPTTBatcher(np.arange(3), 8, 5)


class TestShardedBatchIterator:
    """Data-parallel sharding: strided slices of an unchanged global schedule."""

    def test_shards_partition_every_global_batch(self, tiny_mnist):
        batch_size, shard_count = 32, 3
        global_batches = list(BatchIterator(
            tiny_mnist.train_images, tiny_mnist.train_labels, batch_size,
            seed=5))
        shard_batches = [list(BatchIterator(
            tiny_mnist.train_images, tiny_mnist.train_labels, batch_size,
            seed=5, shard_index=index, shard_count=shard_count))
            for index in range(shard_count)]
        for step, (images, labels) in enumerate(global_batches):
            pieces = [shard_batches[index][step] for index in range(shard_count)]
            assert sum(piece[0].shape[0] for piece in pieces) == images.shape[0]
            for index, (shard_images, shard_labels) in enumerate(pieces):
                assert np.array_equal(shard_images,
                                      images[index::shard_count])
                assert np.array_equal(shard_labels,
                                      labels[index::shard_count])

    def test_len_stays_global(self, tiny_mnist):
        sharded = BatchIterator(tiny_mnist.train_images,
                                tiny_mnist.train_labels, 32, seed=5,
                                shard_index=1, shard_count=2)
        unsharded = BatchIterator(tiny_mnist.train_images,
                                  tiny_mnist.train_labels, 32, seed=5)
        assert len(sharded) == len(unsharded)

    def test_shard_argument_validation(self, tiny_mnist):
        images, labels = tiny_mnist.train_images, tiny_mnist.train_labels
        with pytest.raises(ValueError, match="shard_count"):
            BatchIterator(images, labels, 32, shard_count=0)
        with pytest.raises(ValueError, match="shard_index"):
            BatchIterator(images, labels, 32, shard_index=2, shard_count=2)
        with pytest.raises(ValueError, match="at least one sample"):
            BatchIterator(images, labels, 2, shard_index=0, shard_count=3)

    def test_sharded_too_small_dataset_error_names_the_shard(self):
        images = np.zeros((8, 4))
        labels = np.zeros(8, dtype=int)
        with pytest.raises(ValueError, match="shard 1/2 would never receive"):
            BatchIterator(images, labels, 16, shard_index=1, shard_count=2)


class TestShardedBPTTBatcher:
    def test_shards_partition_the_global_columns(self, tiny_corpus):
        batch_size, shard_count, seq_len = 9, 3, 10
        global_windows = list(BPTTBatcher(tiny_corpus.train, batch_size,
                                          seq_len))
        shards = [BPTTBatcher(tiny_corpus.train, batch_size, seq_len,
                              shard_index=index, shard_count=shard_count)
                  for index in range(shard_count)]
        assert all(len(shard) == len(global_windows) for shard in shards)
        assert sum(shard.shard_batch_size for shard in shards) == batch_size
        for step, (inputs, targets) in enumerate(global_windows):
            for index, shard in enumerate(shards):
                shard_inputs, shard_targets = list(shard)[step]
                assert np.array_equal(shard_inputs,
                                      inputs[:, index::shard_count])
                assert np.array_equal(shard_targets,
                                      targets[:, index::shard_count])

    def test_sharded_too_short_stream_error_names_the_shard(self):
        with pytest.raises(ValueError, match="shard 0/2 would receive no"):
            BPTTBatcher(np.arange(3), 8, 5, shard_index=0, shard_count=2)

    def test_shard_validation(self, tiny_corpus):
        with pytest.raises(ValueError, match="shard_index"):
            BPTTBatcher(tiny_corpus.train, 8, 5, shard_index=-1, shard_count=2)
        with pytest.raises(ValueError, match="at least one sample"):
            BPTTBatcher(tiny_corpus.train, 2, 5, shard_index=0, shard_count=4)
