"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for reproducible tests."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_mnist():
    """A very small synthetic digit dataset shared across tests (session-scoped)."""
    from repro.data import make_synthetic_mnist

    return make_synthetic_mnist(num_train=400, num_test=160, noise=0.3,
                                prototypes_per_class=3, label_noise=0.0, seed=7)


@pytest.fixture(scope="session")
def tiny_corpus():
    """A very small synthetic language-model corpus (session-scoped)."""
    from repro.data import make_synthetic_corpus

    return make_synthetic_corpus(vocab_size=60, num_train_tokens=1200,
                                 num_valid_tokens=400, num_test_tokens=400, seed=7)
