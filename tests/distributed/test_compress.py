"""Dirty-region gradient compression codec tests (pure numpy, no spawning).

The contract under test is the bit-identity invariant both sides maintain:
a worker's arena block — and the coordinator's reduced gradient buffer —
always equals the full dense gradient bit-for-bit, no matter which region
kinds (empty/rows/cols/full) each step produces or how footprints shift
between steps.  Every scenario therefore compares against the dense
reference path (``write_grads`` + in-place ``tree_reduce``) with
``np.array_equal``, not ``allclose``.
"""

import numpy as np
import pytest

from repro.distributed.compress import (
    CompressedGradWriter,
    RegionReducer,
    _reduce_owned,
    _reduce_readonly,
    compressible,
)
from repro.distributed.reduce import tree_reduce
from repro.distributed.shm import ParameterLayout, merge_regions

SHAPES = [(6,), (4, 6), (5, 3)]
CUTOVER = 0.5


class FakeParam:
    def __init__(self, shape):
        self.data = np.zeros(shape, dtype=np.float32)
        self.grad = None


class FakeTracker:
    """region_of keyed by array identity, like the real DirtyTracker."""

    def __init__(self):
        self.regions = {}

    def set(self, array, region):
        self.regions[id(array)] = region

    def region_of(self, array):
        return self.regions.get(id(array))


def masked_grad(rng, shape, region):
    """A full dense gradient whose complement of ``region`` is exact +0.0.

    This is the tracker's soundness invariant (everything outside a recorded
    region was never written), which is exactly what licenses skipping the
    complement in the sparse transport.
    """
    grad = rng.normal(size=shape).astype(np.float32)
    if region[0] == "empty":
        return np.zeros(shape, dtype=np.float32)
    if region[0] == "rows":
        mask = np.zeros(shape, dtype=bool)
        mask[np.asarray(region[1])] = True
        grad[~mask] = 0.0
    elif region[0] == "cols":
        mask = np.zeros(shape, dtype=bool)
        mask[:, np.asarray(region[1])] = True
        grad[~mask] = 0.0
    return grad


def rows(*idx):
    return ("rows", np.asarray(idx, dtype=np.int64))


def cols(*idx):
    return ("cols", np.asarray(idx, dtype=np.int64))


class TestTreeReduceVariants:
    """The non-mutating reduces must match tree_reduce bit for bit."""

    @pytest.mark.parametrize("workers", [1, 2, 3, 4, 5, 6])
    def test_readonly_matches_and_preserves_sources(self, workers):
        rng = np.random.default_rng(workers)
        blocks = rng.normal(size=(workers, 7, 3)).astype(np.float32)
        reference = tree_reduce(blocks.copy()).copy()
        views = [blocks[w] for w in range(workers)]
        snapshot = blocks.copy()
        out = np.empty((7, 3), dtype=np.float32)
        _reduce_readonly(views, out)
        assert np.array_equal(out, reference)
        assert np.array_equal(blocks, snapshot)  # sources untouched

    @pytest.mark.parametrize("workers", [1, 2, 3, 4, 5])
    def test_owned_matches(self, workers):
        rng = np.random.default_rng(100 + workers)
        blocks = rng.normal(size=(workers, 4, 4)).astype(np.float32)
        reference = tree_reduce(blocks.copy()).copy()
        result = _reduce_owned([blocks[w].copy() for w in range(workers)])
        assert np.array_equal(result, reference)


class TestCompressible:
    def test_cutover_boundary_is_strict(self):
        # 2 of 4 rows at cutover 0.5: exactly *at* the cutover -> dense.
        assert not compressible(rows(0, 1), (4, 6), 0.5)
        assert compressible(rows(0), (4, 6), 0.5)
        # 3 of 6 cols at cutover 0.5 -> dense; just below -> compressed.
        assert not compressible(cols(0, 1, 2), (4, 6), 0.5)
        assert compressible(cols(0, 1), (4, 6), 0.5)

    def test_disabled_and_inapplicable(self):
        assert not compressible(rows(0), (4, 6), 0.0)
        assert not compressible(cols(0), (6,), 0.5)  # cols need 2-D


class Harness:
    """Drives worker writers + the region reducer against the dense path."""

    def __init__(self, workers, cutover=CUTOVER, seed=0):
        self.rng = np.random.default_rng(seed)
        self.workers = workers
        self.params = [FakeParam(shape) for shape in SHAPES]
        self.layout = ParameterLayout.from_parameters(self.params)
        self.writers = [CompressedGradWriter(self.layout, cutover)
                        for _ in range(workers)]
        self.reducer = RegionReducer(self.layout, cutover)
        # Arena blocks and the coordinator buffers start zero-filled, like
        # fresh shared-memory segments and the trainer's np.zeros buffers.
        self.blocks = np.zeros((workers, self.layout.total_size),
                               dtype=np.float32)
        self.buffers = [np.zeros(shape, dtype=np.float32)
                        for shape in SHAPES]

    def step(self, per_worker_regions):
        """One step: ``per_worker_regions[w][p]`` is a region or None (=no grad)."""
        dense_blocks = np.zeros_like(self.blocks)
        for w in range(self.workers):
            tracker = FakeTracker()
            for param, region in zip(self.params, per_worker_regions[w]):
                if region is None:
                    param.grad = None
                else:
                    param.grad = masked_grad(self.rng, param.data.shape,
                                             region)
                    tracker.set(param.grad, region)
            self.writers[w].write(self.params, tracker, self.blocks[w])
            self.layout.write_grads(self.params, dense_blocks[w])
        # Invariant: every sparse-written block equals the dense block.
        assert np.array_equal(self.blocks, dense_blocks), \
            "sparse write left a block diverging from the dense gradient"
        reduced = tree_reduce(dense_blocks)
        for index in range(len(self.params)):
            merged = merge_regions(
                [per_worker_regions[w][index] or ("none",)
                 for w in range(self.workers)])
            if merged[0] == "none":
                continue  # the coordinator skips the parameter entirely
            self.reducer.reduce_into(self.buffers[index], self.blocks,
                                     index, merged)
            assert np.array_equal(
                self.buffers[index],
                self.layout.grad_view(reduced, index)), \
                f"region reduce diverged from dense reduce on param {index}"


class TestCodecBitIdentity:
    def test_region_kinds_and_footprint_shifts(self):
        harness = Harness(workers=3)
        full, empty = ("full",), ("empty",)
        # 1: everything dense (full regions).
        harness.step([[full, full, full]] * 3)
        # 2: compressed rows on p0, mixed worker-compressed/coordinator-dense
        #    cols on p1 (merged {0,1,2} of 6 sits *at* the cutover), p2 absent.
        harness.step([[rows(0), cols(0, 2), None],
                      [rows(1), cols(1), None],
                      [empty,   cols(1), None]])
        # 3: footprint shift rows{0}->rows{4,5} (stale row zeroed), merged
        #    full on p0 via worker1; p1 back to full; p2 reappears.
        harness.step([[rows(4, 5), full, rows(0)],
                      [full,       full, rows(1)],
                      [rows(1),    full, empty]])
        # 4: kind switch full->cols on p1 (forces full-footprint zeroing);
        #    p0 and p2 go empty, collapsing their footprints to zero.
        harness.step([[empty, cols(0), empty]] * 3)
        # 5: kind switch cols->rows on p1 (mismatched kinds zero the whole
        #    previous footprint); p0 footprints shift again.
        harness.step([[rows(3), rows(1), full],
                      [rows(4), rows(1), full],
                      [empty,   rows(1), full]])
        # 6: p2 vanishes right after full (buffer keeps stale data but the
        #    coordinator skips it); p0 shrinks inside its old footprint.
        harness.step([[rows(3), empty, None]] * 3)
        # 7: everything empty -> buffers and blocks must collapse to zero.
        harness.step([[empty, empty, empty]] * 3)
        counters = (harness.reducer.compressed_params,
                    harness.reducer.dense_params)
        assert counters[0] > 0 and counters[1] > 0

    def test_two_worker_sequences_match_dense(self):
        harness = Harness(workers=2, seed=42)
        for _ in range(4):
            regions = []
            for _w in range(2):
                picks = []
                for shape in SHAPES:
                    choice = harness.rng.integers(0, 5)
                    if choice == 0:
                        picks.append(None)
                    elif choice == 1:
                        picks.append(("empty",))
                    elif choice == 2:
                        picks.append(("full",))
                    elif choice == 3:
                        count = int(harness.rng.integers(1, shape[0] + 1))
                        idx = harness.rng.choice(shape[0], size=count,
                                                 replace=False)
                        picks.append(("rows", np.sort(idx)))
                    else:
                        if len(shape) == 2:
                            count = int(harness.rng.integers(1, shape[1] + 1))
                            idx = harness.rng.choice(shape[1], size=count,
                                                     replace=False)
                            picks.append(("cols", np.sort(idx)))
                        else:
                            picks.append(("full",))
                regions.append(picks)
            harness.step(regions)

    def test_cutover_zero_always_dense(self):
        harness = Harness(workers=2, cutover=0.0)
        harness.step([[rows(0), cols(1), ("full",)]] * 2)
        assert harness.reducer.compressed_params == 0
        assert harness.reducer.dense_params == 3
