"""Elastic-recovery tests: kill/hang/corrupt faults, checkpoint resume, teardown.

Every fault run is compared bit-for-bit against an uninterrupted baseline with
the same seed and shard count — the elastic contract is that recovery is
invisible in the training history.  The trainer/optimizer/backend matrix is
covered pairwise (each trainer with each optimizer, each backend appearing
with both trainers) rather than exhaustively: the fault machinery never
branches on the combination, so pairwise coverage exercises every code path.

The LSTM runs cover both recurrent paths: ``recurrent="dense"`` and the
tiled-recurrent site.  The tiled path caches worker-side context state, but
that cache is a pure function of the current parameters and the shared
pattern schedule — a respawned worker rebuilds it deterministically during
its fast-forward, so elastic recovery is bit-identical there too (the chaos
matrix below proves it).

These spawn real worker processes, so runs are kept tiny and baselines are
shared module-wide.
"""

import os

import pytest

from repro.distributed import DistributedTrainer, FaultSpec, WorkerFailure
from repro.distributed import trainer as trainer_module
from repro.distributed.trainer import _Cluster
from repro.execution import EngineRuntime, ExecutionConfig, FaultPolicy
from repro.models.lstm_lm import LSTMConfig, LSTMLanguageModel
from repro.models.mlp import MLPClassifier, MLPConfig
from repro.training.lm_trainer import LanguageModelTrainingConfig
from repro.training.trainer import ClassifierTrainingConfig

#: Must comfortably exceed the 1-CPU worker spawn time (a few seconds), or a
#: *healthy* respawn would itself time out and eat the retry budget.
HANG_TIMEOUT_S = 15.0


def shm_entries() -> set:
    """Shared-memory segments only (``psm_*``); see test_distributed_trainer."""
    try:
        return {entry for entry in os.listdir("/dev/shm")
                if entry.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


def history_of(result):
    return (result.history.train_loss, result.history.eval_metric)


def make_mlp(tiny_mnist, *, optimizer="dense", backend="numpy",
             policy=FaultPolicy()):
    model = MLPClassifier(MLPConfig(
        input_size=tiny_mnist.num_features, hidden_sizes=(24, 24),
        num_classes=tiny_mnist.num_classes, drop_rates=(0.5, 0.5),
        strategy="row", seed=0))
    runtime = EngineRuntime(ExecutionConfig(
        mode="pooled", seed=11, shards=2, optimizer=optimizer,
        backend=backend, fault_policy=policy))
    config = ClassifierTrainingConfig(batch_size=64, epochs=2, seed=3)
    return DistributedTrainer(model, tiny_mnist, config, runtime=runtime)


def make_lstm(tiny_corpus, *, optimizer="dense", backend="numpy",
              recurrent="dense", policy=FaultPolicy()):
    model = LSTMLanguageModel(LSTMConfig(
        vocab_size=tiny_corpus.vocab_size, embed_size=12, hidden_size=16,
        num_layers=2, drop_rates=(0.5, 0.5), strategy="row", seed=0))
    runtime = EngineRuntime(ExecutionConfig(
        mode="pooled", seed=11, shards=2, optimizer=optimizer,
        backend=backend, recurrent=recurrent, fault_policy=policy))
    config = LanguageModelTrainingConfig(batch_size=10, seq_len=20, epochs=2,
                                         seed=3)
    return DistributedTrainer(model, tiny_corpus, config, runtime=runtime)


@pytest.fixture(scope="module")
def baseline_mlp_dense(tiny_mnist):
    return make_mlp(tiny_mnist).train()


@pytest.fixture(scope="module")
def baseline_mlp_sparse_stacked(tiny_mnist):
    return make_mlp(tiny_mnist, optimizer="sparse", backend="stacked").train()


@pytest.fixture(scope="module")
def baseline_lstm_dense_stacked(tiny_corpus):
    return make_lstm(tiny_corpus, backend="stacked").train()


@pytest.fixture(scope="module")
def baseline_lstm_sparse(tiny_corpus):
    return make_lstm(tiny_corpus, optimizer="sparse").train()


@pytest.fixture(scope="module")
def baseline_lstm_tiled(tiny_corpus):
    return make_lstm(tiny_corpus, recurrent="tiled").train()


class TestKillRecovery:
    """A worker killed mid-run is respawned and the history is unchanged."""

    def test_mlp_dense_numpy(self, tiny_mnist, baseline_mlp_dense):
        before = shm_entries()
        trainer = make_mlp(tiny_mnist)
        trainer._faults = (FaultSpec(shard=1, step=3, kind="kill"),)
        result = trainer.train()
        assert history_of(result) == history_of(baseline_mlp_dense)
        stats = result.engine_stats["distributed"]
        assert stats["recoveries"] == 1
        assert stats["steps"] == result.iterations
        assert shm_entries() <= before

    def test_lstm_sparse_numpy_compressed(self, tiny_corpus,
                                          baseline_lstm_sparse):
        # sparse + default compress_cutover: the respawned worker's
        # compressed writer restarts with a clean footprint over the fresh
        # (zero-filled) arena, so recovery must stay bit-identical even with
        # region-sliced gradient transport.
        trainer = make_lstm(tiny_corpus, optimizer="sparse")
        trainer._faults = (FaultSpec(shard=0, step=2, kind="kill"),)
        result = trainer.train()
        assert history_of(result) == history_of(baseline_lstm_sparse)
        assert result.engine_stats["distributed"]["recoveries"] == 1

    def test_lstm_tiled_recurrent(self, tiny_corpus, baseline_lstm_tiled):
        # The tiled-recurrent site's worker-side context cache is rebuilt
        # deterministically by the respawned worker's fast-forward, so the
        # recovery stays bit-identical on the tiled path too.
        trainer = make_lstm(tiny_corpus, recurrent="tiled")
        trainer._faults = (FaultSpec(shard=1, step=2, kind="kill"),)
        result = trainer.train()
        assert history_of(result) == history_of(baseline_lstm_tiled)
        assert result.engine_stats["distributed"]["recoveries"] == 1


class TestKillCheckpointResume:
    """Exhausted retries abort cleanly; resume() replays bit-identically."""

    def _abort_and_resume(self, build, tmp_path):
        policy = FaultPolicy(max_retries=0, checkpoint_every=2,
                             checkpoint_dir=str(tmp_path))
        trainer = build(policy)
        trainer._faults = (FaultSpec(shard=1, step=3, kind="kill"),)
        with pytest.raises(WorkerFailure) as excinfo:
            trainer.train()
        # The abort carries the failed shard's traceback.
        assert "shard 1" in str(excinfo.value)
        assert "injected worker failure" in str(excinfo.value)
        return build(policy).resume()

    def test_mlp_sparse_stacked(self, tiny_mnist, tmp_path,
                                baseline_mlp_sparse_stacked):
        before = shm_entries()
        result = self._abort_and_resume(
            lambda policy: make_mlp(tiny_mnist, optimizer="sparse",
                                    backend="stacked", policy=policy),
            tmp_path)
        assert history_of(result) == history_of(baseline_mlp_sparse_stacked)
        assert result.final_metric == baseline_mlp_sparse_stacked.final_metric
        assert shm_entries() <= before

    def test_lstm_dense_stacked(self, tiny_corpus, tmp_path,
                                baseline_lstm_dense_stacked):
        result = self._abort_and_resume(
            lambda policy: make_lstm(tiny_corpus, backend="stacked",
                                     policy=policy),
            tmp_path)
        assert history_of(result) == history_of(baseline_lstm_dense_stacked)

    def test_resume_without_checkpoint_fails(self, tiny_mnist, tmp_path):
        from repro.distributed import CheckpointError

        trainer = make_mlp(tiny_mnist)
        with pytest.raises(CheckpointError, match="no readable checkpoint"):
            trainer.resume(str(tmp_path))

    def test_resume_needs_a_directory(self, tiny_mnist):
        with pytest.raises(ValueError, match="checkpoint directory"):
            make_mlp(tiny_mnist).resume()


class TestHangRecovery:
    def test_hung_worker_times_out_and_recovers(self, tiny_mnist,
                                                baseline_mlp_dense):
        """A hung shard must trip the barrier timeout, never deadlock."""
        policy = FaultPolicy(max_retries=1, barrier_timeout_s=HANG_TIMEOUT_S)
        trainer = make_mlp(tiny_mnist, policy=policy)
        trainer._faults = (FaultSpec(shard=1, step=2, kind="hang"),)
        result = trainer.train()
        assert history_of(result) == history_of(baseline_mlp_dense)
        assert result.engine_stats["distributed"]["recoveries"] == 1


class TestCorruptRecovery:
    def test_nonfinite_grads_detected_before_step(self, tiny_mnist,
                                                  baseline_mlp_dense):
        """NaN shard output is rejected *before* the optimizer step commits,
        so the retry replays the step and the history stays identical."""
        trainer = make_mlp(tiny_mnist)
        trainer._faults = (FaultSpec(shard=0, step=4, kind="corrupt"),)
        result = trainer.train()
        assert history_of(result) == history_of(baseline_mlp_dense)
        assert result.engine_stats["distributed"]["recoveries"] == 1


class TestRetryExhaustion:
    def test_persistent_failure_aborts_with_traceback(self, tiny_mnist):
        before = shm_entries()
        policy = FaultPolicy(max_retries=1)
        trainer = make_mlp(tiny_mnist, policy=policy)
        trainer._fail_at_step = 0  # persistent: re-fires on every respawn
        with pytest.raises(WorkerFailure) as excinfo:
            trainer.train()
        message = str(excinfo.value)
        assert "injected worker failure" in message
        assert "shard" in message
        assert excinfo.value.failures
        assert shm_entries() <= before

    def test_fault_on_missing_shard_rejected(self, tiny_mnist):
        trainer = make_mlp(tiny_mnist)
        trainer._faults = (FaultSpec(shard=5, step=0, kind="kill"),)
        with pytest.raises(ValueError, match="shard 5"):
            trainer.train()


class TestSessionTeardown:
    """The shared segment must be unlinked on *every* exit path."""

    def test_close_before_start_is_a_noop(self, tiny_mnist):
        cluster = _Cluster(make_mlp(tiny_mnist))
        cluster.close()  # must not raise: nothing was created yet
        cluster.close()  # and stays idempotent

    def test_partial_start_failure_unlinks_arena(self, tiny_mnist,
                                                 monkeypatch):
        """start() dying between arena creation and worker spawn must not
        leak the segment (regression: close() used to assume start()
        finished)."""
        before = shm_entries()

        def boom(workers):
            raise RuntimeError("injected spawn failure")

        monkeypatch.setattr(trainer_module, "pinned_blas_env", boom)
        trainer = make_mlp(tiny_mnist)
        with pytest.raises(RuntimeError, match="injected spawn failure"):
            with trainer.session():
                pass  # pragma: no cover - start() never completes
        assert shm_entries() <= before

    def test_error_in_session_body_unlinks_arena(self, tiny_mnist):
        before = shm_entries()
        trainer = make_mlp(tiny_mnist)
        with pytest.raises(KeyError, match="session body"):
            with trainer.session():
                raise KeyError("session body")
        assert shm_entries() <= before
