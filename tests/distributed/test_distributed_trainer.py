"""End-to-end tests of the sharded data-parallel trainer.

These spawn real worker processes (the ``spawn`` start method), so each
distributed run costs interpreter startup; the runs are kept tiny and every
run pulls double duty (determinism + stats + shared-memory hygiene).
"""

import os

import pytest

from repro.distributed import DistributedTrainer
from repro.execution import EngineRuntime, ExecutionConfig, FaultPolicy
from repro.models.lstm_lm import LSTMConfig, LSTMLanguageModel
from repro.models.mlp import MLPClassifier, MLPConfig
from repro.training.lm_trainer import (
    LanguageModelTrainer,
    LanguageModelTrainingConfig,
)
from repro.training.trainer import ClassifierTrainer, ClassifierTrainingConfig


def shm_entries() -> set:
    """Shared-memory segments only (``psm_*``): barrier/event semaphore files
    (``sem.mp-*``) are owned by the resource tracker and reaped lazily."""
    try:
        return {entry for entry in os.listdir("/dev/shm")
                if entry.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


def history_of(result):
    return (result.history.train_loss, result.history.eval_metric)


def run_mlp(tiny_mnist, shards, *, exec_seed=11, optimizer="dense",
            backend="numpy", distributed=True, max_iterations=None):
    model = MLPClassifier(MLPConfig(
        input_size=tiny_mnist.num_features, hidden_sizes=(24, 24),
        num_classes=tiny_mnist.num_classes, drop_rates=(0.5, 0.5),
        strategy="row", seed=0))
    runtime = EngineRuntime(ExecutionConfig(
        mode="pooled", seed=exec_seed, shards=shards, optimizer=optimizer,
        backend=backend))
    config = ClassifierTrainingConfig(batch_size=64, epochs=2, seed=3,
                                      max_iterations=max_iterations)
    if distributed:
        trainer = DistributedTrainer(model, tiny_mnist, config, runtime=runtime)
    else:
        trainer = ClassifierTrainer(model, tiny_mnist, config, runtime=runtime)
    return trainer.train()


def run_lstm(tiny_corpus, shards, *, exec_seed=11, optimizer="dense",
             backend="numpy", recurrent="dense", loss_head="dense",
             distributed=True):
    model = LSTMLanguageModel(LSTMConfig(
        vocab_size=tiny_corpus.vocab_size, embed_size=12, hidden_size=16,
        num_layers=2, drop_rates=(0.5, 0.5), strategy="row", seed=0))
    runtime = EngineRuntime(ExecutionConfig(
        mode="pooled", seed=exec_seed, shards=shards, optimizer=optimizer,
        backend=backend, recurrent=recurrent, loss_head=loss_head,
        head_shortlist=12 if loss_head == "adaptive" else 0))
    config = LanguageModelTrainingConfig(batch_size=10, seq_len=20, epochs=2,
                                         seed=3)
    if distributed:
        trainer = DistributedTrainer(model, tiny_corpus, config,
                                     runtime=runtime)
    else:
        trainer = LanguageModelTrainer(model, tiny_corpus, config,
                                       runtime=runtime)
    return trainer.train()


class TestShardOneDelegation:
    """shards=1 runs in-process and must be bit-exact with the plain trainer."""

    def test_mlp(self, tiny_mnist):
        dist = run_mlp(tiny_mnist, shards=1)
        plain = run_mlp(tiny_mnist, shards=1, distributed=False)
        assert history_of(dist) == history_of(plain)
        assert "distributed" not in (dist.engine_stats or {})

    def test_lstm(self, tiny_corpus):
        dist = run_lstm(tiny_corpus, shards=1)
        plain = run_lstm(tiny_corpus, shards=1, distributed=False)
        assert history_of(dist) == history_of(plain)


class TestShardedDeterminism:
    """Same seed + same shard count must replay bit-identical histories."""

    def test_mlp_two_shards_dense(self, tiny_mnist):
        before = shm_entries()
        first = run_mlp(tiny_mnist, shards=2)
        second = run_mlp(tiny_mnist, shards=2)
        assert history_of(first) == history_of(second)
        # Every run pulls triple duty: stats stamped, segment destroyed.
        dist_stats = first.engine_stats["distributed"]
        assert dist_stats["shards"] == 2
        assert dist_stats["steps"] == first.iterations
        assert dist_stats["reduce_ms"] >= 0.0
        assert shm_entries() <= before

    def test_mlp_two_shards_sparse(self, tiny_mnist):
        first = run_mlp(tiny_mnist, shards=2, optimizer="sparse")
        second = run_mlp(tiny_mnist, shards=2, optimizer="sparse")
        assert history_of(first) == history_of(second)

    def test_mlp_three_shards_stacked(self, tiny_mnist):
        first = run_mlp(tiny_mnist, shards=3, backend="stacked")
        second = run_mlp(tiny_mnist, shards=3, backend="stacked")
        assert history_of(first) == history_of(second)
        assert first.engine_stats["distributed"]["shards"] == 3

    def test_mlp_seed_changes_history(self, tiny_mnist):
        base = run_mlp(tiny_mnist, shards=2, max_iterations=3)
        other = run_mlp(tiny_mnist, shards=2, max_iterations=3, exec_seed=12)
        assert history_of(base) != history_of(other)

    def test_lstm_two_shards_dense(self, tiny_corpus):
        first = run_lstm(tiny_corpus, shards=2)
        second = run_lstm(tiny_corpus, shards=2)
        assert history_of(first) == history_of(second)

    def test_lstm_two_shards_adaptive_head(self, tiny_corpus):
        """ISSUE 10: the adaptive loss head composes with sharded data-
        parallel training — its computed class set depends only on each
        shard's targets, so replays stay bit-identical."""
        first = run_lstm(tiny_corpus, shards=2, loss_head="adaptive")
        second = run_lstm(tiny_corpus, shards=2, loss_head="adaptive")
        assert history_of(first) == history_of(second)

    def test_lstm_two_shards_sparse_stacked_tiled(self, tiny_corpus):
        first = run_lstm(tiny_corpus, shards=2, optimizer="sparse",
                         backend="stacked", recurrent="tiled")
        second = run_lstm(tiny_corpus, shards=2, optimizer="sparse",
                          backend="stacked", recurrent="tiled")
        assert history_of(first) == history_of(second)


class TestFailureAndCleanup:
    def test_worker_exception_surfaces_and_frees_shm(self, tiny_mnist):
        before = shm_entries()
        model = MLPClassifier(MLPConfig(
            input_size=tiny_mnist.num_features, hidden_sizes=(24,),
            num_classes=tiny_mnist.num_classes, drop_rates=(0.5,),
            strategy="row", seed=0))
        # max_retries=0: the injected failure is persistent, so letting the
        # elastic default retry it would just burn spawn time before the
        # same abort (retry exhaustion itself is covered in test_faults.py).
        runtime = EngineRuntime(ExecutionConfig(
            mode="pooled", seed=11, shards=2,
            fault_policy=FaultPolicy(max_retries=0)))
        trainer = DistributedTrainer(
            model, tiny_mnist,
            ClassifierTrainingConfig(batch_size=64, epochs=1, seed=3),
            runtime=runtime)
        trainer._fail_at_step = 0
        with pytest.raises(RuntimeError) as excinfo:
            trainer.train()
        message = str(excinfo.value)
        assert "shard" in message
        assert "injected worker failure" in message
        assert shm_entries() <= before


class TestValidation:
    def make(self, tiny_mnist, **exec_overrides):
        model = MLPClassifier(MLPConfig(
            input_size=tiny_mnist.num_features, hidden_sizes=(24,),
            num_classes=tiny_mnist.num_classes, drop_rates=(0.5,),
            strategy="row", seed=0))
        overrides = {"mode": "pooled", "seed": 11, "shards": 2}
        overrides.update(exec_overrides)
        runtime = EngineRuntime(ExecutionConfig(**overrides))
        return model, runtime

    def test_seedless_distributed_run_rejected(self, tiny_mnist):
        model, runtime = self.make(tiny_mnist, seed=None)
        with pytest.raises(ValueError, match="seed"):
            DistributedTrainer(model, tiny_mnist,
                               ClassifierTrainingConfig(batch_size=64),
                               runtime=runtime)

    def test_batch_smaller_than_shards_rejected(self, tiny_mnist):
        model, runtime = self.make(tiny_mnist, shards=4)
        with pytest.raises(ValueError, match="batch_size"):
            DistributedTrainer(model, tiny_mnist,
                               ClassifierTrainingConfig(batch_size=3),
                               runtime=runtime)

    def test_session_requires_multiple_shards(self, tiny_mnist):
        model, runtime = self.make(tiny_mnist, shards=1)
        trainer = DistributedTrainer(model, tiny_mnist,
                                     ClassifierTrainingConfig(batch_size=64),
                                     runtime=runtime)
        with pytest.raises(ValueError, match="shards >= 2"):
            with trainer.session():
                pass

    def test_unsupported_model_type_rejected(self, tiny_mnist):
        with pytest.raises(TypeError, match="MLPClassifier"):
            DistributedTrainer(object(), tiny_mnist)
