"""Coordinator checkpoint tests: round-trip fidelity, crash safety, fail-fast.

Everything here runs in-process (capture/restore are coordinator-side), so
these tests are cheap; the end-to-end resume path is covered by
``test_faults.py``.
"""

import os

import numpy as np
import pytest

from repro.distributed import DistributedTrainer
from repro.distributed import checkpoint as checkpoint_module
from repro.distributed.checkpoint import (
    KEEP_CHECKPOINTS,
    CheckpointCorruptError,
    CheckpointError,
    checkpoint_path,
    list_checkpoints,
    load_checkpoint,
    load_latest,
    save_checkpoint,
)
from repro.execution import EngineRuntime, ExecutionConfig
from repro.models.mlp import MLPClassifier, MLPConfig
from repro.training.trainer import ClassifierTrainingConfig


def make_trainer(tiny_mnist, *, exec_seed=11, optimizer="dense",
                 hidden=(24, 24)):
    model = MLPClassifier(MLPConfig(
        input_size=tiny_mnist.num_features, hidden_sizes=hidden,
        num_classes=tiny_mnist.num_classes,
        drop_rates=(0.5,) * len(hidden), strategy="row", seed=0))
    runtime = EngineRuntime(ExecutionConfig(
        mode="pooled", seed=exec_seed, shards=2, optimizer=optimizer))
    config = ClassifierTrainingConfig(batch_size=64, epochs=1, seed=3,
                                      max_iterations=3)
    return DistributedTrainer(model, tiny_mnist, config, runtime=runtime)


def trained_trainer(tiny_mnist, **kwargs):
    """A trainer whose model/optimizer carry real (non-initial) state.

    The inner trainer runs in-process for a few steps, which materializes
    momentum buffers and advances ``step_count`` — shards only matter to the
    distributed step loop, not to the state being checkpointed.
    """
    trainer = make_trainer(tiny_mnist, **kwargs)
    trainer.inner.train()
    return trainer


class TestFileFormat:
    def test_round_trip_bits_and_meta(self, tmp_path):
        rng = np.random.default_rng(0)
        arrays = {"a": rng.normal(size=(5, 3)).astype(np.float32),
                  "b": np.array([1, 2, 3], dtype=np.int64)}
        path = save_checkpoint(str(tmp_path), 7, {"note": "x"}, arrays)
        assert path == checkpoint_path(str(tmp_path), 7)
        meta, loaded = load_checkpoint(path)
        assert meta["step"] == 7
        assert meta["note"] == "x"
        assert meta["version"] == checkpoint_module.CHECKPOINT_VERSION
        for name, array in arrays.items():
            assert loaded[name].dtype == array.dtype
            assert np.array_equal(loaded[name], array)

    def test_old_checkpoints_are_pruned(self, tmp_path):
        for step in range(KEEP_CHECKPOINTS + 3):
            save_checkpoint(str(tmp_path), step, {}, {"x": np.zeros(1)})
        kept = list_checkpoints(str(tmp_path))
        assert [step for step, _ in kept] == list(
            range(KEEP_CHECKPOINTS + 2, 2, -1))

    def test_truncated_newest_falls_back_to_previous(self, tmp_path):
        save_checkpoint(str(tmp_path), 1, {}, {"x": np.full(4, 1.0)})
        newest = save_checkpoint(str(tmp_path), 2, {}, {"x": np.full(4, 2.0)})
        # Simulate a crash mid-write that still managed the rename.
        with open(newest, "r+b") as handle:
            handle.truncate(os.path.getsize(newest) // 2)
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(newest)
        loaded = load_latest(str(tmp_path))
        assert loaded is not None
        meta, arrays, path = loaded
        assert meta["step"] == 1
        assert np.array_equal(arrays["x"], np.full(4, 1.0))
        assert path == checkpoint_path(str(tmp_path), 1)

    def test_all_corrupt_means_none(self, tmp_path):
        path = save_checkpoint(str(tmp_path), 1, {}, {"x": np.zeros(2)})
        with open(path, "wb") as handle:
            handle.write(b"not a zip")
        assert load_latest(str(tmp_path)) is None

    def test_version_mismatch_fails_fast(self, tmp_path, monkeypatch):
        with monkeypatch.context() as patch:
            patch.setattr(checkpoint_module, "CHECKPOINT_VERSION", 999)
            path = save_checkpoint(str(tmp_path), 1, {}, {"x": np.zeros(2)})
        # A format bump must not be silently skipped like corruption is.
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)
        with pytest.raises(CheckpointError, match="version"):
            load_latest(str(tmp_path))

    def test_missing_directory_is_empty(self, tmp_path):
        assert list_checkpoints(str(tmp_path / "nope")) == []
        assert load_latest(str(tmp_path / "nope")) is None


class TestStateRoundTrip:
    def test_capture_restore_is_bit_exact(self, tiny_mnist, tmp_path):
        trainer = trained_trainer(tiny_mnist, optimizer="sparse")
        result = trainer.inner.train()  # a second leg varies the state more
        history = result.history
        saved_params = [param.data.copy()
                        for param in trainer.model.parameters()]
        optimizer = trainer.inner.optimizer
        saved_velocity = [None if vel is None else vel.copy()
                          for vel in optimizer._velocity]
        saved_step_count = optimizer.step_count

        trainer._save_checkpoint(str(tmp_path), 5, history, 0.25)

        # Restore into a *fresh* trainer (new arrays, initial optimizer).
        fresh = make_trainer(tiny_mnist, optimizer="sparse")
        meta, arrays, _ = load_latest(str(tmp_path))
        step, restored_history, last_loss, worker_states = \
            fresh._restore_state(meta, arrays)

        assert step == 5
        assert last_loss == 0.25
        assert worker_states is None  # classifier workers are stateless
        assert restored_history.iterations == history.iterations
        assert restored_history.train_loss == history.train_loss
        assert restored_history.eval_metric == history.eval_metric
        for param, saved in zip(fresh.model.parameters(), saved_params):
            assert np.array_equal(param.data, saved)
        fresh_opt = fresh.inner.optimizer
        assert fresh_opt.step_count == saved_step_count
        for restored, saved in zip(fresh_opt._velocity, saved_velocity):
            if saved is None:
                assert restored is None
            else:
                assert np.array_equal(restored, saved)
        assert [ever if ever is None else ever[0]
                for ever in fresh_opt._ever] == \
               [ever if ever is None else ever[0]
                for ever in optimizer._ever]

    @pytest.mark.parametrize("variant, match", [
        (dict(exec_seed=12), "seed"),
        (dict(optimizer="sparse"), "optimizer"),
        (dict(hidden=(16, 16)), "param_shapes"),
    ])
    def test_incompatible_run_fails_fast(self, tiny_mnist, tmp_path,
                                         variant, match):
        trainer = trained_trainer(tiny_mnist)
        trainer._save_checkpoint(str(tmp_path), 3,
                                 trainer.inner.train().history, 0.5)
        other = make_trainer(tiny_mnist, **variant)
        meta, arrays, _ = load_latest(str(tmp_path))
        with pytest.raises(CheckpointError, match=match):
            other._restore_state(meta, arrays)
