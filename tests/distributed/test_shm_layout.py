"""Unit tests for the shared-memory layout, region codec and tree reduce."""

import numpy as np
import pytest

from repro.distributed.reduce import tree_reduce
from repro.distributed.shm import (
    KIND_FULL,
    KIND_NONE,
    ParameterLayout,
    SharedArena,
    merge_regions,
)
from repro.tensor import Tensor


def make_params(dtype=np.float64):
    rng = np.random.default_rng(0)
    shapes = [(4, 3), (3,), (2, 5)]
    params = []
    for shape in shapes:
        param = Tensor(rng.normal(size=shape).astype(dtype), requires_grad=True)
        params.append(param)
    return params


class TestParameterLayout:
    def test_flat_offsets_and_sizes(self):
        params = make_params()
        layout = ParameterLayout.from_parameters(params)
        assert layout.total_size == 12 + 3 + 10
        assert [slot.offset for slot in layout.slots] == [0, 12, 15]
        # Region records: 2 header slots + max(first, last) axis length.
        assert [slot.region_slots for slot in layout.slots] == [6, 5, 7]
        assert layout.region_size == 18

    def test_mixed_dtypes_rejected_with_runtime_hint(self):
        params = make_params()
        params[1] = Tensor(np.zeros(3), dtype=np.float32, requires_grad=True)
        with pytest.raises(ValueError, match="EngineRuntime"):
            ParameterLayout.from_parameters(params)

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError, match="no parameters"):
            ParameterLayout.from_parameters([])

    def test_params_roundtrip_preserves_identity(self):
        params = make_params()
        layout = ParameterLayout.from_parameters(params)
        flat = np.zeros(layout.total_size)
        layout.write_params(params, flat)
        replica = make_params()
        before = [p.data for p in replica]
        layout.read_params(flat, replica)
        for param, original, array in zip(params, replica, before):
            assert original.data is array  # in-place scatter
            np.testing.assert_array_equal(original.data, param.data)

    def test_write_grads_zero_fills_missing(self):
        params = make_params()
        layout = ParameterLayout.from_parameters(params)
        params[0].grad = np.ones((4, 3))
        params[1].grad = None
        params[2].grad = np.full((2, 5), 2.0)
        flat = np.full(layout.total_size, -1.0)
        layout.write_grads(params, flat)
        np.testing.assert_array_equal(layout.grad_view(flat, 0), np.ones((4, 3)))
        np.testing.assert_array_equal(layout.grad_view(flat, 1), np.zeros(3))
        np.testing.assert_array_equal(layout.grad_view(flat, 2),
                                      np.full((2, 5), 2.0))


class _FakeTracker:
    """Minimal stand-in for DirtyTracker.region_of keyed by array identity."""

    def __init__(self):
        self.regions = {}

    def region_of(self, grad):
        return self.regions.get(id(grad))


class TestRegionCodec:
    def test_dense_tracker_none_encodes_full_or_none(self):
        params = make_params()
        layout = ParameterLayout.from_parameters(params)
        params[0].grad = np.ones((4, 3))
        params[1].grad = None
        params[2].grad = np.ones((2, 5))
        block = np.zeros(layout.region_size, dtype=np.int64)
        layout.encode_regions(params, None, block)
        assert layout.decode_region(block, 0) == ("full",)
        assert layout.decode_region(block, 1) == ("none",)
        assert layout.decode_region(block, 2) == ("full",)
        assert block[layout.slots[0].region_offset] == KIND_FULL
        assert block[layout.slots[1].region_offset] == KIND_NONE

    def test_tracked_regions_roundtrip(self):
        params = make_params()
        layout = ParameterLayout.from_parameters(params)
        tracker = _FakeTracker()
        for param in params:
            param.grad = np.zeros(param.data.shape)
        tracker.regions[id(params[0].grad)] = ("rows", np.array([0, 3]))
        tracker.regions[id(params[1].grad)] = ("empty",)
        tracker.regions[id(params[2].grad)] = ("cols", np.array([1, 2, 4]))
        block = np.zeros(layout.region_size, dtype=np.int64)
        layout.encode_regions(params, tracker, block)
        kind, idx = layout.decode_region(block, 0)
        assert kind == "rows" and list(idx) == [0, 3]
        assert layout.decode_region(block, 1) == ("empty",)
        kind, idx = layout.decode_region(block, 2)
        assert kind == "cols" and list(idx) == [1, 2, 4]


class TestMergeRegions:
    def test_all_none_stays_none(self):
        assert merge_regions([("none",), ("none",)]) == ("none",)

    def test_none_with_anything_acts_like_empty(self):
        merged = merge_regions([("none",), ("rows", np.array([1]))])
        assert merged[0] == "rows" and list(merged[1]) == [1]
        assert merge_regions([("none",), ("empty",)]) == ("empty",)

    def test_same_kind_unions_indices(self):
        merged = merge_regions([("rows", np.array([0, 2])),
                                ("rows", np.array([2, 3]))])
        assert merged[0] == "rows" and list(merged[1]) == [0, 2, 3]

    def test_mismatched_kinds_promote_to_full(self):
        merged = merge_regions([("rows", np.array([0])),
                                ("cols", np.array([1]))])
        assert merged == ("full",)
        assert merge_regions([("full",), ("rows", np.array([0]))]) == ("full",)


class TestTreeReduce:
    def test_matches_fixed_pairwise_association(self):
        rng = np.random.default_rng(1)
        blocks = rng.normal(size=(4, 7))
        expected = (blocks[0] + blocks[1]) + (blocks[2] + blocks[3])
        reduced = tree_reduce(blocks.copy())
        np.testing.assert_array_equal(reduced, expected)

    def test_odd_worker_count(self):
        rng = np.random.default_rng(2)
        blocks = rng.normal(size=(3, 5))
        expected = (blocks[0] + blocks[1]) + blocks[2]
        np.testing.assert_array_equal(tree_reduce(blocks.copy()), expected)

    def test_single_worker_is_identity(self):
        blocks = np.arange(6.0).reshape(1, 6)
        np.testing.assert_array_equal(tree_reduce(blocks.copy()), blocks[0])


class TestSharedArena:
    def test_create_attach_share_and_cleanup(self):
        layout = ParameterLayout([(4, 3), (3,)], np.float64)
        owner = SharedArena(layout, workers=2)
        name = owner.name
        try:
            attached = SharedArena.attach(name, layout, workers=2)
            attached.grads[1, :] = 7.0
            attached.losses[1] = 0.25
            attached.close()
            assert owner.grads[1, 0] == 7.0
            assert owner.losses[1] == 0.25
        finally:
            owner.unlink()
        with pytest.raises(FileNotFoundError):
            SharedArena.attach(name, layout, workers=2)

    def test_attach_rejects_undersized_segment(self):
        small = ParameterLayout([(2,)], np.float64)
        big = ParameterLayout([(64, 64)], np.float64)
        owner = SharedArena(small, workers=1)
        try:
            with pytest.raises(ValueError, match="layout mismatch"):
                SharedArena.attach(owner.name, big, workers=1)
        finally:
            owner.unlink()

    def test_close_and_unlink_are_idempotent(self):
        layout = ParameterLayout([(2, 2)], np.float64)
        arena = SharedArena(layout, workers=1)
        arena.unlink()
        arena.unlink()
        arena.close()
